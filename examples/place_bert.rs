//! Place BERT-Base across 4 GPUs — the paper's hardest workload
//! ("the model has to be split across multiple GPUs and the
//! communication between GPUs becomes the bottleneck").
//!
//! Shows the OOM structure (single GPU and 2-GPU splits fail), the
//! human-expert failure, and Mars discovering a valid, fast split.
//!
//! ```text
//! cargo run --release --example place_bert
//! ```

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{check_memory, Cluster, Environment, Placement, SimEnv};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn main() {
    let graph = Workload::BertBase.build(Profile::Reduced);
    let cluster = Cluster::p100_quad();
    println!(
        "BERT-Base: {} ops, {:.1} GB total memory across parameters + activations",
        graph.num_nodes(),
        graph.total_memory_bytes() as f64 / (1u64 << 30) as f64
    );

    // Memory structure: how many GPUs does BERT need?
    for k in 1..=4usize {
        let gpus: Vec<usize> = cluster.gpu_ids()[..k].to_vec();
        let mut p = Placement::round_robin(&graph, &gpus);
        p.enforce_compatibility(&graph, &cluster);
        match check_memory(&graph, &p, &cluster) {
            Ok(rep) => println!(
                "  {k} GPU round-robin: fits (peak device utilization {:.0}%)",
                rep.peak_utilization(&cluster) * 100.0
            ),
            Err(e) => println!("  {k} GPU round-robin: {e}"),
        }
    }

    // Candidate manual splits.
    let env = SimEnv::new(graph.clone(), cluster.clone(), 3);
    for k in 2..=4usize {
        let gpus: Vec<usize> = cluster.gpu_ids()[..k].to_vec();
        let mut p = Placement::blocked(&graph, &gpus);
        p.enforce_compatibility(&graph, &cluster);
        match env.true_step_time(&p) {
            Ok(rep) => println!(
                "  blocked over {k} GPUs: {:.3} s/step ({:.3} s communication, {} transfers)",
                rep.makespan_s, rep.comm_s, rep.num_transfers
            ),
            Err(e) => println!("  blocked over {k} GPUs: {e}"),
        }
    }

    // Mars.
    let input = WorkloadInput::from_graph(&graph);
    let mut rng = StdRng::seed_from_u64(3);
    let mut agent = Agent::new(
        AgentKind::Mars,
        MarsConfig::small(),
        FEATURE_DIM,
        cluster.num_devices(),
        &mut rng,
    );
    agent.pretrain(&input, &mut rng);
    let mut env = SimEnv::new(graph.clone(), cluster.clone(), 3);
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, 400, &mut rng, &mut log);

    let best = log.best_reading_s.expect("Mars finds a valid BERT placement");
    let placement = log.best_placement.expect("placement recorded");
    println!(
        "\nMars best after {} samples: {:.3} s/step on devices {:?} \
         ({} of {} evaluations were invalid/bad)",
        log.total_samples,
        best,
        placement.devices_used(),
        env.evaluations()
            - log.records.iter().map(|r| (r.valid_fraction * 20.0).round() as usize).sum::<usize>(),
        env.evaluations(),
    );
    let truth = env.true_step_time(&placement).expect("valid").makespan_s;
    println!("Noise-free verification of the found placement: {truth:.3} s/step");
}
