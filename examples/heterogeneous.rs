//! Placement on a *heterogeneous* cluster — the setting the paper's
//! introduction motivates ("partition a large model across a
//! heterogeeous mix of computational devices").
//!
//! The cluster has 2 fast GPUs joined by NVLink plus 2 half-speed older
//! GPUs on PCIe. A device-oblivious round-robin wastes time on the slow
//! GPUs; Mars learns to prefer the fast pair.
//!
//! ```text
//! cargo run --release --example heterogeneous
//! ```

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{Cluster, Placement, SimEnv};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn main() {
    let graph = Workload::Gnmt4.build(Profile::Reduced);
    let cluster = Cluster::heterogeneous();
    println!("Cluster:");
    for (i, d) in cluster.devices().iter().enumerate() {
        println!(
            "  [{i}] {:<14} {:>6.0} GFLOP/s effective, {:>3} GB",
            d.name,
            d.peak_gflops,
            d.memory_bytes >> 30
        );
    }
    println!(
        "  link 1↔2 (NVLink): {:.0} GB/s; others (PCIe): {:.0} GB/s\n",
        cluster.link(1, 2).bandwidth_bps / 1e9,
        cluster.link(1, 3).bandwidth_bps / 1e9
    );

    let env = SimEnv::new(graph.clone(), cluster.clone(), 21);
    for (name, devices) in [
        ("round-robin all GPUs", vec![1usize, 2, 3, 4]),
        ("round-robin fast pair", vec![1, 2]),
        ("round-robin slow pair", vec![3, 4]),
    ] {
        let mut p = Placement::round_robin(&graph, &devices);
        p.enforce_compatibility(&graph, &cluster);
        match env.true_step_time(&p) {
            Ok(rep) => println!("  {name:<24} {:.3} s/step", rep.makespan_s),
            Err(e) => println!("  {name:<24} {e}"),
        }
    }

    // Train Mars on the heterogeneous cluster.
    let input = WorkloadInput::from_graph(&graph);
    let mut rng = StdRng::seed_from_u64(21);
    let mut agent = Agent::new(
        AgentKind::Mars,
        MarsConfig::small(),
        FEATURE_DIM,
        cluster.num_devices(),
        &mut rng,
    );
    agent.pretrain(&input, &mut rng);
    let mut env = SimEnv::new(graph.clone(), cluster.clone(), 21);
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, 400, &mut rng, &mut log);

    let best = log.best_reading_s.expect("valid placement found");
    let placement = log.best_placement.expect("placement recorded");
    // How much compute landed on the fast pair vs the slow pair?
    let mut fast_flops = 0.0;
    let mut slow_flops = 0.0;
    for (i, node) in graph.nodes().iter().enumerate() {
        match placement.device(i) {
            1 | 2 => fast_flops += node.flops,
            3 | 4 => slow_flops += node.flops,
            _ => {}
        }
    }
    println!(
        "\nMars best: {best:.3} s/step; compute on fast pair {:.0}%, slow pair {:.0}%",
        100.0 * fast_flops / (fast_flops + slow_flops),
        100.0 * slow_flops / (fast_flops + slow_flops)
    );
}
