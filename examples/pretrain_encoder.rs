//! Deep Graph Infomax pre-training demo (§3.2).
//!
//! Pre-trains the GCN encoder on the GNMT-4 graph and shows (a) the
//! contrastive loss decreasing, and (b) that the learned
//! representations separate operation kinds — LSTM chunks end up
//! closer to each other than to softmax ops, which is exactly the
//! structure the placer exploits.
//!
//! ```text
//! cargo run --release --example pretrain_encoder
//! ```

use mars::core::config::MarsConfig;
use mars::core::dgi::{pretrain, Dgi};
use mars::core::encoder::{Encoder, GcnEncoder};
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::graph::OpKind;
use mars::nn::{FwdCtx, ParamStore};
use mars::tensor::Matrix;
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn main() {
    let cfg = MarsConfig::small();
    let graph = Workload::Gnmt4.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let mut rng = StdRng::seed_from_u64(1);

    let mut store = ParamStore::new();
    let encoder =
        GcnEncoder::new(&mut store, FEATURE_DIM, cfg.encoder_hidden, cfg.encoder_layers, &mut rng);
    let dgi = Dgi::new(&mut store, cfg.encoder_hidden, &mut rng);

    println!(
        "Pre-training on {} ({} ops) for {} iterations…",
        graph.name, input.num_ops, cfg.dgi_iters
    );
    let report =
        pretrain(&mut store, &encoder, &dgi, &input, cfg.dgi_iters, cfg.dgi_lr, 1.0, cfg.encode_batch, &mut rng);
    for (i, chunk) in report.losses.chunks(cfg.dgi_iters / 10).enumerate() {
        let mean = chunk.iter().sum::<f32>() / chunk.len() as f32;
        println!("  iters {:>4}-{:<4} mean loss {mean:.4}", i * chunk.len(), (i + 1) * chunk.len());
    }
    println!("Best loss {:.4} at iteration {} (restored)", report.best_loss, report.best_iter);

    // Representation structure: intra-kind vs inter-kind distances.
    let mut ctx = FwdCtx::new(&store);
    let h = encoder.encode(&mut ctx, &input);
    let reps = ctx.tape.value(h).clone();
    let lstm: Vec<usize> = ids_of_kind(&graph, OpKind::LstmCell);
    let softmax: Vec<usize> = ids_of_kind(&graph, OpKind::Softmax);
    let intra = mean_pairwise(&reps, &lstm, &lstm);
    let inter = mean_pairwise(&reps, &lstm, &softmax);
    println!(
        "\nMean representation distance: LSTM↔LSTM {intra:.3}, LSTM↔Softmax {inter:.3} \
         (ratio {:.2}× — similar ops cluster)",
        inter / intra
    );
    assert!(inter > intra, "pre-trained representations should cluster by op kind");
}

fn ids_of_kind(graph: &mars::graph::CompGraph, kind: OpKind) -> Vec<usize> {
    graph.nodes().iter().enumerate().filter(|(_, n)| n.kind == kind).map(|(i, _)| i).collect()
}

fn mean_pairwise(reps: &Matrix, a: &[usize], b: &[usize]) -> f32 {
    let mut total = 0.0;
    let mut count = 0usize;
    for &i in a {
        for &j in b {
            if i == j {
                continue;
            }
            let d: f32 = reps
                .row(i)
                .iter()
                .zip(reps.row(j))
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt();
            total += d;
            count += 1;
        }
    }
    total / count.max(1) as f32
}
