//! Quickstart: build a benchmark workload, measure baseline
//! placements, train a small Mars agent, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::baselines::{gpu_only, human_expert};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{Cluster, Environment, Placement, SimEnv};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn main() {
    // 1. Build the workload's computational graph (Inception-V3,
    //    batch 1 — the paper's benchmark 1).
    let workload = Workload::InceptionV3;
    let graph = workload.build(Profile::Reduced);
    println!(
        "Workload {}: {} ops, {} edges, {:.2} GB, {:.2e} training FLOPs",
        graph.name,
        graph.num_nodes(),
        graph.num_edges(),
        graph.total_memory_bytes() as f64 / (1u64 << 30) as f64,
        graph.total_flops()
    );

    // 2. The paper's testbed: 4×P100 (12 GB) + dual-Xeon CPU over PCIe.
    let cluster = Cluster::p100_quad();
    let mut env = SimEnv::new(graph.clone(), cluster.clone(), 7);

    // 3. Baselines.
    let human = human_expert(workload, &graph, &cluster);
    let gpu = gpu_only(&graph, &cluster);
    let mut rng = StdRng::seed_from_u64(7);
    let random = Placement::random(&graph, &cluster, &mut rng);
    for (name, p) in [("human expert", &human), ("gpu-only", &gpu), ("random", &random)] {
        println!("  {name:<13} → {}", describe(&mut env, p));
    }

    // 4. Train a small Mars agent: DGI pre-training, then joint PPO.
    let input = WorkloadInput::from_graph(&graph);
    let mut agent = Agent::new(
        AgentKind::Mars,
        MarsConfig::small(),
        FEATURE_DIM,
        cluster.num_devices(),
        &mut rng,
    );
    let report = agent.pretrain(&input, &mut rng).expect("Mars has a GCN encoder");
    println!(
        "DGI pre-training: loss {:.3} → best {:.3} at iter {}",
        report.losses[0], report.best_loss, report.best_iter
    );

    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, 300, &mut rng, &mut log);
    println!(
        "Mars after {} sampled placements: best per-step time {:.3} s \
         ({:.1} simulated machine-hours of evaluation)",
        log.total_samples,
        log.best_reading_s.expect("found a valid placement"),
        log.machine_s / 3600.0
    );

    let best = log.best_placement.expect("best placement recorded");
    let devices = best.devices_used();
    println!("Best placement uses devices {devices:?} with {} cut edges", best.cut_edges(&graph));
}

fn describe(env: &mut SimEnv, p: &Placement) -> String {
    match env.evaluate(p) {
        mars::sim::EvalOutcome::Valid { per_step_s } => format!("{per_step_s:.3} s/step"),
        mars::sim::EvalOutcome::Bad { cutoff_s } => format!("aborted (> {cutoff_s:.0} s)"),
        mars::sim::EvalOutcome::Invalid { oom } => format!("invalid: {oom}"),
        // Only reachable when a fault plan is armed (see DESIGN.md §9).
        other => format!("fault: {other:?}"),
    }
}
