//! Compare the four placer architectures of §3.3 on one workload with
//! a frozen pre-trained encoder — a miniature of Table 1.
//!
//! ```text
//! cargo run --release --example compare_placers [inception|gnmt|bert]
//! ```

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::placers::PlacerChoice;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{Cluster, SimEnv};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "inception".into());
    let workload = match which.as_str() {
        "gnmt" => Workload::Gnmt4,
        "bert" => Workload::BertBase,
        _ => Workload::InceptionV3,
    };
    let graph = workload.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let budget = 300;
    println!(
        "Placer comparison on {} ({} ops), {budget} samples each\n",
        graph.name,
        graph.num_nodes()
    );

    for choice in
        [PlacerChoice::Seq2Seq, PlacerChoice::TrfXl, PlacerChoice::Segment, PlacerChoice::Mlp]
    {
        let mut rng = StdRng::seed_from_u64(5);
        let mut agent = Agent::new(
            AgentKind::FixedEncoder(choice),
            MarsConfig::small(),
            FEATURE_DIM,
            cluster.num_devices(),
            &mut rng,
        );
        agent.pretrain(&input, &mut rng);
        agent.freeze_encoder(&input);
        let mut env = SimEnv::new(graph.clone(), cluster.clone(), 5);
        let mut log = TrainingLog::default();
        let t0 = std::time::Instant::now();
        agent.train(&mut env, &input, budget, &mut rng, &mut log);
        println!(
            "  {:<20} best {}  ({} params, {:.1}s agent wall)",
            choice.label(),
            log.best_reading_s
                .map(|b| format!("{b:.3} s/step"))
                .unwrap_or_else(|| "no valid placement".into()),
            agent.store.num_scalars(),
            t0.elapsed().as_secs_f64()
        );
    }
}
