//! Convert `fig7_curves.json` (written by the `fig7_curves` bench) into
//! SVG figures matching the paper's Fig. 7 layout.
//!
//! ```text
//! cargo bench -p mars-bench --bench fig7_curves
//! cargo run --release --example plot_fig7
//! # → target/experiments/fig7a.svg, fig7b.svg
//! ```

use mars::plot::{render, ChartConfig, Series};
use std::path::PathBuf;

fn main() {
    // The bench runs with CWD = crates/bench, this example with CWD =
    // the workspace root; check both locations.
    let candidates = [
        PathBuf::from("crates/bench/target/experiments/fig7_curves.json"),
        PathBuf::from("target/experiments/fig7_curves.json"),
    ];
    let Some(path) = candidates.iter().find(|p| p.exists()) else {
        eprintln!(
            "fig7_curves.json not found — run `cargo bench -p mars-bench --bench fig7_curves` first"
        );
        std::process::exit(1);
    };
    let data = mars::json::Json::parse(&std::fs::read_to_string(path).expect("read json"))
        .expect("parse json");

    let out_dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&out_dir).expect("mkdir");

    for (fi, figure) in data.as_array().expect("array of figures").iter().enumerate() {
        let workload = figure["workload"].as_str().unwrap_or("?");
        let mut series_out = Vec::new();
        for s in figure["series"].as_array().expect("series array") {
            let label = s["agent"].as_str().unwrap_or("?").to_string();
            let samples = s["samples"].as_array().expect("samples");
            let best = s["best_so_far_s"].as_array().expect("best");
            let points: Vec<(f64, f64)> = samples
                .iter()
                .zip(best)
                .filter_map(|(x, y)| Some((x.as_f64()?, y.as_f64()?)))
                .collect();
            if !points.is_empty() {
                series_out.push(Series { label, points });
            }
        }
        let cfg = ChartConfig {
            title: format!(
                "Fig. 7{} — {workload}: best per-step runtime",
                (b'a' + fi as u8) as char
            ),
            x_label: "placements sampled (training steps)".into(),
            y_label: "best per-step runtime (s)".into(),
            width: 720,
            height: 420,
            log_y: false,
        };
        let svg = render(&cfg, &series_out);
        let file = out_dir.join(format!("fig7{}.svg", (b'a' + fi as u8) as char));
        std::fs::write(&file, svg).expect("write svg");
        println!("wrote {}", file.display());
    }
}
