#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build, full test suite, and a
# one-iteration smoke pass over every microbenchmark. This is the exact
# gate CI runs; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test -q (offline)"
cargo test -q --offline --workspace

echo "==> kernel benches, smoke mode (one iteration each)"
cargo bench -p mars-bench --bench kernels --offline -- --smoke

echo "==> rollout engine bench, smoke mode (asserts parallel+cached == serial)"
cargo bench -p mars-bench --bench rollout --offline -- --smoke

echo "==> engine parity: smoke train serial vs --eval-threads 4 must print identically"
SERIAL_OUT=$(./target/release/mars-cli train inception --budget 40 --dgi-iters 10 --seed 1 \
    --eval-threads 1)
ENGINE_OUT=$(./target/release/mars-cli train inception --budget 40 --dgi-iters 10 --seed 1 \
    --eval-threads 4)
diff <(echo "$SERIAL_OUT") <(echo "$ENGINE_OUT") || {
    echo "parallel evaluation changed training output"; exit 1; }

echo "==> kernel dispatch parity: MARS_KERNEL=scalar must print identically to auto"
SCALAR_OUT=$(MARS_KERNEL=scalar ./target/release/mars-cli train inception --budget 40 \
    --dgi-iters 10 --seed 1 --eval-threads 1)
diff <(echo "$SCALAR_OUT") <(echo "$SERIAL_OUT") || {
    echo "forcing the scalar kernel backend changed training output"; exit 1; }

echo "==> fleet smoke: learner + 2 spawned workers must print identically to in-process"
# The merged trace lands in target/experiments/ so CI can upload it as
# an artifact; recording it must not change the training output.
mkdir -p target/experiments
FLEET_TRACE=target/experiments/fleet_run.jsonl
FLEET_OUT=$(./target/release/mars-cli train inception --budget 40 --dgi-iters 10 --seed 1 \
    --workers 2 --telemetry "$FLEET_TRACE")
echo "$FLEET_OUT" | grep -q "^fleet: 2 worker(s) connected" || {
    echo "fleet run did not report its workers"; exit 1; }
diff <(echo "$FLEET_OUT" | grep -v "^fleet\|^telemetry written") <(echo "$SERIAL_OUT") || {
    echo "distributed evaluation changed training output"; exit 1; }

echo "==> fleet observability: summarize, flame, and tail over the merged trace"
FLEET_SUMMARY=$(./target/release/mars-cli metrics summarize "$FLEET_TRACE")
echo "$FLEET_SUMMARY" | grep -q "== worker 0 span tree" || {
    echo "fleet summary has no per-worker span tree"; exit 1; }
echo "$FLEET_SUMMARY" | grep -q "workers: 2 connected" || {
    echo "fleet summary has no fleet health table"; exit 1; }
echo "$FLEET_SUMMARY" | grep -q "frames" || {
    echo "fleet summary has no wire counters"; exit 1; }
./target/release/mars-cli metrics flame "$FLEET_TRACE" 2>/dev/null | grep -q "^learner;" || {
    echo "flame export has no learner stacks"; exit 1; }
./target/release/mars-cli metrics flame "$FLEET_TRACE" 2>/dev/null | grep -q "^worker:0;" || {
    echo "flame export has no worker stacks"; exit 1; }
./target/release/mars-cli metrics tail "$FLEET_TRACE" --lines 0 | grep -q "run complete" || {
    echo "tail did not reach the end-of-run marker"; exit 1; }

echo "==> fleet smoke: 2 external workers over a named unix socket"
FLEET_SOCK=$(mktemp -u /tmp/mars-fleet-XXXXXX.sock)
./target/release/mars-cli train inception --budget 40 --dgi-iters 10 --seed 1 \
    --workers 2 --listen "unix:$FLEET_SOCK" > /tmp/mars-fleet-listen.$$ 2>&1 &
FLEET_PID=$!
for _ in $(seq 1 100); do [ -S "$FLEET_SOCK" ] && break; sleep 0.1; done
[ -S "$FLEET_SOCK" ] || { echo "learner never bound $FLEET_SOCK"; exit 1; }
./target/release/mars-cli train inception --connect "unix:$FLEET_SOCK" &
./target/release/mars-cli train inception --connect "unix:$FLEET_SOCK" &
wait "$FLEET_PID" || { echo "fleet learner failed"; cat /tmp/mars-fleet-listen.$$; exit 1; }
wait
diff <(grep -v "^fleet" /tmp/mars-fleet-listen.$$) <(echo "$SERIAL_OUT") || {
    echo "listen-mode fleet changed training output"; exit 1; }
rm -f /tmp/mars-fleet-listen.$$

echo "==> telemetry smoke: tiny instrumented training run + summarize"
TELEMETRY_RUN=$(mktemp /tmp/mars-telemetry-XXXXXX.jsonl)
FAULT_RUN=$(mktemp /tmp/mars-fault-XXXXXX.jsonl)
ARENA_RUN=$(mktemp /tmp/mars-arena-XXXXXX.jsonl)
trap 'rm -f "$TELEMETRY_RUN" "$FAULT_RUN" "$ARENA_RUN"' EXIT
./target/release/mars-cli train inception --budget 40 --dgi-iters 10 --seed 1 \
    --telemetry "$TELEMETRY_RUN" > /dev/null
SUMMARY=$(./target/release/mars-cli metrics summarize "$TELEMETRY_RUN")
echo "$SUMMARY" | grep -q "tensor.ops.matmul" || {
    echo "telemetry summary has no tensor kernel spans"; exit 1; }
echo "$SUMMARY" | grep -q "ppo.update" || {
    echo "telemetry summary has no PPO update events"; exit 1; }
echo "$SUMMARY" | grep -q "sim.eval" || {
    echo "telemetry summary has no simulator eval events"; exit 1; }

echo "==> arena smoke: batched DGI pretrain recycles tapes, output bit-identical to per-graph"
PRETRAIN_ARGS=(pretrain inception --dgi-iters 10 --seed 1)
PRE_PLAIN=$(./target/release/mars-cli "${PRETRAIN_ARGS[@]}" --encode-batch 1)
PRE_BATCHED=$(./target/release/mars-cli "${PRETRAIN_ARGS[@]}" --encode-batch 2 \
    --telemetry "$ARENA_RUN" | grep -v "^telemetry written")
diff <(echo "$PRE_BATCHED") <(echo "$PRE_PLAIN") || {
    echo "corpus-batched encoding changed the pretrain output"; exit 1; }
PRE_SCALAR=$(MARS_KERNEL=scalar ./target/release/mars-cli "${PRETRAIN_ARGS[@]}" --encode-batch 2)
diff <(echo "$PRE_SCALAR") <(echo "$PRE_PLAIN") || {
    echo "scalar-backend batched pretrain diverged from the per-graph output"; exit 1; }
# The arena must actually be in use: every iteration recycles the tape,
# and every encode goes through the width-2 corpus batch.
ARENA_SUMMARY=$(./target/release/mars-cli metrics summarize "$ARENA_RUN")
echo "$ARENA_SUMMARY" | grep -q "training arena: 10 tape reuses" || {
    echo "autograd.arena.reset counter never fired during batched pretrain"; exit 1; }
echo "$ARENA_SUMMARY" | grep -q "batched encodes: 10 (mean corpus width 2.00)" || {
    echo "encode.batch_size histogram missing from the pretrain summary"; exit 1; }
# End-to-end: --encode-batch is wall-clock-only, so a batched train run
# must print byte-identically to the serial baseline under both the
# threaded evaluator and the forced-scalar kernel backend.
BATCH_TRAIN_A=$(./target/release/mars-cli train inception --budget 40 --dgi-iters 10 --seed 1 \
    --eval-threads 4 --encode-batch 2)
diff <(echo "$BATCH_TRAIN_A") <(echo "$SERIAL_OUT") || {
    echo "batched encoding changed training output under --eval-threads 4"; exit 1; }
BATCH_TRAIN_B=$(MARS_KERNEL=scalar ./target/release/mars-cli train inception --budget 40 \
    --dgi-iters 10 --seed 1 --eval-threads 1 --encode-batch 2)
diff <(echo "$BATCH_TRAIN_B") <(echo "$SERIAL_OUT") || {
    echo "batched encoding changed training output under MARS_KERNEL=scalar"; exit 1; }

echo "==> fault smoke: degraded train, remap telemetry, bit-identical reruns"
FAULT_ARGS=(train inception --budget 40 --dgi-iters 10 --seed 1
    --fault-plan "fail:2@10, transient:0.2, straggler:0.1x6")
FAULT_A=$(./target/release/mars-cli "${FAULT_ARGS[@]}" --telemetry "$FAULT_RUN" \
    | grep -v "^telemetry written")
echo "$FAULT_A" | grep -q "cluster degraded: failed devices \[2\]" || {
    echo "planned device failure did not degrade the cluster"; exit 1; }
FAULT_SUMMARY=$(./target/release/mars-cli metrics summarize "$FAULT_RUN")
echo "$FAULT_SUMMARY" | grep -q "fault injection" || {
    echo "telemetry summary has no fault-injection section"; exit 1; }
echo "$FAULT_SUMMARY" | grep -q "device failures: 1 (" || {
    echo "fault summary did not count the device failure"; exit 1; }
echo "$FAULT_SUMMARY" | grep -Eq "device failures: 1 \([1-9][0-9]* remaps" || {
    echo "fault summary recorded no placement remaps"; exit 1; }
# Same seed + same plan must reproduce the run bit for bit, and the
# rollout engine (threads, cache) must stay invisible under faults.
FAULT_B=$(./target/release/mars-cli "${FAULT_ARGS[@]}")
FAULT_C=$(./target/release/mars-cli "${FAULT_ARGS[@]}" --eval-threads 4)
FAULT_D=$(./target/release/mars-cli "${FAULT_ARGS[@]}" --no-eval-cache)
diff <(echo "$FAULT_A") <(echo "$FAULT_B") || {
    echo "faulty rerun was not bit-identical"; exit 1; }
diff <(echo "$FAULT_A") <(echo "$FAULT_C") || {
    echo "parallel evaluation changed a faulty run"; exit 1; }
diff <(echo "$FAULT_A" | grep -v "^eval cache") <(echo "$FAULT_D" | grep -v "^eval cache") || {
    echo "disabling the eval cache changed a faulty run"; exit 1; }

echo "==> serve smoke: daemon on a unix socket, bit-identical responses, warm restart"
SERVE_SOCK=$(mktemp -u /tmp/mars-serve-XXXXXX.sock)
SERVE_STORE=$(mktemp -u /tmp/mars-serve-store-XXXXXX.jsonl)
SERVE_TRACE=target/experiments/serve_smoke.jsonl
./target/release/mars-cli serve --listen "unix:$SERVE_SOCK" --seed 1 \
    --store "$SERVE_STORE" --telemetry "$SERVE_TRACE" > /tmp/mars-serve-log.$$ 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || { echo "serve never bound $SERVE_SOCK"; cat /tmp/mars-serve-log.$$; exit 1; }
PLACE_A=$(./target/release/mars-cli place seq2seq --connect "unix:$SERVE_SOCK" --top-k 2 --repeat 3)
PLACE_B=$(./target/release/mars-cli place seq2seq --connect "unix:$SERVE_SOCK" --top-k 2 --repeat 3)
diff <(echo "$PLACE_A") <(echo "$PLACE_B") || {
    echo "placement responses were not bit-identical across client runs"; exit 1; }
echo "$PLACE_A" | grep -q "identical to response 0" || {
    echo "repeat responses were not verified identical"; exit 1; }
./target/release/mars-cli place seq2seq --connect "unix:$SERVE_SOCK" --shutdown > /dev/null
wait "$SERVE_PID" || { echo "serve daemon failed"; cat /tmp/mars-serve-log.$$; exit 1; }
grep -q "serve loop done" /tmp/mars-serve-log.$$ || {
    echo "serve daemon did not report a clean shutdown"; cat /tmp/mars-serve-log.$$; exit 1; }
[ -s "$SERVE_STORE" ] || { echo "serve daemon wrote no placement store"; exit 1; }
./target/release/mars-cli metrics summarize "$SERVE_TRACE" | grep -q "serve.requests" || {
    echo "serve trace has no request counters"; exit 1; }
# Warm restart: the same seed + store must answer from the persistent
# tier with byte-identical output.
./target/release/mars-cli serve --listen "unix:$SERVE_SOCK" --seed 1 \
    --store "$SERVE_STORE" > /tmp/mars-serve-log2.$$ 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || { echo "serve never rebound $SERVE_SOCK"; cat /tmp/mars-serve-log2.$$; exit 1; }
PLACE_C=$(./target/release/mars-cli place seq2seq --connect "unix:$SERVE_SOCK" --top-k 2 --repeat 3)
diff <(echo "$PLACE_A") <(echo "$PLACE_C") || {
    echo "warm-restart responses diverged from the first run"; exit 1; }
./target/release/mars-cli place seq2seq --connect "unix:$SERVE_SOCK" --shutdown > /dev/null
wait "$SERVE_PID" || { echo "restarted serve daemon failed"; cat /tmp/mars-serve-log2.$$; exit 1; }
grep -q "1 entries loaded" /tmp/mars-serve-log2.$$ || {
    echo "restart did not load the placement store"; cat /tmp/mars-serve-log2.$$; exit 1; }
grep -q "warm 1" /tmp/mars-serve-log2.$$ || {
    echo "restart did not answer from the warm tier"; cat /tmp/mars-serve-log2.$$; exit 1; }
rm -f /tmp/mars-serve-log.$$ /tmp/mars-serve-log2.$$ "$SERVE_STORE"

echo "==> serve bench, smoke mode (open-loop load generator, byte-identity checked)"
cargo bench -p mars-bench --bench serve --offline -- --smoke

echo "==> OK: build, tests, bench smoke, engine parity, fleet, observability, fault and serve smokes all green"
