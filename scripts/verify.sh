#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build, full test suite, and a
# one-iteration smoke pass over every microbenchmark. This is the exact
# gate CI runs; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test -q (offline)"
cargo test -q --offline --workspace

echo "==> kernel benches, smoke mode (one iteration each)"
cargo bench -p mars-bench --bench kernels --offline -- --smoke

echo "==> OK: build, tests, and bench smoke all green"
