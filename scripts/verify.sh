#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build, full test suite, and a
# one-iteration smoke pass over every microbenchmark. This is the exact
# gate CI runs; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test -q (offline)"
cargo test -q --offline --workspace

echo "==> kernel benches, smoke mode (one iteration each)"
cargo bench -p mars-bench --bench kernels --offline -- --smoke

echo "==> rollout engine bench, smoke mode (asserts parallel+cached == serial)"
cargo bench -p mars-bench --bench rollout --offline -- --smoke

echo "==> engine parity: smoke train serial vs --eval-threads 4 must print identically"
SERIAL_OUT=$(./target/release/mars-cli train inception --budget 40 --dgi-iters 10 --seed 1 \
    --eval-threads 1)
ENGINE_OUT=$(./target/release/mars-cli train inception --budget 40 --dgi-iters 10 --seed 1 \
    --eval-threads 4)
diff <(echo "$SERIAL_OUT") <(echo "$ENGINE_OUT") || {
    echo "parallel evaluation changed training output"; exit 1; }

echo "==> telemetry smoke: tiny instrumented training run + summarize"
TELEMETRY_RUN=$(mktemp /tmp/mars-telemetry-XXXXXX.jsonl)
trap 'rm -f "$TELEMETRY_RUN"' EXIT
./target/release/mars-cli train inception --budget 40 --dgi-iters 10 --seed 1 \
    --telemetry "$TELEMETRY_RUN" > /dev/null
SUMMARY=$(./target/release/mars-cli metrics summarize "$TELEMETRY_RUN")
echo "$SUMMARY" | grep -q "tensor.ops.matmul" || {
    echo "telemetry summary has no tensor kernel spans"; exit 1; }
echo "$SUMMARY" | grep -q "ppo.update" || {
    echo "telemetry summary has no PPO update events"; exit 1; }
echo "$SUMMARY" | grep -q "sim.eval" || {
    echo "telemetry summary has no simulator eval events"; exit 1; }

echo "==> OK: build, tests, bench smoke, engine parity, and telemetry smoke all green"
