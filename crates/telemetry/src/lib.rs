#![warn(missing_docs)]
//! Hermetic observability for the Mars pipeline: scoped timing spans,
//! named metrics, and a per-step JSONL event recorder.
//!
//! The paper's artifacts (Fig. 7 convergence curves, Table 2 training
//! times) are derived from *traces* of training runs; this crate is the
//! structured replacement for the ad-hoc `println!`s those traces used
//! to come from. It is std-only and serializes through the in-repo
//! [`mars_json`] crate, so the workspace stays zero-external-dependency.
//!
//! Three layers, all global (process-wide) so instrumentation points
//! never have to thread handles through call signatures:
//!
//! * [`spans`] — RAII wall-clock timers forming a per-thread call tree,
//!   aggregated by span *path* (count / total / self time). Disabled by
//!   default; when off, [`span`] costs one relaxed atomic load.
//! * [`metrics`] — process-wide counters, gauges, and fixed-bucket
//!   histograms. Counters are atomic and safe to bump from the tensor
//!   thread pool.
//! * [`recorder`] — a JSONL sink (file or in-memory buffer) for
//!   structured per-step events ([`event`]). When no recorder is
//!   installed, [`event`] is a cheap no-op; guard expensive field
//!   computation with [`active`].
//!
//! [`summary`] parses a recorded run back into metric rollups and a
//! span tree — `mars-cli metrics summarize <run.jsonl>` is a thin shell
//! around it, as are `metrics tail` ([`summary::tail_line`]) and
//! `metrics flame` ([`RunSummary::collapsed_stacks`]). Fleet runs
//! merge worker-shipped snapshots into the same file via
//! [`append_record`], so one JSONL describes the whole distributed
//! run ([`summary::FleetReport`]).
//!
//! Span naming convention: `crate.module.fn` (e.g.
//! `tensor.ops.matmul`); the aggregation key is the `/`-joined call
//! path, so the same kernel shows up separately under each caller.
//!
//! Determinism contract: nothing in this crate touches an RNG stream or
//! feeds back into numerics — a run with telemetry enabled must produce
//! bit-identical results to one without (see
//! `tests/telemetry_determinism.rs` at the workspace root).
//!
//! ```
//! use mars_telemetry as telemetry;
//!
//! let sink = telemetry::install_memory();
//! {
//!     let _outer = telemetry::span("doc.outer");
//!     let _inner = telemetry::span("doc.inner");
//!     telemetry::event("doc.step", &[("loss", 0.5.into())]);
//!     telemetry::counter("doc.steps").inc();
//! }
//! telemetry::uninstall();
//! let lines = sink.lock().unwrap().join("\n");
//! let run = telemetry::summary::summarize(&lines).unwrap();
//! assert_eq!(run.events, 1);
//! assert!(run.spans.iter().any(|s| s.path == "doc.outer/doc.inner"));
//! ```

pub mod metrics;
pub mod recorder;
pub mod spans;
pub mod summary;

pub use metrics::{counter, gauge, gauge_value, histogram, Counter, Histogram};
pub use recorder::{
    active, append_record, event, install_file, install_memory, uninstall, MemorySink,
};
pub use spans::{enable_spans, span, spans_enabled, SpanGuard};
pub use summary::{summarize, FleetReport, RolloutReport, RunSummary, WorkerHealth};

/// Serializes tests that flip process-global telemetry state (span
/// enablement, recorder installation, metric resets).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
