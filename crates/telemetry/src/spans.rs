//! Scoped wall-clock spans with hierarchical aggregation.
//!
//! A [`span`] opens a timing scope on the current thread; dropping the
//! returned [`SpanGuard`] closes it. Scopes nest: each guard's
//! aggregation key is the `/`-joined path of every open span on the
//! thread (`core.agent.train/core.agent.sample/sim.engine.simulate`),
//! so one kernel appears separately under each of its callers and the
//! registry reads back as a call tree.
//!
//! Per path the registry keeps *count* (times entered), *total* (sum of
//! wall time inside the span, children included) and *self* (total
//! minus time attributed to child spans) — the numbers a profiler's
//! flat view needs. Recursive spans double-count their total by design;
//! self time stays correct.
//!
//! Collection is off by default. [`enable_spans`] flips a process-wide
//! atomic; when off, [`span`] returns an inert guard after a single
//! relaxed load, which keeps instrumented hot kernels (`matmul` in the
//! LSTM step loop) at full speed.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Aggregated statistics for one span path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds inside the span, children included.
    pub total_ns: u64,
    /// Total minus nanoseconds spent in child spans.
    pub self_ns: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SpanStat>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SpanStat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

struct Frame {
    path: String,
    /// Nanoseconds already attributed to completed direct children.
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Turn span collection on or off (process-wide). Installing a recorder
/// ([`crate::install_file`] / [`crate::install_memory`]) enables spans
/// automatically.
pub fn enable_spans(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being collected.
#[inline]
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII guard returned by [`span`]; closes the scope on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    start: Instant,
    /// Depth of this guard's frame in the thread stack; `usize::MAX`
    /// marks an inert (disabled) guard.
    depth: usize,
}

/// Open a timing scope named `name` (convention: `crate.module.fn`).
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard { start: Instant::now(), depth: usize::MAX };
    }
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}/{}", parent.path, name),
            None => name.to_string(),
        };
        stack.push(Frame { path, child_ns: 0 });
        stack.len() - 1
    });
    SpanGuard { start: Instant::now(), depth }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.depth == usize::MAX {
            return;
        }
        let elapsed_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop in LIFO order per thread; popping down to this
            // guard's depth also recovers from frames leaked by a panic
            // inside the scope.
            while stack.len() > self.depth + 1 {
                stack.pop();
            }
            let Some(frame) = stack.pop() else { return };
            let self_ns = elapsed_ns.saturating_sub(frame.child_ns);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += elapsed_ns;
            }
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            let stat = reg.entry(frame.path).or_default();
            stat.count += 1;
            stat.total_ns += elapsed_ns;
            stat.self_ns += self_ns;
        });
    }
}

/// Snapshot of every span path recorded so far, sorted by path.
pub fn snapshot() -> Vec<(String, SpanStat)> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut rows: Vec<(String, SpanStat)> =
        reg.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Clear the span registry (the current thread's open spans keep
/// running and will re-insert their paths when they close).
pub fn reset() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn stat(path: &str) -> Option<SpanStat> {
        snapshot().into_iter().find(|(p, _)| p == path).map(|(_, s)| s)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = test_lock();
        enable_spans(false);
        {
            let _g = span("test.disabled.root");
        }
        assert!(stat("test.disabled.root").is_none());
    }

    #[test]
    fn nested_spans_build_paths_and_self_time() {
        let _serial = test_lock();
        enable_spans(true);
        {
            let _outer = span("test.nest.outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = span("test.nest.inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        enable_spans(false);
        let outer = stat("test.nest.outer").expect("outer recorded");
        let inner = stat("test.nest.outer/test.nest.inner").expect("inner nested under outer");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Outer total covers both sleeps; its self time excludes the
        // inner span's whole duration.
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
        assert!(inner.self_ns > 2_000_000, "inner slept ≥ 4 ms: {inner:?}");
        assert!(outer.self_ns > 2_000_000, "outer slept ≥ 4 ms outside inner: {outer:?}");
    }

    #[test]
    fn sibling_spans_accumulate_counts() {
        let _serial = test_lock();
        enable_spans(true);
        {
            let _root = span("test.sib.root");
            for _ in 0..3 {
                let _leaf = span("test.sib.leaf");
            }
        }
        enable_spans(false);
        let leaf = stat("test.sib.root/test.sib.leaf").expect("leaf recorded");
        assert_eq!(leaf.count, 3);
        let root = stat("test.sib.root").expect("root recorded");
        assert!(root.total_ns >= leaf.total_ns);
    }

    #[test]
    fn threads_have_independent_stacks() {
        let _serial = test_lock();
        enable_spans(true);
        let _main = span("test.thread.main");
        std::thread::spawn(|| {
            let _g = span("test.thread.worker");
        })
        .join()
        .expect("worker thread");
        enable_spans(false);
        // The worker's span must be a root path, not nested under the
        // main thread's open span.
        assert!(stat("test.thread.worker").is_some());
        assert!(stat("test.thread.main/test.thread.worker").is_none());
    }
}
