//! Process-wide named metrics: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are looked up (and lazily created) by name; [`Counter`] and
//! [`Histogram`] are cheap `Arc` clones backed by atomics, so hot code
//! can resolve a handle once and bump it from any thread — including
//! the tensor crate's kernel thread pool. Gauges are last-value-wins
//! `f64` cells for quantities that only make sense as "the most recent
//! reading" (per-eval makespan, peak memory fraction).
//!
//! Snapshots feed the recorder's end-of-run summary records; [`reset`]
//! clears everything (done automatically when a recorder is installed
//! so each run's JSONL is self-contained).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing atomic counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// `edges` are the inclusive upper bounds of the first `edges.len()`
/// buckets; one implicit overflow bucket catches everything larger, so
/// there are `edges.len() + 1` buckets in total.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

struct HistogramCore {
    edges: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, stored as `f64` bits behind a CAS loop.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.0.edges.iter().position(|&e| v <= e).unwrap_or(self.0.edges.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bucket upper edges (the overflow bucket has no edge).
    pub fn edges(&self) -> &[f64] {
        &self.0.edges
    }

    /// Per-bucket counts (`edges.len() + 1` entries, overflow last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

struct Registries {
    counters: Mutex<HashMap<String, Counter>>,
    gauges: Mutex<HashMap<String, f64>>,
    histograms: Mutex<HashMap<String, Histogram>>,
}

fn registries() -> &'static Registries {
    static REG: OnceLock<Registries> = OnceLock::new();
    REG.get_or_init(|| Registries {
        counters: Mutex::new(HashMap::new()),
        gauges: Mutex::new(HashMap::new()),
        histograms: Mutex::new(HashMap::new()),
    })
}

/// Look up (or create) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut reg = registries().counters.lock().unwrap_or_else(|e| e.into_inner());
    reg.entry(name.to_string()).or_insert_with(|| Counter(Arc::new(AtomicU64::new(0)))).clone()
}

/// Set the gauge named `name` to `value` (last write wins).
pub fn gauge(name: &str, value: f64) {
    let mut reg = registries().gauges.lock().unwrap_or_else(|e| e.into_inner());
    reg.insert(name.to_string(), value);
}

/// Most recent value of a gauge, if it was ever set.
pub fn gauge_value(name: &str) -> Option<f64> {
    let reg = registries().gauges.lock().unwrap_or_else(|e| e.into_inner());
    reg.get(name).copied()
}

/// Look up (or create) the histogram named `name` with the given bucket
/// upper edges. Edges must be non-empty and strictly increasing; they
/// are fixed on first creation and later calls ignore the argument.
pub fn histogram(name: &str, edges: &[f64]) -> Histogram {
    assert!(!edges.is_empty(), "histogram {name} needs at least one bucket edge");
    assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "histogram {name} edges must be strictly increasing: {edges:?}"
    );
    let mut reg = registries().histograms.lock().unwrap_or_else(|e| e.into_inner());
    reg.entry(name.to_string())
        .or_insert_with(|| {
            Histogram(Arc::new(HistogramCore {
                edges: edges.to_vec(),
                buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }))
        })
        .clone()
}

/// Sorted snapshot of every counter.
pub fn counter_snapshot() -> Vec<(String, u64)> {
    let reg = registries().counters.lock().unwrap_or_else(|e| e.into_inner());
    let mut rows: Vec<(String, u64)> = reg.iter().map(|(k, v)| (k.clone(), v.get())).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Sorted snapshot of every gauge.
pub fn gauge_snapshot() -> Vec<(String, f64)> {
    let reg = registries().gauges.lock().unwrap_or_else(|e| e.into_inner());
    let mut rows: Vec<(String, f64)> = reg.iter().map(|(k, &v)| (k.clone(), v)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// One histogram snapshot row: `(name, edges, bucket counts, total
/// count, sum)`.
pub type HistogramRow = (String, Vec<f64>, Vec<u64>, u64, f64);

/// Sorted snapshot of every histogram.
pub fn histogram_snapshot() -> Vec<HistogramRow> {
    let reg = registries().histograms.lock().unwrap_or_else(|e| e.into_inner());
    let mut rows: Vec<_> = reg
        .iter()
        .map(|(k, h)| (k.clone(), h.edges().to_vec(), h.bucket_counts(), h.count(), h.sum()))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Drop every counter, gauge, and histogram. Handles obtained before
/// the reset keep working but are no longer reachable by name.
pub fn reset() {
    let reg = registries();
    reg.counters.lock().unwrap_or_else(|e| e.into_inner()).clear();
    reg.gauges.lock().unwrap_or_else(|e| e.into_inner()).clear();
    reg.histograms.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let a = counter("test.metrics.shared");
        let b = counter("test.metrics.shared");
        a.inc();
        b.add(4);
        assert_eq!(counter("test.metrics.shared").get(), 5);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let c = counter("test.metrics.concurrent");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("incrementer thread");
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauges_are_last_value_wins() {
        gauge("test.metrics.gauge", 1.5);
        gauge("test.metrics.gauge", -2.25);
        assert_eq!(gauge_value("test.metrics.gauge"), Some(-2.25));
        assert_eq!(gauge_value("test.metrics.never-set"), None);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let h = histogram("test.metrics.hist", &[1.0, 2.0, 4.0]);
        // Exactly on an edge lands in that edge's bucket.
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0, f64::INFINITY] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert!(h.sum().is_infinite());
    }

    #[test]
    fn histogram_sum_accumulates() {
        let h = histogram("test.metrics.hist-sum", &[10.0]);
        h.observe(1.5);
        h.observe(2.25);
        assert!((h.sum() - 3.75).abs() < 1e-12);
        assert_eq!(h.bucket_counts(), vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        let _ = histogram("test.metrics.bad-edges", &[2.0, 1.0]);
    }

    /// Boundary values land deterministically: an observation exactly
    /// on an edge belongs to that edge's bucket (inclusive upper
    /// bound), the next representable float above it overflows into
    /// the following bucket, and the extremes (0, -0, negatives, MAX,
    /// +inf) all have a well-defined home.
    #[test]
    fn histogram_boundary_values_bucket_exactly() {
        let h = histogram("test.metrics.boundary", &[0.0, 1.0, 10.0]);
        h.observe(0.0); // exactly on the first edge → bucket 0
        h.observe(-0.0); // -0 == 0 → bucket 0
        h.observe(-1.5); // below every edge → bucket 0
        h.observe(f64::MIN_POSITIVE); // just above 0 → bucket 1
        h.observe(1.0); // exactly on edge 1 → bucket 1
        h.observe(1.0 + f64::EPSILON); // nextafter(1) → bucket 2
        h.observe(10.0); // last finite edge → bucket 2
        h.observe(f64::MAX); // → overflow
        h.observe(f64::INFINITY); // → overflow
        assert_eq!(h.bucket_counts(), vec![3, 2, 2, 2]);
        assert_eq!(h.count(), 9);
        // NaN compares false against every edge → overflow bucket,
        // never a panic or a lost observation.
        h.observe(f64::NAN);
        assert_eq!(h.bucket_counts(), vec![3, 2, 2, 3]);
        assert_eq!(h.count(), 10);
    }

    /// Concurrent observers must keep count, bucket totals, and the
    /// CAS-looped sum exact — bucket sums equal the total count, and
    /// the f64 sum is order-independent because every observation is
    /// identical.
    #[test]
    fn concurrent_histogram_observations_are_lossless() {
        let h = histogram("test.metrics.hist-concurrent", &[0.5, 1.5]);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        h.observe(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("observer thread");
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.bucket_counts(), vec![0, 4000, 0]);
        assert_eq!(h.sum(), 4000.0, "CAS loop must not lose additions");
    }

    #[test]
    fn snapshots_contain_registered_names() {
        counter("test.metrics.snap").add(7);
        gauge("test.metrics.snap-gauge", 3.0);
        let _ = histogram("test.metrics.snap-hist", &[1.0]);
        assert!(counter_snapshot().iter().any(|(n, v)| n == "test.metrics.snap" && *v >= 7));
        assert!(gauge_snapshot().iter().any(|(n, _)| n == "test.metrics.snap-gauge"));
        assert!(histogram_snapshot().iter().any(|(n, ..)| n == "test.metrics.snap-hist"));
    }
}
