//! Parse a recorded JSONL run back into metric rollups and a span
//! tree, and render them as text (`mars-cli metrics summarize`).

use mars_json::Json;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One aggregated span path from the run's `spans` summary record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRow {
    /// `/`-joined call path (`crate.module.fn` segments).
    pub path: String,
    /// Times entered.
    pub count: u64,
    /// Wall nanoseconds inside the span, children included.
    pub total_ns: u64,
    /// Wall nanoseconds minus child-span time.
    pub self_ns: u64,
}

impl SpanRow {
    /// Last path segment (the span's own name).
    pub fn leaf(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// Statistics of one numeric field across all events with one name.
#[derive(Clone, Debug)]
pub struct FieldRollup {
    /// Event name.
    pub event: String,
    /// Field key.
    pub field: String,
    /// Occurrences.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Value in the last (highest-seq) event carrying the field.
    pub last: f64,
}

/// One histogram from the run's summary records.
#[derive(Clone, Debug)]
pub struct HistogramRow {
    /// Histogram name.
    pub name: String,
    /// Bucket upper edges.
    pub edges: Vec<f64>,
    /// Bucket counts (overflow last).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

/// Everything recovered from one run's JSONL.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Parsed JSONL lines.
    pub lines: usize,
    /// Malformed lines skipped (a crash mid-write tears the last line;
    /// the rest of the run must still summarize).
    pub skipped: usize,
    /// Event records seen.
    pub events: u64,
    /// Per-(event, field) numeric statistics, sorted by (event, field).
    pub rollups: Vec<FieldRollup>,
    /// Span paths of the recording (learner) process, sorted by path.
    pub spans: Vec<SpanRow>,
    /// Per-worker span snapshots merged from the fleet
    /// (`worker_spans` records; the last snapshot per worker wins),
    /// sorted by worker id.
    pub worker_spans: Vec<(u64, Vec<SpanRow>)>,
    /// Per-worker counter snapshots (`worker_counters` records,
    /// last-wins), sorted by worker id.
    pub worker_counters: Vec<(u64, Vec<(String, u64)>)>,
    /// Per-worker health rows (last `fleet.health` heartbeat per
    /// worker, round-trip stats folded in from `net.unit` events),
    /// sorted by worker id.
    pub health: Vec<WorkerHealth>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Final gauge readings, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramRow>,
}

/// One fleet worker's health, from its last `fleet.health` heartbeat
/// plus per-unit round-trip times (`net.unit` events).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerHealth {
    /// Worker id (stable for the life of the connection).
    pub worker: u64,
    /// Work units served so far.
    pub units: u64,
    /// Placements computed so far.
    pub placements: u64,
    /// Size of the most recent shard (queue depth at dispatch).
    pub shard: u64,
    /// Worker wall-clock seconds since it started serving.
    pub wall_s: f64,
    /// Cumulative pure-compute seconds.
    pub compute_s: f64,
    /// Cumulative seconds spent waiting for work.
    pub idle_s: f64,
    /// Completed units with a learner-observed round-trip time.
    pub rtt_count: u64,
    /// Sum of those round-trip times.
    pub rtt_sum_s: f64,
    /// Worst round-trip time.
    pub rtt_max_s: f64,
}

impl WorkerHealth {
    /// Serving throughput (0 before the first heartbeat).
    pub fn units_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.units as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Mean learner-observed round-trip time (0 when none recorded).
    pub fn rtt_mean_s(&self) -> f64 {
        if self.rtt_count > 0 {
            self.rtt_sum_s / self.rtt_count as f64
        } else {
            0.0
        }
    }
}

/// Fleet digest: connection/loss/retry totals, transport frame and
/// byte counters, and the per-worker health table.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Workers that completed the handshake.
    pub workers_connected: u64,
    /// Workers dropped after a disconnect or protocol violation.
    pub workers_lost: u64,
    /// Work units completed.
    pub units_completed: u64,
    /// Placements re-dispatched after a worker loss.
    pub units_retried: u64,
    /// Frames sent by the recording process.
    pub frames_tx: u64,
    /// Frames received.
    pub frames_rx: u64,
    /// Payload bytes sent.
    pub bytes_tx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Per-worker health rows, sorted by worker id.
    pub health: Vec<WorkerHealth>,
}

impl FleetReport {
    /// Render as the fleet block `metrics summarize` prints: totals,
    /// net counters, and one health-table row per worker.
    pub fn render(&self) -> String {
        let mut out = String::from("== fleet ==\n");
        let _ = writeln!(
            out,
            "workers: {} connected, {} lost ({} units done, {} placements retried)",
            self.workers_connected, self.workers_lost, self.units_completed, self.units_retried
        );
        let _ = writeln!(
            out,
            "net: {} frames / {} bytes tx, {} frames / {} bytes rx",
            self.frames_tx, self.bytes_tx, self.frames_rx, self.bytes_rx
        );
        if !self.health.is_empty() {
            let _ = writeln!(
                out,
                "{:<8} {:>6} {:>11} {:>8} {:>10} {:>9} {:>9} {:>10} {:>10}",
                "worker",
                "units",
                "placements",
                "units/s",
                "shard",
                "compute_s",
                "idle_s",
                "rtt mean",
                "rtt max"
            );
            for h in &self.health {
                let _ = writeln!(
                    out,
                    "{:<8} {:>6} {:>11} {:>8.2} {:>10} {:>9.3} {:>9.3} {:>8.1} ms {:>7.1} ms",
                    h.worker,
                    h.units,
                    h.placements,
                    h.units_per_s(),
                    h.shard,
                    h.compute_s,
                    h.idle_s,
                    h.rtt_mean_s() * 1e3,
                    h.rtt_max_s * 1e3
                );
            }
        }
        out
    }
}

/// Rollout-engine digest: eval-cache effectiveness and the concurrent
/// evaluation speedup, recovered from `sim.cache.*` counters and
/// `sim.eval_batch` events.
#[derive(Clone, Debug)]
pub struct RolloutReport {
    /// Cache hits over all evaluations.
    pub cache_hits: u64,
    /// Cache misses over all evaluations.
    pub cache_misses: u64,
    /// Evaluation rounds recorded.
    pub rounds: u64,
    /// Mean wall-clock seconds per evaluation round.
    pub mean_round_wall_s: f64,
    /// Total wall-clock seconds across rounds.
    pub total_wall_s: f64,
    /// Total per-evaluation compute seconds (sum of each evaluation's
    /// own wall time — what a fully serial engine would have spent).
    pub total_compute_s: f64,
    /// Training-tape arena reuses (`autograd.arena.reset` counter).
    pub arena_resets: u64,
    /// Peak pooled gradient/activation capacity in f32 elements
    /// (`autograd.arena.high_water` gauge; 0 when never recorded).
    pub arena_high_water: f64,
    /// Batched encoder passes (`encode.batch_size` histogram count).
    pub encodes: u64,
    /// Sum of corpus widths across those passes.
    pub encode_batch_sum: f64,
}

impl RolloutReport {
    /// Hit fraction over all lookups (0 when none were made).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Parallel speedup factor: serial-equivalent compute time over the
    /// actual batched wall time (1.0 when no rounds were recorded).
    pub fn parallel_speedup(&self) -> f64 {
        if self.total_wall_s > 0.0 {
            self.total_compute_s / self.total_wall_s
        } else {
            1.0
        }
    }

    /// Mean corpus width over all batched encoder passes (0 when
    /// the run never encoded a batch).
    pub fn mean_encode_batch(&self) -> f64 {
        if self.encodes > 0 {
            self.encode_batch_sum / self.encodes as f64
        } else {
            0.0
        }
    }

    /// Render as the summary lines `metrics summarize` prints. The
    /// cache/round lines always appear (a pretrain-only trace reads
    /// "0 of 0 evaluations"); the arena lines appear whenever the run
    /// recorded training-arena or batched-encoding activity.
    pub fn render(&self) -> String {
        let mut out = format!(
            "eval cache hit rate: {:.1}% ({} of {} evaluations)\n\
             eval rounds: {} (mean {:.4} s wall; parallel speedup {:.2}x over serial compute)\n",
            self.cache_hit_rate() * 100.0,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.rounds,
            self.mean_round_wall_s,
            self.parallel_speedup(),
        );
        if self.arena_resets > 0 || self.arena_high_water > 0.0 {
            let _ = writeln!(
                out,
                "training arena: {} tape reuses (high water {:.0} pooled f32s)",
                self.arena_resets, self.arena_high_water
            );
        }
        if self.encodes > 0 {
            let _ = writeln!(
                out,
                "batched encodes: {} (mean corpus width {:.2})",
                self.encodes,
                self.mean_encode_batch()
            );
        }
        out
    }
}

/// Fault-injection digest: what the resilience layer absorbed during
/// the run, recovered from `sim.fault.*` / `train.crash_resume`
/// counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Permanent device failures fired.
    pub device_failures: u64,
    /// Placement remaps performed after a failure.
    pub remaps: u64,
    /// Total ops moved off dead devices across all remaps.
    pub remapped_ops: u64,
    /// Transient evaluation errors injected.
    pub transients: u64,
    /// Extra evaluation attempts spent on retries.
    pub retries: u64,
    /// Evaluations that exhausted the retry budget.
    pub retry_exhausted: u64,
    /// Straggler slowdowns injected.
    pub stragglers: u64,
    /// Stragglers slow enough to abort the evaluation.
    pub straggler_aborts: u64,
    /// Agent crashes injected.
    pub crashes: u64,
    /// Checkpoint resumes performed after a crash.
    pub crash_resumes: u64,
}

impl FaultReport {
    /// True when the run recorded no fault activity at all.
    pub fn is_empty(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Render as the fault-summary block `metrics summarize` prints.
    pub fn render(&self) -> String {
        let mut out = String::from("== fault injection ==\n");
        let _ = writeln!(
            out,
            "device failures: {} ({} remaps, {} ops moved to live devices)",
            self.device_failures, self.remaps, self.remapped_ops
        );
        let _ = writeln!(
            out,
            "transient errors: {} ({} retries spent, {} evaluations gave up)",
            self.transients, self.retries, self.retry_exhausted
        );
        let _ = writeln!(
            out,
            "stragglers: {} ({} aborted past the cutoff)",
            self.stragglers, self.straggler_aborts
        );
        let _ = writeln!(
            out,
            "agent crashes: {} ({} checkpoint resumes)",
            self.crashes, self.crash_resumes
        );
        out
    }
}

impl RunSummary {
    /// Value of a counter by name (0 when the run never touched it).
    fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Fault-injection digest, if the run recorded any fault activity
    /// (`sim.fault.*` or `train.crash_resume` counters).
    pub fn fault_report(&self) -> Option<FaultReport> {
        let report = FaultReport {
            device_failures: self.counter("sim.fault.device_failure"),
            remaps: self.counter("sim.fault.remap"),
            remapped_ops: self.counter("sim.fault.remap_ops"),
            transients: self.counter("sim.fault.transient"),
            retries: self.counter("sim.fault.retry"),
            retry_exhausted: self.counter("sim.fault.retry_exhausted"),
            stragglers: self.counter("sim.fault.straggler"),
            straggler_aborts: self.counter("sim.fault.straggler_abort"),
            crashes: self.counter("sim.fault.crash"),
            crash_resumes: self.counter("train.crash_resume"),
        };
        (!report.is_empty()).then_some(report)
    }

    /// Fleet digest, if the run recorded any fleet activity
    /// (`net.*` counters or worker heartbeats).
    pub fn fleet_report(&self) -> Option<FleetReport> {
        let report = FleetReport {
            workers_connected: self.counter("net.workers_connected"),
            workers_lost: self.counter("net.worker_lost"),
            units_completed: self.counter("net.units_completed"),
            units_retried: self.counter("net.units_retried"),
            frames_tx: self.counter("net.frames_tx"),
            frames_rx: self.counter("net.frames_rx"),
            bytes_tx: self.counter("net.bytes_tx"),
            bytes_rx: self.counter("net.bytes_rx"),
            health: self.health.clone(),
        };
        (report.workers_connected + report.frames_tx + report.frames_rx > 0
            || !report.health.is_empty())
        .then_some(report)
    }

    /// Rollout-engine digest, if the run recorded any evaluations
    /// (`sim.cache.*` counters or `sim.eval_batch` events) *or* any
    /// training-arena activity (`autograd.arena.*`, `encode.batch_size`).
    /// Pretrain-only traces have no evaluations but do reuse the
    /// training tape, so they still get a report — the eval lines read
    /// zero and the arena/encode lines carry the signal.
    pub fn rollout_report(&self) -> Option<RolloutReport> {
        let hits = self.counter("sim.cache.hit");
        let misses = self.counter("sim.cache.miss");
        let rollup = |field: &str| {
            self.rollups.iter().find(|r| r.event == "sim.eval_batch" && r.field == field)
        };
        let wall = rollup("wall_s");
        let compute = rollup("compute_s");
        let arena_resets = self.counter("autograd.arena.reset");
        let arena_high_water = self
            .gauges
            .iter()
            .find(|(n, _)| n == "autograd.arena.high_water")
            .map_or(0.0, |(_, v)| *v);
        let enc = self.histograms.iter().find(|h| h.name == "encode.batch_size");
        let encodes = enc.map_or(0, |h| h.count);
        let encode_batch_sum = enc.map_or(0.0, |h| h.sum);
        if hits + misses == 0 && wall.is_none() && arena_resets == 0 && encodes == 0 {
            return None;
        }
        let rounds = wall.map_or(0, |r| r.count);
        let mean_round_wall_s = wall.map_or(0.0, |r| r.mean);
        let total_wall_s = wall.map_or(0.0, |r| r.mean * r.count as f64);
        let total_compute_s = compute.map_or(0.0, |r| r.mean * r.count as f64);
        Some(RolloutReport {
            cache_hits: hits,
            cache_misses: misses,
            rounds,
            mean_round_wall_s,
            total_wall_s,
            total_compute_s,
            arena_resets,
            arena_high_water,
            encodes,
            encode_batch_sum,
        })
    }

    /// Fraction of total span *self* time spent in spans whose leaf name
    /// starts with any of `prefixes` (e.g. `["tensor.", "nn."]`).
    /// Returns 0 when no span time was recorded.
    pub fn self_time_fraction(&self, prefixes: &[&str]) -> f64 {
        let total: u64 = self.spans.iter().map(|s| s.self_ns).sum();
        if total == 0 {
            return 0.0;
        }
        let matched: u64 = self
            .spans
            .iter()
            .filter(|s| prefixes.iter().any(|p| s.leaf().starts_with(p)))
            .map(|s| s.self_ns)
            .sum();
        matched as f64 / total as f64
    }

    /// Export every span row in collapsed-stack format — the input
    /// `flamegraph.pl` and inferno's `flamegraph` consume: one line
    /// per stack, `;`-joined frames, value = span *self*-time in
    /// microseconds (non-zero self-times round up to 1). The first
    /// frame names the process, so one graph shows the learner next
    /// to every worker.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        collapse_into(&mut out, "learner", &self.spans);
        for (id, rows) in &self.worker_spans {
            collapse_into(&mut out, &format!("worker:{id}"), rows);
        }
        out
    }

    /// Self-time totals by leaf span name for each process in the run
    /// (`learner` first, then every worker), each sorted descending —
    /// the per-process kernel attribution `metrics flame` prints.
    pub fn process_profiles(&self) -> Vec<(String, Vec<(String, u64)>)> {
        let profile = |rows: &[SpanRow]| -> Vec<(String, u64)> {
            let mut by_leaf: HashMap<&str, u64> = HashMap::new();
            for s in rows {
                *by_leaf.entry(s.leaf()).or_default() += s.self_ns;
            }
            let mut rows: Vec<(String, u64)> =
                by_leaf.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            rows
        };
        let mut out = Vec::with_capacity(1 + self.worker_spans.len());
        if !self.spans.is_empty() {
            out.push(("learner".to_string(), profile(&self.spans)));
        }
        for (id, rows) in &self.worker_spans {
            out.push((format!("worker:{id}"), profile(rows)));
        }
        out
    }

    /// Render the span tree and metric rollups as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} JSONL lines, {} events", self.lines, self.events);
        if self.skipped > 0 {
            let _ = writeln!(
                out,
                "warning: skipped {} malformed line(s) (torn write or truncated file)",
                self.skipped
            );
        }

        if !self.spans.is_empty() {
            let total_self: u64 = self.spans.iter().map(|s| s.self_ns).sum();
            let _ = writeln!(out, "\n== span tree (total | self | count) ==");
            render_span_tree(&mut out, &self.spans, total_self);

            let _ = writeln!(out, "\n== span self-time by name ==");
            let mut by_leaf: HashMap<&str, u64> = HashMap::new();
            for s in &self.spans {
                *by_leaf.entry(s.leaf()).or_default() += s.self_ns;
            }
            let mut rows: Vec<(&str, u64)> = by_leaf.into_iter().collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            for (leaf, self_ns) in rows {
                let pct = 100.0 * self_ns as f64 / total_self.max(1) as f64;
                let _ = writeln!(out, "{leaf:<44} {:>12}  {pct:5.1}%", fmt_ns(self_ns));
            }
        }

        for (id, rows) in &self.worker_spans {
            let total_self: u64 = rows.iter().map(|s| s.self_ns).sum();
            let _ = writeln!(out, "\n== worker {id} span tree (total | self | count) ==");
            render_span_tree(&mut out, rows, total_self);
        }

        if !self.rollups.is_empty() {
            let _ = writeln!(out, "\n== event field rollups ==");
            let mut last_event = "";
            for r in &self.rollups {
                if r.event != last_event {
                    let _ = writeln!(out, "{} ({} values)", r.event, r.count);
                    last_event = &r.event;
                }
                let _ = writeln!(
                    out,
                    "  {:<26} mean {:>12.6}  min {:>12.6}  max {:>12.6}  last {:>12.6}",
                    r.field, r.mean, r.min, r.max, r.last
                );
            }
        }

        if !self.counters.is_empty() {
            let _ = writeln!(out, "\n== counters ==");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<44} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\n== gauges (final reading) ==");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<44} {v:.6}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\n== histograms ==");
            for h in &self.histograms {
                let mean = if h.count > 0 { h.sum / h.count as f64 } else { 0.0 };
                let _ = writeln!(out, "{} (count {}, mean {mean:.6})", h.name, h.count);
                for (i, &c) in h.buckets.iter().enumerate() {
                    let label = match h.edges.get(i) {
                        Some(e) => format!("<= {e}"),
                        None => "overflow".to_string(),
                    };
                    let _ = writeln!(out, "  {label:<20} {c}");
                }
            }
        }
        out
    }
}

/// Append `rows` to `out` in collapsed-stack format under a leading
/// `process` frame. Zero-self-time rows are dropped (they carry no
/// area); everything else rounds up to ≥ 1 µs so it stays visible.
fn collapse_into(out: &mut String, process: &str, rows: &[SpanRow]) {
    for r in rows {
        if r.self_ns == 0 {
            continue;
        }
        let stack = r.path.replace('/', ";");
        let _ = writeln!(out, "{process};{stack} {}", r.self_ns.div_ceil(1000));
    }
}

/// Render one parsed JSONL record as a compact single line — the
/// per-record view `mars-cli metrics tail` prints.
pub fn tail_line(j: &Json) -> String {
    let count = |j: &Json| j.as_array().map_or(0, Vec::len);
    let fields = |j: &Json| j.as_object().map_or(0, Vec::len);
    match j["kind"].as_str() {
        Some("event") => {
            let mut s = format!(
                "#{:<6} {}",
                j["seq"].as_u64().unwrap_or(0),
                j["name"].as_str().unwrap_or("<unnamed>")
            );
            if let Some(pairs) = j.as_object() {
                for (k, v) in pairs {
                    if matches!(k.as_str(), "seq" | "kind" | "name") {
                        continue;
                    }
                    let _ = write!(s, " {k}={v}");
                }
            }
            s
        }
        Some("spans") => format!("[spans] {} paths", count(&j["spans"])),
        Some("worker_spans") => {
            format!(
                "[worker {} spans] {} paths",
                j["worker"].as_u64().unwrap_or(0),
                count(&j["spans"])
            )
        }
        Some("counters") => format!("[counters] {} totals", fields(&j["counters"])),
        Some("worker_counters") => format!(
            "[worker {} counters] {} totals",
            j["worker"].as_u64().unwrap_or(0),
            fields(&j["counters"])
        ),
        Some("gauges") => format!("[gauges] {} readings", fields(&j["gauges"])),
        Some("histograms") => {
            format!("[histograms] {} recorded — run complete", count(&j["histograms"]))
        }
        Some(other) => format!("[{other}]"),
        None => "[record with no kind]".to_string(),
    }
}

/// Format nanoseconds human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

struct TreeNode {
    name: String,
    row: Option<SpanRow>,
    children: Vec<TreeNode>,
}

fn insert_path(root: &mut TreeNode, segments: &[&str], row: &SpanRow) {
    let Some((head, rest)) = segments.split_first() else {
        root.row = Some(row.clone());
        return;
    };
    let child = match root.children.iter_mut().position(|c| c.name == *head) {
        Some(i) => &mut root.children[i],
        None => {
            root.children.push(TreeNode {
                name: (*head).to_string(),
                row: None,
                children: Vec::new(),
            });
            root.children.last_mut().expect("just pushed")
        }
    };
    insert_path(child, rest, row);
}

fn render_node(out: &mut String, node: &TreeNode, depth: usize, total_self: u64) {
    if let Some(row) = &node.row {
        let indent = "  ".repeat(depth);
        let pct = 100.0 * row.self_ns as f64 / total_self.max(1) as f64;
        let label = format!("{indent}{}", node.name);
        let _ = writeln!(
            out,
            "{label:<52} {:>12} | {:>12} ({pct:4.1}%) | x{}",
            fmt_ns(row.total_ns),
            fmt_ns(row.self_ns),
            row.count
        );
    }
    let mut children: Vec<&TreeNode> = node.children.iter().collect();
    children.sort_by_key(|c| std::cmp::Reverse(c.row.as_ref().map_or(0, |r| r.total_ns)));
    for child in children {
        render_node(out, child, depth + 1, total_self);
    }
}

fn render_span_tree(out: &mut String, spans: &[SpanRow], total_self: u64) {
    let mut root = TreeNode { name: String::new(), row: None, children: Vec::new() };
    for row in spans {
        let segments: Vec<&str> = row.path.split('/').collect();
        insert_path(&mut root, &segments, row);
    }
    // The root is synthetic: render its children at depth 0.
    let mut children: Vec<&TreeNode> = root.children.iter().collect();
    children.sort_by_key(|c| std::cmp::Reverse(c.row.as_ref().map_or(0, |r| r.total_ns)));
    for child in children {
        render_node(out, child, 0, total_self);
    }
}

/// Decode the `spans` array of a `spans` / `worker_spans` record.
fn parse_span_rows(j: &Json) -> Vec<SpanRow> {
    j.as_array()
        .map(Vec::as_slice)
        .unwrap_or_default()
        .iter()
        .map(|s| SpanRow {
            path: s["path"].as_str().unwrap_or_default().to_string(),
            count: s["count"].as_u64().unwrap_or(0),
            total_ns: s["total_ns"].as_u64().unwrap_or(0),
            self_ns: s["self_ns"].as_u64().unwrap_or(0),
        })
        .collect()
}

/// Parse a full JSONL run. Blank lines are ignored; malformed lines
/// (a crash can tear the last write mid-line) are counted in
/// [`RunSummary::skipped`] rather than poisoning the whole file.
pub fn summarize(text: &str) -> Result<RunSummary, String> {
    let mut summary = RunSummary::default();
    // (event, field) -> (count, sum, min, max, last)
    // (count, sum, min, max, last) per (event, field).
    type FieldAgg = (u64, f64, f64, f64, f64);
    let mut agg: HashMap<(String, String), FieldAgg> = HashMap::new();
    let mut worker_spans: HashMap<u64, Vec<SpanRow>> = HashMap::new();
    let mut worker_counters: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
    let mut health: HashMap<u64, WorkerHealth> = HashMap::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(value) = Json::parse(line) else {
            summary.skipped += 1;
            continue;
        };
        summary.lines += 1;
        match value["kind"].as_str() {
            Some("event") => {
                summary.events += 1;
                let name = value["name"].as_str().unwrap_or("<unnamed>").to_string();
                if name == "fleet.health" {
                    if let Some(worker) = value["worker"].as_u64() {
                        let h = health.entry(worker).or_default();
                        h.worker = worker;
                        h.units = value["units"].as_u64().unwrap_or(h.units);
                        h.placements = value["placements"].as_u64().unwrap_or(h.placements);
                        h.shard = value["shard"].as_u64().unwrap_or(h.shard);
                        h.wall_s = value["wall_s"].as_f64().unwrap_or(h.wall_s);
                        h.compute_s = value["compute_s"].as_f64().unwrap_or(h.compute_s);
                        h.idle_s = value["idle_s"].as_f64().unwrap_or(h.idle_s);
                    }
                } else if name == "net.unit" {
                    if let (Some(worker), Some(rtt)) =
                        (value["worker"].as_u64(), value["latency_s"].as_f64())
                    {
                        let h = health.entry(worker).or_default();
                        h.worker = worker;
                        h.rtt_count += 1;
                        h.rtt_sum_s += rtt;
                        h.rtt_max_s = h.rtt_max_s.max(rtt);
                    }
                }
                let Some(pairs) = value.as_object() else { continue };
                for (key, field) in pairs {
                    if matches!(key.as_str(), "seq" | "kind" | "name") {
                        continue;
                    }
                    let Some(v) = field.as_f64() else { continue };
                    let entry = agg.entry((name.clone(), key.clone())).or_insert((
                        0,
                        0.0,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        v,
                    ));
                    entry.0 += 1;
                    entry.1 += v;
                    entry.2 = entry.2.min(v);
                    entry.3 = entry.3.max(v);
                    entry.4 = v;
                }
            }
            Some("spans") => {
                summary.spans.extend(parse_span_rows(&value["spans"]));
            }
            Some("worker_spans") => {
                // Snapshots are cumulative; keep only the latest.
                let worker = value["worker"].as_u64().unwrap_or(0);
                worker_spans.insert(worker, parse_span_rows(&value["spans"]));
            }
            Some("worker_counters") => {
                let worker = value["worker"].as_u64().unwrap_or(0);
                let rows = value["counters"]
                    .as_object()
                    .map(|pairs| {
                        pairs.iter().map(|(k, v)| (k.clone(), v.as_u64().unwrap_or(0))).collect()
                    })
                    .unwrap_or_default();
                worker_counters.insert(worker, rows);
            }
            Some("counters") => {
                if let Some(pairs) = value["counters"].as_object() {
                    for (k, v) in pairs {
                        summary.counters.push((k.clone(), v.as_u64().unwrap_or(0)));
                    }
                }
            }
            Some("gauges") => {
                if let Some(pairs) = value["gauges"].as_object() {
                    for (k, v) in pairs {
                        summary.gauges.push((k.clone(), v.as_f64().unwrap_or(0.0)));
                    }
                }
            }
            Some("histograms") => {
                for h in value["histograms"].as_array().map(Vec::as_slice).unwrap_or_default() {
                    summary.histograms.push(HistogramRow {
                        name: h["name"].as_str().unwrap_or_default().to_string(),
                        edges: h["edges"]
                            .as_array()
                            .map(|a| a.iter().filter_map(Json::as_f64).collect())
                            .unwrap_or_default(),
                        buckets: h["buckets"]
                            .as_array()
                            .map(|a| a.iter().filter_map(Json::as_u64).collect())
                            .unwrap_or_default(),
                        count: h["count"].as_u64().unwrap_or(0),
                        sum: h["sum"].as_f64().unwrap_or(0.0),
                    });
                }
            }
            _ => {}
        }
    }

    summary.rollups = agg
        .into_iter()
        .map(|((event, field), (count, sum, min, max, last))| FieldRollup {
            event,
            field,
            count,
            mean: sum / count.max(1) as f64,
            min,
            max,
            last,
        })
        .collect();
    summary.rollups.sort_by(|a, b| (&a.event, &a.field).cmp(&(&b.event, &b.field)));
    summary.spans.sort_by(|a, b| a.path.cmp(&b.path));
    summary.counters.sort_by(|a, b| a.0.cmp(&b.0));
    summary.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    summary.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    summary.worker_spans = worker_spans
        .into_iter()
        .map(|(id, mut rows)| {
            rows.sort_by(|a, b| a.path.cmp(&b.path));
            (id, rows)
        })
        .collect();
    summary.worker_spans.sort_by_key(|(id, _)| *id);
    summary.worker_counters = worker_counters
        .into_iter()
        .map(|(id, mut rows)| {
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            (id, rows)
        })
        .collect();
    summary.worker_counters.sort_by_key(|(id, _)| *id);
    summary.health = health.into_values().collect();
    summary.health.sort_by_key(|h| h.worker);
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> String {
        [
            r#"{"seq":1,"kind":"event","name":"ppo.update","reward":-0.5,"entropy":1.2}"#,
            r#"{"seq":2,"kind":"event","name":"ppo.update","reward":-0.3,"entropy":1.0}"#,
            r#"{"seq":3,"kind":"event","name":"sim.eval","makespan_s":0.07}"#,
            concat!(
                r#"{"kind":"spans","spans":["#,
                r#"{"path":"core.agent.train","count":1,"total_ns":1000,"self_ns":100},"#,
                r#"{"path":"core.agent.train/tensor.ops.matmul","count":5,"total_ns":900,"self_ns":900}"#,
                r#"]}"#
            ),
            r#"{"kind":"counters","counters":{"sim.eval.valid":3}}"#,
            r#"{"kind":"gauges","gauges":{"sim.eval.makespan_s":0.07}}"#,
            r#"{"kind":"histograms","histograms":[{"name":"h","edges":[1],"buckets":[2,0],"count":2,"sum":0.5}]}"#,
        ]
        .join("\n")
    }

    #[test]
    fn summarize_aggregates_event_fields() {
        let run = summarize(&sample_run()).expect("parse");
        assert_eq!(run.events, 3);
        let reward = run
            .rollups
            .iter()
            .find(|r| r.event == "ppo.update" && r.field == "reward")
            .expect("reward rollup");
        assert_eq!(reward.count, 2);
        assert!((reward.mean + 0.4).abs() < 1e-12);
        assert_eq!(reward.min, -0.5);
        assert_eq!(reward.max, -0.3);
        assert_eq!(reward.last, -0.3);
    }

    #[test]
    fn summarize_recovers_spans_counters_gauges_histograms() {
        let run = summarize(&sample_run()).expect("parse");
        assert_eq!(run.spans.len(), 2);
        assert_eq!(run.spans[1].leaf(), "tensor.ops.matmul");
        assert_eq!(run.counters, vec![("sim.eval.valid".to_string(), 3)]);
        assert_eq!(run.gauges.len(), 1);
        assert_eq!(run.histograms[0].buckets, vec![2, 0]);
    }

    #[test]
    fn self_time_fraction_by_prefix() {
        let run = summarize(&sample_run()).expect("parse");
        let f = run.self_time_fraction(&["tensor.", "nn."]);
        assert!((f - 0.9).abs() < 1e-12, "{f}");
        assert_eq!(run.self_time_fraction(&["nonexistent."]), 0.0);
    }

    #[test]
    fn render_shows_tree_and_rollups() {
        let run = summarize(&sample_run()).expect("parse");
        let text = run.render();
        assert!(text.contains("span tree"));
        assert!(text.contains("core.agent.train"));
        // Child rendered indented under the parent by leaf name.
        assert!(text.contains("  tensor.ops.matmul"));
        assert!(text.contains("ppo.update"));
        assert!(text.contains("sim.eval.valid"));
    }

    #[test]
    fn rollout_report_from_cache_counters_and_batch_events() {
        let run = [
            r#"{"seq":1,"kind":"event","name":"sim.eval_batch","size":10,"computed":6,"wall_s":0.2,"compute_s":0.6}"#,
            r#"{"seq":2,"kind":"event","name":"sim.eval_batch","size":10,"computed":2,"wall_s":0.2,"compute_s":0.6}"#,
            r#"{"kind":"counters","counters":{"sim.cache.hit":12,"sim.cache.miss":8}}"#,
        ]
        .join("\n");
        let report = summarize(&run).expect("parse").rollout_report().expect("report");
        assert_eq!(report.cache_hits, 12);
        assert_eq!(report.cache_misses, 8);
        assert!((report.cache_hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(report.rounds, 2);
        assert!((report.parallel_speedup() - 3.0).abs() < 1e-9, "{}", report.parallel_speedup());
        let text = report.render();
        assert!(text.contains("60.0%"), "{text}");
        assert!(text.contains("3.00x"), "{text}");
    }

    #[test]
    fn rollout_report_absent_without_eval_telemetry() {
        let run = summarize(&sample_run()).expect("parse");
        assert!(run.rollout_report().is_none());
    }

    /// A pretrain-only trace (zero PPO updates, zero evaluations) must
    /// still produce a rollout report carrying the training-arena and
    /// batched-encoding telemetry, with the eval lines reading zero.
    #[test]
    fn rollout_report_renders_arena_for_pretrain_only_traces() {
        let run = [
            r#"{"seq":1,"kind":"event","name":"dgi.iter","loss":0.69}"#,
            r#"{"kind":"counters","counters":{"autograd.arena.reset":300}}"#,
            r#"{"kind":"gauges","gauges":{"autograd.arena.high_water":8192}}"#,
            r#"{"kind":"histograms","histograms":[{"name":"encode.batch_size","edges":[1,2,4,8,16,32],"buckets":[0,300,0,0,0,0,0],"count":300,"sum":600}]}"#,
        ]
        .join("\n");
        let report = summarize(&run).expect("parse").rollout_report().expect("arena report");
        assert_eq!(report.cache_hits + report.cache_misses, 0);
        assert_eq!(report.arena_resets, 300);
        assert_eq!(report.arena_high_water, 8192.0);
        assert_eq!(report.encodes, 300);
        assert!((report.mean_encode_batch() - 2.0).abs() < 1e-12);
        let text = report.render();
        assert!(text.contains("0 of 0 evaluations"), "{text}");
        assert!(text.contains("training arena: 300 tape reuses (high water 8192 pooled f32s)"), "{text}");
        assert!(text.contains("batched encodes: 300 (mean corpus width 2.00)"), "{text}");
    }

    #[test]
    fn fault_report_from_fault_counters() {
        let run = [
            r#"{"kind":"counters","counters":{"sim.fault.device_failure":1,"sim.fault.remap":3,"sim.fault.remap_ops":42,"sim.fault.transient":5,"sim.fault.retry":6,"sim.fault.retry_exhausted":1,"sim.fault.straggler":2,"sim.fault.straggler_abort":1,"sim.fault.crash":1,"train.crash_resume":1}}"#,
        ]
        .join("\n");
        let report = summarize(&run).expect("parse").fault_report().expect("report");
        assert_eq!(report.device_failures, 1);
        assert_eq!(report.remapped_ops, 42);
        assert_eq!(report.retries, 6);
        assert_eq!(report.crash_resumes, 1);
        let text = report.render();
        assert!(text.contains("device failures: 1 (3 remaps, 42 ops moved"), "{text}");
        assert!(text.contains("transient errors: 5 (6 retries spent, 1 evaluations gave up"));
        assert!(text.contains("agent crashes: 1 (1 checkpoint resumes)"), "{text}");
    }

    #[test]
    fn fault_report_absent_for_clean_runs() {
        let run = summarize(&sample_run()).expect("parse");
        assert!(run.fault_report().is_none());
    }

    /// Regression: a crash mid-write leaves a torn last line; the rest
    /// of the run must still summarize, with the damage counted.
    #[test]
    fn torn_last_line_is_skipped_with_a_counted_warning() {
        let torn = format!("{}\n{}", sample_run(), r#"{"seq":9,"kind":"event","na"#);
        let run = summarize(&torn).expect("torn file still summarizes");
        assert_eq!(run.skipped, 1, "the torn line is counted");
        assert_eq!(run.events, 3, "intact events all survive");
        assert_eq!(run.spans.len(), 2, "intact summary records all survive");
        let text = run.render();
        assert!(text.contains("skipped 1 malformed line(s)"), "{text}");
        // A garbage line mid-file is the same story.
        let run = summarize("not json at all\n{\"kind\":\"event\",\"name\":\"x\",\"seq\":1}")
            .expect("parses");
        assert_eq!(run.skipped, 1);
        assert_eq!(run.events, 1);
    }

    fn fleet_run() -> String {
        [
            r#"{"seq":1,"kind":"event","name":"net.unit","worker":0,"placements":10,"latency_s":0.02}"#,
            r#"{"seq":2,"kind":"event","name":"net.unit","worker":0,"placements":10,"latency_s":0.04}"#,
            r#"{"seq":3,"kind":"event","name":"fleet.health","worker":0,"units":2,"placements":20,"shard":10,"wall_s":4.0,"compute_s":1.5,"idle_s":2.0}"#,
            r#"{"kind":"worker_spans","worker":0,"spans":[{"path":"net.worker.unit","count":1,"total_ns":500,"self_ns":100}]}"#,
            concat!(
                r#"{"kind":"worker_spans","worker":0,"spans":["#,
                r#"{"path":"net.worker.unit","count":2,"total_ns":1000,"self_ns":200},"#,
                r#"{"path":"net.worker.unit/sim.measure.compute","count":20,"total_ns":800,"self_ns":800}"#,
                r#"]}"#
            ),
            r#"{"kind":"worker_counters","worker":0,"counters":{"net.worker.units_served":2}}"#,
            r#"{"kind":"counters","counters":{"net.workers_connected":1,"net.units_completed":2,"net.frames_tx":5,"net.frames_rx":7,"net.bytes_tx":900,"net.bytes_rx":1800}}"#,
        ]
        .join("\n")
    }

    #[test]
    fn worker_snapshots_are_last_wins_and_sorted() {
        let run = summarize(&fleet_run()).expect("parse");
        assert_eq!(run.worker_spans.len(), 1);
        let (id, rows) = &run.worker_spans[0];
        assert_eq!(*id, 0);
        assert_eq!(rows.len(), 2, "only the second (cumulative) snapshot survives");
        assert_eq!(rows[0].count, 2, "latest snapshot wins");
        assert_eq!(run.worker_counters, vec![(0, vec![("net.worker.units_served".into(), 2)])]);
        let text = run.render();
        assert!(text.contains("== worker 0 span tree"), "{text}");
        assert!(text.contains("sim.measure.compute"), "{text}");
    }

    #[test]
    fn fleet_report_merges_health_and_net_counters() {
        let run = summarize(&fleet_run()).expect("parse");
        let report = run.fleet_report().expect("fleet activity present");
        assert_eq!(report.workers_connected, 1);
        assert_eq!(report.units_completed, 2);
        assert_eq!((report.frames_tx, report.frames_rx), (5, 7));
        assert_eq!((report.bytes_tx, report.bytes_rx), (900, 1800));
        assert_eq!(report.health.len(), 1);
        let h = &report.health[0];
        assert_eq!((h.worker, h.units, h.placements, h.shard), (0, 2, 20, 10));
        assert_eq!(h.rtt_count, 2);
        assert!((h.rtt_mean_s() - 0.03).abs() < 1e-12, "{}", h.rtt_mean_s());
        assert!((h.rtt_max_s - 0.04).abs() < 1e-12);
        assert!((h.units_per_s() - 0.5).abs() < 1e-12);
        let text = report.render();
        assert!(text.contains("== fleet =="), "{text}");
        assert!(text.contains("5 frames / 900 bytes tx, 7 frames / 1800 bytes rx"), "{text}");
        assert!(text.contains("workers: 1 connected, 0 lost"), "{text}");
    }

    #[test]
    fn fleet_report_absent_for_in_process_runs() {
        let run = summarize(&sample_run()).expect("parse");
        assert!(run.fleet_report().is_none());
    }

    #[test]
    fn collapsed_stacks_cover_every_process() {
        let both = format!("{}\n{}", sample_run(), fleet_run());
        let run = summarize(&both).expect("parse");
        let stacks = run.collapsed_stacks();
        for line in stacks.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("`frames value` shape");
            assert!(value.parse::<u64>().expect("integer value") >= 1, "{line}");
            assert!(!stack.is_empty() && !stack.contains(' '), "{line}");
        }
        assert!(stacks.contains("learner;core.agent.train;tensor.ops.matmul 1\n"), "{stacks}");
        assert!(stacks.contains("worker:0;net.worker.unit;sim.measure.compute 1\n"), "{stacks}");
        // Profiles attribute self time per process, largest first.
        let profiles = run.process_profiles();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].0, "learner");
        assert_eq!(profiles[0].1[0], ("tensor.ops.matmul".to_string(), 900));
        assert_eq!(profiles[1].0, "worker:0");
        assert_eq!(profiles[1].1[0], ("sim.measure.compute".to_string(), 800));
    }

    #[test]
    fn tail_line_renders_each_record_kind() {
        let lines: Vec<String> =
            fleet_run().lines().map(|l| tail_line(&Json::parse(l).expect("valid"))).collect();
        assert!(lines[0].starts_with("#1"), "{}", lines[0]);
        assert!(lines[0].contains("net.unit") && lines[0].contains("worker=0"), "{}", lines[0]);
        assert!(lines[4].contains("[worker 0 spans] 2 paths"), "{}", lines[4]);
        assert!(lines[5].contains("[worker 0 counters] 1 totals"), "{}", lines[5]);
        assert!(lines[6].contains("[counters] 6 totals"), "{}", lines[6]);
        let done = tail_line(&Json::parse(r#"{"kind":"histograms","histograms":[]}"#).unwrap());
        assert!(done.contains("run complete"), "{done}");
    }

    #[test]
    fn empty_input_is_empty_summary() {
        let run = summarize("\n\n").expect("parse");
        assert_eq!(run.lines, 0);
        assert_eq!(run.events, 0);
        assert!(run.render().contains("0 JSONL lines"));
    }
}
