//! The JSONL run recorder.
//!
//! One record per line, encoded by [`mars_json`]. Three record shapes:
//!
//! * **events** — emitted live by instrumentation points:
//!   `{"seq": 12, "kind": "event", "name": "ppo.update", <fields…>}`.
//!   Field keys are flattened into the object; `seq`, `kind` and `name`
//!   are reserved.
//! * **summary records** — appended once by [`uninstall`]: the span
//!   tree (`"kind": "spans"`), counter totals (`"kind": "counters"`),
//!   last gauge readings (`"kind": "gauges"`), and histogram buckets
//!   (`"kind": "histograms"`).
//! * **merged records** — appended live via [`append_record`]: the
//!   fleet learner folds worker-shipped snapshots into the run as
//!   `"kind": "worker_spans"` / `"kind": "worker_counters"` records
//!   (last snapshot per worker wins at summarize time).
//!
//! Installing a recorder resets the span and metric registries and
//! enables span collection, so every run's file is self-contained.
//! With no recorder installed, [`event`] returns after one relaxed
//! atomic load — instrumentation can stay in place permanently.
//!
//! File sinks flush after every record: events are low-rate (per
//! update / per evaluation round, never per kernel), and a line-
//! complete file is what lets `mars-cli metrics tail --follow` watch
//! a run live.

use crate::{metrics, spans};
use mars_json::Json;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// In-memory sink handle: one recorded JSONL line per element.
pub type MemorySink = Arc<Mutex<Vec<String>>>;

enum Sink {
    File(BufWriter<File>),
    Memory(MemorySink),
}

impl Sink {
    fn write_line(&mut self, line: &str) {
        match self {
            Sink::File(w) => {
                // Recording must never abort training; a full disk just
                // loses telemetry. Flush per record so a live tail (or
                // a post-crash summarize) sees every complete line.
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            }
            Sink::Memory(buf) => {
                buf.lock().unwrap_or_else(|e| e.into_inner()).push(line.to_string());
            }
        }
    }

    fn flush(&mut self) {
        if let Sink::File(w) = self {
            let _ = w.flush();
        }
    }
}

struct Recorder {
    sink: Sink,
    seq: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Recorder>> {
    static SLOT: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Whether a recorder is installed. Check this before computing
/// expensive event fields (gradient norms, advantage statistics).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn install(sink: Sink) {
    let mut slot = slot().lock().unwrap_or_else(|e| e.into_inner());
    spans::reset();
    metrics::reset();
    spans::enable_spans(true);
    *slot = Some(Recorder { sink, seq: 0 });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Install a recorder writing JSONL to `path` (truncating it), reset
/// spans/metrics, and enable span collection.
pub fn install_file<P: AsRef<Path>>(path: P) -> std::io::Result<()> {
    let file = File::create(path)?;
    install(Sink::File(BufWriter::new(file)));
    Ok(())
}

/// Install an in-memory recorder (for tests) and return its buffer.
pub fn install_memory() -> MemorySink {
    let buf: MemorySink = Arc::new(Mutex::new(Vec::new()));
    install(Sink::Memory(Arc::clone(&buf)));
    buf
}

/// Emit one structured event. No-op without an installed recorder.
pub fn event(name: &str, fields: &[(&str, Json)]) {
    if !active() {
        return;
    }
    let mut slot = slot().lock().unwrap_or_else(|e| e.into_inner());
    let Some(rec) = slot.as_mut() else { return };
    rec.seq += 1;
    let mut pairs: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 3);
    pairs.push(("seq".into(), Json::from(rec.seq)));
    pairs.push(("kind".into(), Json::from("event")));
    pairs.push(("name".into(), Json::from(name)));
    for (k, v) in fields {
        pairs.push(((*k).to_string(), v.clone()));
    }
    let line = Json::Obj(pairs).to_string();
    rec.sink.write_line(&line);
}

/// Append one pre-encoded record verbatim (no `seq` assigned). The
/// fleet learner uses this to merge worker-shipped span/counter
/// snapshots (`"kind": "worker_spans"` / `"kind": "worker_counters"`)
/// into the single run file. No-op without an installed recorder.
pub fn append_record(record: &Json) {
    if !active() {
        return;
    }
    let mut slot = slot().lock().unwrap_or_else(|e| e.into_inner());
    let Some(rec) = slot.as_mut() else { return };
    rec.sink.write_line(&record.to_string());
}

fn span_summary_record() -> Json {
    let spans = spans::snapshot();
    Json::obj([
        ("kind", Json::from("spans")),
        (
            "spans",
            Json::arr(spans.into_iter().map(|(path, s)| {
                Json::obj([
                    ("path", Json::from(path)),
                    ("count", Json::from(s.count)),
                    ("total_ns", Json::from(s.total_ns)),
                    ("self_ns", Json::from(s.self_ns)),
                ])
            })),
        ),
    ])
}

fn metric_summary_records() -> Vec<Json> {
    let counters = Json::Obj(
        metrics::counter_snapshot().into_iter().map(|(k, v)| (k, Json::from(v))).collect(),
    );
    let gauges =
        Json::Obj(metrics::gauge_snapshot().into_iter().map(|(k, v)| (k, Json::from(v))).collect());
    let histograms = Json::arr(metrics::histogram_snapshot().into_iter().map(
        |(name, edges, buckets, count, sum)| {
            Json::obj([
                ("name", Json::from(name)),
                ("edges", Json::from(edges)),
                ("buckets", Json::from(buckets)),
                ("count", Json::from(count)),
                ("sum", Json::from(sum)),
            ])
        },
    ));
    vec![
        Json::obj([("kind", Json::from("counters")), ("counters", counters)]),
        Json::obj([("kind", Json::from("gauges")), ("gauges", gauges)]),
        Json::obj([("kind", Json::from("histograms")), ("histograms", histograms)]),
    ]
}

/// Append the span/counter/gauge/histogram summary records, flush, and
/// remove the recorder. Span collection is disabled again. Returns
/// `false` if no recorder was installed.
pub fn uninstall() -> bool {
    let mut slot = slot().lock().unwrap_or_else(|e| e.into_inner());
    let Some(mut rec) = slot.take() else {
        return false;
    };
    ACTIVE.store(false, Ordering::Relaxed);
    spans::enable_spans(false);
    rec.sink.write_line(&span_summary_record().to_string());
    for record in metric_summary_records() {
        rec.sink.write_line(&record.to_string());
    }
    rec.sink.flush();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn events_are_noops_without_recorder() {
        let _serial = test_lock();
        assert!(!active());
        event("test.recorder.dropped", &[("x", Json::from(1u64))]);
        assert!(!uninstall());
    }

    #[test]
    fn events_roundtrip_through_mars_json() {
        let _serial = test_lock();
        let sink = install_memory();
        event(
            "test.recorder.step",
            &[("loss", Json::from(0.25)), ("iter", Json::from(3u64)), ("tag", Json::from("a"))],
        );
        event("test.recorder.step", &[("loss", Json::from(0.125))]);
        assert!(uninstall());

        let lines = sink.lock().expect("sink").clone();
        // 2 events + spans + counters + gauges + histograms.
        assert_eq!(lines.len(), 6);
        let first = Json::parse(&lines[0]).expect("valid JSON");
        assert_eq!(first["kind"].as_str(), Some("event"));
        assert_eq!(first["name"].as_str(), Some("test.recorder.step"));
        assert_eq!(first["seq"].as_u64(), Some(1));
        assert_eq!(first["loss"].as_f64(), Some(0.25));
        assert_eq!(first["iter"].as_u64(), Some(3));
        assert_eq!(first["tag"].as_str(), Some("a"));
        let second = Json::parse(&lines[1]).expect("valid JSON");
        assert_eq!(second["seq"].as_u64(), Some(2));
        // Bit-exact float round-trip via mars-json.
        assert_eq!(second["loss"].as_f64().map(f64::to_bits), Some(0.125f64.to_bits()));
    }

    #[test]
    fn uninstall_appends_summary_records() {
        let _serial = test_lock();
        let sink = install_memory();
        {
            let _g = crate::span("test.recorder.span");
        }
        crate::counter("test.recorder.counter").add(2);
        crate::gauge("test.recorder.gauge", 1.5);
        crate::histogram("test.recorder.hist", &[1.0]).observe(0.5);
        assert!(uninstall());

        let lines = sink.lock().expect("sink").clone();
        let parsed: Vec<Json> = lines.iter().map(|l| Json::parse(l).expect("valid JSON")).collect();
        let spans_rec =
            parsed.iter().find(|j| j["kind"].as_str() == Some("spans")).expect("spans record");
        assert!(spans_rec["spans"]
            .as_array()
            .expect("array")
            .iter()
            .any(|s| s["path"].as_str() == Some("test.recorder.span")));
        let counters = parsed
            .iter()
            .find(|j| j["kind"].as_str() == Some("counters"))
            .expect("counters record");
        assert_eq!(counters["counters"]["test.recorder.counter"].as_u64(), Some(2));
        let gauges =
            parsed.iter().find(|j| j["kind"].as_str() == Some("gauges")).expect("gauges record");
        assert_eq!(gauges["gauges"]["test.recorder.gauge"].as_f64(), Some(1.5));
        let hists = parsed
            .iter()
            .find(|j| j["kind"].as_str() == Some("histograms"))
            .expect("histograms record");
        let h = &hists["histograms"][0];
        assert_eq!(h["name"].as_str(), Some("test.recorder.hist"));
        assert_eq!(h["count"].as_u64(), Some(1));
    }

    #[test]
    fn install_resets_previous_run_state() {
        let _serial = test_lock();
        let _first = install_memory();
        crate::counter("test.recorder.reset").inc();
        assert!(uninstall());

        let sink = install_memory();
        assert!(uninstall());
        let lines = sink.lock().expect("sink").clone();
        let counters = lines
            .iter()
            .map(|l| Json::parse(l).expect("valid JSON"))
            .find(|j| j["kind"].as_str() == Some("counters"))
            .expect("counters record");
        assert!(counters["counters"]["test.recorder.reset"].is_null());
    }

    #[test]
    fn append_record_passes_records_through_verbatim() {
        let _serial = test_lock();
        let rec = Json::obj([
            ("kind", Json::from("worker_spans")),
            ("worker", Json::from(3u64)),
            ("spans", Json::arr([Json::obj([("path", Json::from("net.worker.unit"))])])),
        ]);
        // Without a recorder: silently dropped.
        append_record(&rec);
        let sink = install_memory();
        append_record(&rec);
        assert!(uninstall());
        let lines = sink.lock().expect("sink").clone();
        let back = Json::parse(&lines[0]).expect("valid JSON");
        assert_eq!(back, rec, "record must land byte-equivalent, with no seq added");
    }

    /// Many threads hammering `event` concurrently must interleave
    /// whole lines: exactly one line per event, every line valid JSON,
    /// and the seq numbers a contiguous 1..=N permutation.
    #[test]
    fn concurrent_writers_interleave_whole_lines_with_exact_seqs() {
        let _serial = test_lock();
        const THREADS: usize = 8;
        const EVENTS: usize = 250;
        let sink = install_memory();
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..EVENTS {
                        event(
                            "test.recorder.contend",
                            &[("t", Json::from(t as u64)), ("i", Json::from(i as u64))],
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("writer thread");
        }
        assert!(uninstall());
        let lines = sink.lock().expect("sink").clone();
        let events: Vec<Json> = lines
            .iter()
            .map(|l| Json::parse(l).expect("every line parses — no torn interleaving"))
            .filter(|j| j["kind"].as_str() == Some("event"))
            .collect();
        assert_eq!(events.len(), THREADS * EVENTS, "exactly one line per event");
        let mut seqs: Vec<u64> =
            events.iter().map(|j| j["seq"].as_u64().expect("seq present")).collect();
        seqs.sort_unstable();
        let want: Vec<u64> = (1..=(THREADS * EVENTS) as u64).collect();
        assert_eq!(seqs, want, "seqs must be a contiguous permutation — no losses, no dups");
        // Per-thread payloads all arrived.
        for t in 0..THREADS as u64 {
            let n = events.iter().filter(|j| j["t"].as_u64() == Some(t)).count();
            assert_eq!(n, EVENTS, "thread {t} lost events");
        }
    }

    #[test]
    fn file_sink_writes_lines() {
        let _serial = test_lock();
        let path = std::env::temp_dir().join("mars-telemetry-recorder-test.jsonl");
        install_file(&path).expect("create file sink");
        event("test.recorder.file", &[("v", Json::from(1u64))]);
        assert!(uninstall());
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.lines().count() >= 5);
        assert!(text.contains("test.recorder.file"));
        let _ = std::fs::remove_file(&path);
    }
}
