//! Integration tests for the fault-injection subsystem: remapping
//! correctness (property-tested), retry/straggler semantics, cache
//! invalidation on device failure, and batch/serial equivalence under
//! an active fault plan.

use mars_graph::generators::{Profile, Workload};
use mars_rng::Rng;
use mars_sim::{Cluster, Environment, EvalOutcome, FaultPlan, Placement, SimEnv};

fn env(w: Workload, seed: u64) -> SimEnv {
    SimEnv::new(w.build(Profile::Reduced), Cluster::p100_quad(), seed)
}

fn outcome_bits(o: &EvalOutcome) -> (u8, u64) {
    match o {
        EvalOutcome::Valid { per_step_s } => (0, per_step_s.to_bits()),
        EvalOutcome::Bad { cutoff_s } => (1, cutoff_s.to_bits()),
        EvalOutcome::Invalid { oom } => (2, oom.required_bytes),
        EvalOutcome::TransientError { attempts, .. } => (3, *attempts as u64),
        EvalOutcome::Straggler { slowdown, .. } => (4, slowdown.to_bits()),
    }
}

mars_rng::props! {
    /// Every remapped placement references only live devices, moves
    /// nothing that was alive, and is idempotent — for random
    /// placements under random failure sets (never killing the CPU,
    /// sometimes killing every GPU).
    fn remap_references_only_live_devices(rng, 48) {
        let graph = Workload::InceptionV3.build(Profile::Reduced);
        let mut cluster = Cluster::p100_quad();
        let kill_count = rng.gen_range(1..=cluster.gpu_ids().len());
        let mut gpus = cluster.gpu_ids();
        for _ in 0..kill_count {
            let k = rng.gen_range(0..gpus.len());
            cluster.fail_device(gpus.swap_remove(k));
        }
        let mut p = Placement::random(&graph, &cluster, rng);
        let before = p.clone();
        p.remap_failed(&graph, &cluster);
        for i in 0..p.len() {
            assert!(cluster.is_alive(p.device(i)), "op {i} on dead device {}", p.device(i));
            if cluster.is_alive(before.device(i)) {
                assert_eq!(p.device(i), before.device(i), "op {i} moved off a live device");
            }
        }
        let again = {
            let mut q = p.clone();
            q.remap_failed(&graph, &cluster);
            q
        };
        assert_eq!(again, p, "remap must be idempotent");
    }
}

#[test]
fn device_failure_degrades_cluster_and_invalidates_cache() {
    let mut e = env(Workload::InceptionV3, 7);
    e.set_fault_plan(FaultPlan::parse("fail:2@2").unwrap()).unwrap();
    let p = Placement::all_on(e.graph(), 2);
    // Two healthy evaluations — second is a cache hit.
    let healthy = e.evaluate(&p);
    assert!(healthy.is_valid());
    assert_eq!(e.evaluate(&p), healthy);
    assert_eq!(e.cache_stats().unwrap().0, 1, "one hit before the failure");
    // Evaluation 2 fires the failure first: device 2 dies, the cache is
    // rebuilt, and the placement is remapped off the dead device.
    let degraded = e.evaluate(&p);
    assert!(!e.cluster().is_alive(2));
    assert_eq!(e.cache_stats().unwrap(), (0, 1, 0), "cache was rebuilt on failure");
    assert!(degraded.is_valid(), "remapped placement still runs");
    assert_ne!(
        outcome_bits(&degraded),
        outcome_bits(&healthy),
        "different devices, different reading"
    );
}

#[test]
fn transient_fault_retries_and_succeeds() {
    let mut e = env(Workload::InceptionV3, 7);
    let mut clean = env(Workload::InceptionV3, 7);
    e.set_fault_plan(FaultPlan::parse("transient@0").unwrap()).unwrap();
    let p = Placement::all_on(e.graph(), 1);
    let faulted = e.evaluate(&p);
    let baseline = clean.evaluate(&p);
    assert_eq!(faulted, baseline, "a retried transient recovers the identical reading");
    // One wasted attempt plus backoff: strictly more machine time.
    assert!(e.machine_seconds() > 2.0 * clean.machine_seconds() - 1e-9);
}

#[test]
fn transient_fault_exhausts_retry_budget() {
    let mut e = env(Workload::InceptionV3, 7);
    e.set_fault_plan(FaultPlan {
        events: vec![mars_sim::Fault {
            at_eval: 0,
            kind: mars_sim::FaultKind::Transient { failures: 99 },
        }],
        ..FaultPlan::none()
    })
    .unwrap();
    let p = Placement::all_on(e.graph(), 1);
    match e.evaluate(&p) {
        EvalOutcome::TransientError { attempts, cutoff_s } => {
            assert_eq!(attempts, e.retry.max_retries + 1);
            assert_eq!(cutoff_s, e.bad_cutoff_s);
        }
        other => panic!("expected retry exhaustion, got {other:?}"),
    }
}

#[test]
fn timeout_budget_bounds_retry_spend() {
    let mut e = env(Workload::InceptionV3, 7);
    e.eval_timeout_s = 1.0; // tighter than even one backoff
    e.set_fault_plan(FaultPlan::parse("transient@0").unwrap()).unwrap();
    let p = Placement::all_on(e.graph(), 1);
    let out = e.evaluate(&p);
    assert!(matches!(out, EvalOutcome::TransientError { .. }), "{out:?}");
    assert!(e.machine_seconds() <= 1.0 + 1e-9, "spend capped by the timeout budget");
}

#[test]
fn straggler_slows_machine_time_and_aborts_past_cutoff() {
    let p = Placement::all_on(env(Workload::InceptionV3, 7).graph(), 1);
    // Mild straggler: reading unchanged, machine time scaled.
    let mut mild = env(Workload::InceptionV3, 7);
    let mut clean = env(Workload::InceptionV3, 7);
    mild.set_fault_plan(FaultPlan::parse("straggler:3@0").unwrap()).unwrap();
    let out_mild = mild.evaluate(&p);
    let out_clean = clean.evaluate(&p);
    assert_eq!(out_mild, out_clean, "sub-cutoff straggler keeps the reading");
    let ratio = mild.machine_seconds() / clean.machine_seconds();
    assert!((ratio - 3.0).abs() < 1e-9, "machine time scaled by the slowdown: {ratio}");
    // Catastrophic straggler: slowed per-step blows the cutoff.
    let mut abort = env(Workload::InceptionV3, 7);
    abort.set_fault_plan(FaultPlan::parse("straggler:100000@0").unwrap()).unwrap();
    match abort.evaluate(&p) {
        EvalOutcome::Straggler { slowdown, cutoff_s } => {
            assert_eq!(slowdown, 100000.0);
            assert_eq!(cutoff_s, abort.bad_cutoff_s);
        }
        other => panic!("expected straggler abort, got {other:?}"),
    }
}

#[test]
fn fault_readings_feed_the_cutoff_penalty() {
    let t = EvalOutcome::TransientError { attempts: 4, cutoff_s: 20.0 };
    let s = EvalOutcome::Straggler { slowdown: 8.0, cutoff_s: 20.0 };
    assert_eq!(t.reading_s(100.0), 20.0);
    assert_eq!(s.reading_s(100.0), 20.0);
    assert!(!t.is_valid() && !s.is_valid());
}

#[test]
fn faulty_batch_matches_serial_loop_bitwise() {
    let g = Workload::InceptionV3.build(Profile::Reduced);
    let ps: Vec<Placement> = (0..12)
        .map(|i| match i % 3 {
            0 => Placement::all_on(&g, 1 + i % 4),
            1 => Placement::round_robin(&g, &[1, 1 + i % 4]),
            _ => Placement::blocked(&g, &[1 + i % 2, 3]),
        })
        .collect();
    let plan = "fail:2@5, transient:0.3, straggler:0.2x5, straggler:30@3";
    for (threads, cache) in [(1usize, true), (4, true), (4, false), (1, false)] {
        let mut serial = env(Workload::InceptionV3, 33);
        serial.set_fault_plan(FaultPlan::parse(plan).unwrap()).unwrap();
        serial.set_cache_enabled(cache);
        let serial_out: Vec<EvalOutcome> = ps.iter().map(|p| serial.evaluate(p)).collect();

        let mut batch = env(Workload::InceptionV3, 33);
        batch.set_fault_plan(FaultPlan::parse(plan).unwrap()).unwrap();
        batch.set_cache_enabled(cache);
        batch.set_eval_threads(threads);
        let batch_out = batch.evaluate_batch(&ps);

        assert_eq!(serial_out, batch_out, "threads={threads} cache={cache}");
        assert_eq!(
            serial.machine_seconds().to_bits(),
            batch.machine_seconds().to_bits(),
            "threads={threads} cache={cache}"
        );
        assert_eq!(serial.cluster().failed_ids(), batch.cluster().failed_ids());
    }
}

#[test]
fn crash_fault_is_consumed_once() {
    let mut e = env(Workload::InceptionV3, 7);
    e.set_fault_plan(FaultPlan::parse("crash@1").unwrap()).unwrap();
    let p = Placement::all_on(e.graph(), 1);
    e.evaluate(&p);
    assert!(!e.take_crash(), "no crash before its index");
    e.evaluate(&p);
    assert!(e.take_crash(), "crash fired before evaluation 1");
    assert!(!e.take_crash(), "consumed");
}

#[test]
fn cpu_failure_plan_is_rejected_at_install() {
    let mut e = env(Workload::InceptionV3, 7);
    let err = e.set_fault_plan(FaultPlan::parse("fail:0@1").unwrap()).unwrap_err();
    assert!(err.contains("CPU"), "{err}");
}

#[test]
fn all_gpus_failing_still_trains_on_cpu() {
    let mut e = env(Workload::InceptionV3, 7);
    e.set_fault_plan(FaultPlan::parse("fail:1@0, fail:2@0, fail:3@0, fail:4@0").unwrap()).unwrap();
    let p = Placement::round_robin(e.graph(), &[1, 2, 3, 4]);
    let out = e.evaluate(&p);
    // Everything lands on the CPU: slow (bad) but defined.
    assert!(matches!(out, EvalOutcome::Bad { .. } | EvalOutcome::Valid { .. }), "{out:?}");
    assert_eq!(e.cluster().live_gpu_ids(), Vec::<usize>::new());
}
