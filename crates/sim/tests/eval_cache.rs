//! Property tests of the placement-evaluation memo cache: a cached
//! reading must be indistinguishable from a fresh one for arbitrary
//! placements — valid, bad, and OOM/invalid outcomes alike — and the
//! batched engine must be observably identical to the serial loop.

use mars_graph::generators::{Profile, Workload};
use mars_rng::rngs::StdRng;
use mars_rng::{props, Rng};
use mars_sim::{Cluster, Environment, EvalOutcome, Placement, SimEnv};

fn env(w: Workload, seed: u64) -> SimEnv {
    SimEnv::new(w.build(Profile::Reduced), Cluster::p100_quad(), seed)
}

/// Arbitrary placement biased to also produce OOM and bad outcomes:
/// sometimes piles everything on one device (GNMT all-on-GPU OOMs,
/// BERT all-on-CPU is bad), sometimes scatters uniformly.
fn arb_placement(rng: &mut StdRng, w: Workload) -> Placement {
    let graph = w.build(Profile::Reduced);
    let cluster = Cluster::p100_quad();
    match rng.gen_range(0..4u32) {
        0 => Placement::all_on(&graph, rng.gen_range(0..cluster.num_devices())),
        1 => Placement::blocked(&graph, &[1, 1 + rng.gen_range(0..4usize)]),
        _ => Placement::random(&graph, &cluster, rng),
    }
}

fn arb_workload(rng: &mut StdRng) -> Workload {
    [Workload::InceptionV3, Workload::Gnmt4, Workload::BertBase][rng.gen_range(0..3usize)]
}

fn outcome_bits(o: &EvalOutcome) -> (u8, u64) {
    match o {
        EvalOutcome::Valid { per_step_s } => (0, per_step_s.to_bits()),
        EvalOutcome::Bad { cutoff_s } => (1, cutoff_s.to_bits()),
        EvalOutcome::Invalid { oom } => (2, oom.required_bytes),
        EvalOutcome::TransientError { attempts, .. } => (3, *attempts as u64),
        EvalOutcome::Straggler { slowdown, .. } => (4, slowdown.to_bits()),
    }
}

props! {
    fn cached_reading_equals_fresh_reading(rng, 24) {
        // Evaluate the same placement in a caching env (second call is
        // a hit) and in a cache-free env twice: all four readings and
        // both machine-second totals must agree bit for bit.
        let w = arb_workload(rng);
        let seed = rng.gen::<u64>();
        let p = arb_placement(rng, w);
        let mut cached = env(w, seed);
        let mut fresh = env(w, seed);
        fresh.set_cache_enabled(false);
        let c1 = cached.evaluate(&p);
        let c2 = cached.evaluate(&p);
        let f1 = fresh.evaluate(&p);
        let f2 = fresh.evaluate(&p);
        assert_eq!(cached.cache_stats().expect("cache on").0, 1, "second eval hits");
        assert_eq!(outcome_bits(&c1), outcome_bits(&f1));
        assert_eq!(outcome_bits(&c2), outcome_bits(&f2));
        assert_eq!(outcome_bits(&c1), outcome_bits(&c2), "pure evaluation");
        assert_eq!(
            cached.machine_seconds().to_bits(),
            fresh.machine_seconds().to_bits(),
            "hits must replay the stored machine-time cost"
        );
        assert_eq!(cached.evaluations(), fresh.evaluations());
    }

    fn batch_engine_matches_serial_loop(rng, 12) {
        // A round with duplicates, evaluated serially / batched with
        // threads / batched without cache: identical observables.
        let w = arb_workload(rng);
        let seed = rng.gen::<u64>();
        let distinct: Vec<Placement> =
            (0..4).map(|_| arb_placement(rng, w)).collect();
        let round: Vec<Placement> =
            (0..10).map(|_| distinct[rng.gen_range(0..distinct.len())].clone()).collect();

        let mut serial = env(w, seed);
        let serial_out: Vec<_> =
            round.iter().map(|p| outcome_bits(&serial.evaluate(p))).collect();
        for (threads, cache) in [(1, true), (4, true), (4, false)] {
            let mut e = env(w, seed);
            e.set_eval_threads(threads);
            e.set_cache_enabled(cache);
            let out: Vec<_> =
                e.evaluate_batch(&round).iter().map(outcome_bits).collect();
            assert_eq!(serial_out, out, "threads={threads} cache={cache}");
            assert_eq!(
                serial.machine_seconds().to_bits(),
                e.machine_seconds().to_bits(),
                "threads={threads} cache={cache}"
            );
        }
    }
}

#[test]
fn batch_with_duplicates_matches_cache_free_serial_loop() {
    let w = Workload::InceptionV3;
    let g = w.build(Profile::Reduced);
    let round: Vec<Placement> = vec![
        Placement::all_on(&g, 1),
        Placement::all_on(&g, 2),
        Placement::all_on(&g, 1),
        Placement::all_on(&g, 2),
        Placement::all_on(&g, 1),
    ];
    let mut cached = env(w, 9);
    let mut plain = env(w, 9);
    plain.set_cache_enabled(false);
    let expect: Vec<_> = round.iter().map(|p| outcome_bits(&plain.evaluate(p))).collect();
    let got: Vec<_> = cached.evaluate_batch(&round).iter().map(outcome_bits).collect();
    assert_eq!(expect, got);
    let (hits, misses, _) = cached.cache_stats().expect("cache on");
    assert_eq!((hits, misses), (3, 2), "duplicates hit, first occurrences miss");
}

#[test]
fn capacity_one_cache_evicts_lru_on_every_distinct_insert() {
    use mars_sim::{env_fingerprint, EvalCache, EvalComputation};
    let g = Workload::InceptionV3.build(Profile::Reduced);
    let fp = env_fingerprint(&g, &Cluster::p100_quad());
    let mut c = EvalCache::new(1, fp);
    assert_eq!(c.capacity(), 1);
    let comp = EvalComputation {
        outcome: EvalOutcome::Valid { per_step_s: 0.1 },
        machine_s: 1.0,
        makespan_s: 0.1,
        comm_s: 0.0,
        num_transfers: 0,
        peak_mem_utilization: 0.2,
    };
    let (p1, p2) = (Placement::all_on(&g, 1), Placement::all_on(&g, 2));
    c.insert(p1.clone(), comp.clone(), fp);
    c.insert(p2.clone(), comp, fp);
    assert_eq!(c.len(), 1);
    assert_eq!(c.stats().2, 1, "insert over capacity evicts the LRU entry");
    assert!(c.peek(&p2) && !c.peek(&p1));
}
