//! Deterministic fault injection for the evaluation environment.
//!
//! Real placement-measurement fleets lose devices, hit transient
//! launcher errors, and suffer stragglers; an agent trained against
//! such a fleet must survive all three without its training trace
//! becoming machine-dependent. A [`FaultPlan`] describes *when* faults
//! happen purely in terms of the environment's global evaluation index,
//! and every probabilistic draw is seeded from `(env seed, evaluation
//! index)` with the same SplitMix64 folding scheme the measurement
//! noise uses. Faults therefore commute with evaluation concurrency
//! and memoization: a run with `--eval-threads 4` and the cache on is
//! bit-identical to the serial, uncached run under the same plan.
//!
//! Two fault classes exist:
//!
//! * **Boundary faults** ([`FaultKind::DeviceFailure`],
//!   [`FaultKind::AgentCrash`]) fire *between* evaluations — the
//!   environment degrades its cluster or flags a crash before the
//!   indexed evaluation starts.
//! * **Commit faults** ([`FaultKind::Transient`],
//!   [`FaultKind::Straggler`]) perturb a single evaluation's outcome
//!   and machine-time cost at commit time, after the pure computation
//!   (which may have come from the memo cache) is in hand.

use crate::device::{Cluster, DeviceId, DeviceKind};
use mars_rng::rngs::SplitMix64;
use mars_rng::RngCore;

/// Domain-separation salt for fault draws ("MARSFALT").
const FAULT_SALT: u64 = 0x4d41_5253_4641_4c54;

/// Bounded exponential backoff for transient evaluation errors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Re-tries allowed after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry (seconds of machine time).
    pub base_backoff_s: f64,
    /// Backoff ceiling (seconds).
    pub max_backoff_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_backoff_s: 1.0, max_backoff_s: 30.0 }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (0-based): `base · 2^attempt`,
    /// capped at [`RetryPolicy::max_backoff_s`].
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let factor = 2f64.powi(attempt.min(62) as i32);
        (self.base_backoff_s * factor).min(self.max_backoff_s)
    }
}

/// What kind of fault an event injects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The device permanently drops out of the cluster.
    DeviceFailure {
        /// Which device dies.
        device: DeviceId,
    },
    /// The training process is killed (checkpoint/resume exercise).
    AgentCrash,
    /// The indexed evaluation fails `failures` times before succeeding.
    Transient {
        /// Consecutive failed attempts before one would succeed.
        failures: u32,
    },
    /// The indexed evaluation runs `slowdown`× slower end to end.
    Straggler {
        /// Machine-time multiplication factor (≥ 1).
        slowdown: f64,
    },
}

/// One scheduled fault: `kind` strikes at global evaluation `at_eval`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fault {
    /// Global evaluation index (the environment's evaluation counter).
    pub at_eval: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults plus background fault rates.
///
/// Parsed from a compact spec string (see [`FaultPlan::parse`]):
///
/// ```text
/// fail:2@40            device 2 dies before evaluation 40
/// crash@60             agent crash before evaluation 60
/// transient@10         evaluation 10 fails once, then succeeds
/// transient:0.05       every evaluation fails once w.p. 0.05
/// straggler:8@25       evaluation 25 runs 8× slower
/// straggler:0.02x6     every evaluation straggles 6× w.p. 0.02
/// ```
///
/// Clauses are comma-separated and freely mixed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled faults, sorted by [`Fault::at_eval`].
    pub events: Vec<Fault>,
    /// Per-evaluation probability of a background transient error.
    pub transient_p: f64,
    /// Failed attempts per background transient error.
    pub transient_failures: u32,
    /// Per-evaluation probability of a background straggler.
    pub straggler_p: f64,
    /// Slowdown factor of background stragglers (≥ 1).
    pub straggler_slowdown: f64,
}

impl FaultPlan {
    /// The empty plan: no faults, ever.
    pub fn none() -> Self {
        FaultPlan {
            events: Vec::new(),
            transient_p: 0.0,
            transient_failures: 1,
            straggler_p: 0.0,
            straggler_slowdown: 4.0,
        }
    }

    /// True when the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.transient_p <= 0.0 && self.straggler_p <= 0.0
    }

    /// Parse the spec grammar documented on [`FaultPlan`]. Returns a
    /// descriptive error naming the offending clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            plan.parse_clause(clause)?;
        }
        plan.events.sort_by_key(|f| f.at_eval);
        Ok(plan)
    }

    fn parse_clause(&mut self, clause: &str) -> Result<(), String> {
        let bad = |what: &str| format!("fault plan: {what} in clause '{clause}'");
        if let Some(rest) = clause.strip_prefix("fail:") {
            let (dev, at) =
                rest.split_once('@').ok_or_else(|| bad("expected 'fail:<dev>@<eval>'"))?;
            let device: DeviceId = dev.parse().map_err(|_| bad("bad device id"))?;
            let at_eval: u64 = at.parse().map_err(|_| bad("bad evaluation index"))?;
            self.events.push(Fault { at_eval, kind: FaultKind::DeviceFailure { device } });
        } else if let Some(rest) = clause.strip_prefix("crash@") {
            let at_eval: u64 = rest.parse().map_err(|_| bad("bad evaluation index"))?;
            self.events.push(Fault { at_eval, kind: FaultKind::AgentCrash });
        } else if let Some(rest) = clause.strip_prefix("transient@") {
            let at_eval: u64 = rest.parse().map_err(|_| bad("bad evaluation index"))?;
            self.events.push(Fault { at_eval, kind: FaultKind::Transient { failures: 1 } });
        } else if let Some(rest) = clause.strip_prefix("transient:") {
            let p: f64 = rest.parse().map_err(|_| bad("bad probability"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(bad("probability must be in [0, 1]"));
            }
            self.transient_p = p;
        } else if let Some(rest) = clause.strip_prefix("straggler:") {
            if let Some((slow, at)) = rest.split_once('@') {
                let slowdown: f64 = slow.parse().map_err(|_| bad("bad slowdown factor"))?;
                if slowdown < 1.0 || slowdown.is_nan() {
                    return Err(bad("slowdown must be ≥ 1"));
                }
                let at_eval: u64 = at.parse().map_err(|_| bad("bad evaluation index"))?;
                self.events.push(Fault { at_eval, kind: FaultKind::Straggler { slowdown } });
            } else if let Some((p, slow)) = rest.split_once('x') {
                let p: f64 = p.parse().map_err(|_| bad("bad probability"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad("probability must be in [0, 1]"));
                }
                let slowdown: f64 = slow.parse().map_err(|_| bad("bad slowdown factor"))?;
                if slowdown < 1.0 || slowdown.is_nan() {
                    return Err(bad("slowdown must be ≥ 1"));
                }
                self.straggler_p = p;
                self.straggler_slowdown = slowdown;
            } else {
                return Err(bad("expected 'straggler:<slow>@<eval>' or 'straggler:<p>x<slow>'"));
            }
        } else {
            return Err(bad("unknown clause"));
        }
        Ok(())
    }

    /// Reject plans that cannot be applied to `cluster`: out-of-range
    /// device ids and CPU failures (the host never "fails away" — ops
    /// without a GPU kernel need somewhere to live).
    pub fn validate(&self, cluster: &Cluster) -> Result<(), String> {
        for f in &self.events {
            if let FaultKind::DeviceFailure { device } = f.kind {
                if device >= cluster.num_devices() {
                    return Err(format!(
                        "fault plan: device {device} out of range (cluster has {})",
                        cluster.num_devices()
                    ));
                }
                if cluster.device(device).kind == DeviceKind::Cpu {
                    return Err(format!("fault plan: device {device} is the CPU; it cannot fail"));
                }
            }
        }
        Ok(())
    }

    /// The boundary faults (device failures and crashes), in firing
    /// order. The environment walks this list with a cursor.
    pub fn boundaries(&self) -> Vec<Fault> {
        self.events
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::DeviceFailure { .. } | FaultKind::AgentCrash))
            .cloned()
            .collect()
    }

    /// Uniform draw in `[0, 1)` for `(seed, eval, stream)` — a pure
    /// function of its arguments, independent of draw order.
    fn u01(seed: u64, eval: u64, stream: u64) -> f64 {
        let mixed = seed ^ FAULT_SALT ^ eval.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (stream << 56);
        (SplitMix64::new(mixed).next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Failed attempts evaluation `eval` must absorb: the scheduled
    /// count if a `transient@` event targets it, else a background draw.
    pub fn transient_failures_at(&self, seed: u64, eval: u64) -> u32 {
        for f in &self.events {
            if f.at_eval == eval {
                if let FaultKind::Transient { failures } = f.kind {
                    return failures;
                }
            }
        }
        if self.transient_p > 0.0 && Self::u01(seed, eval, 1) < self.transient_p {
            self.transient_failures
        } else {
            0
        }
    }

    /// Straggler slowdown for evaluation `eval`, if any: the scheduled
    /// factor if a `straggler:<slow>@` event targets it, else a
    /// background draw.
    pub fn straggler_at(&self, seed: u64, eval: u64) -> Option<f64> {
        for f in &self.events {
            if f.at_eval == eval {
                if let FaultKind::Straggler { slowdown } = f.kind {
                    return Some(slowdown);
                }
            }
        }
        if self.straggler_p > 0.0 && Self::u01(seed, eval, 2) < self.straggler_p {
            Some(self.straggler_slowdown)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let p = FaultPlan::parse(
            "fail:2@40, crash@60, transient@10, transient:0.05, \
                                  straggler:8@25, straggler:0.02x6",
        )
        .expect("valid spec");
        assert_eq!(p.events.len(), 4);
        // Sorted by firing index.
        assert_eq!(p.events[0].at_eval, 10);
        assert_eq!(p.events[3].kind, FaultKind::AgentCrash);
        assert_eq!(p.transient_p, 0.05);
        assert_eq!(p.straggler_p, 0.02);
        assert_eq!(p.straggler_slowdown, 6.0);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_spec_is_no_faults() {
        let p = FaultPlan::parse("").expect("empty ok");
        assert!(p.is_empty());
        assert_eq!(p, FaultPlan::none());
    }

    #[test]
    fn parse_errors_name_the_clause() {
        for bad in [
            "fail:2",
            "fail:x@3",
            "crash@soon",
            "transient:1.5",
            "straggler:0.5x0.5",
            "straggler:nope",
            "bogus",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.contains(bad), "error for '{bad}' should quote it: {err}");
        }
    }

    #[test]
    fn validate_rejects_cpu_and_out_of_range() {
        let c = Cluster::p100_quad();
        assert!(FaultPlan::parse("fail:0@5").unwrap().validate(&c).is_err(), "CPU");
        assert!(FaultPlan::parse("fail:9@5").unwrap().validate(&c).is_err(), "range");
        assert!(FaultPlan::parse("fail:2@5").unwrap().validate(&c).is_ok());
    }

    #[test]
    fn draws_are_pure_functions_of_seed_and_index() {
        let p = FaultPlan::parse("transient:0.3, straggler:0.3x4").unwrap();
        for eval in 0..64 {
            assert_eq!(
                p.transient_failures_at(7, eval),
                p.transient_failures_at(7, eval),
                "eval {eval}"
            );
            assert_eq!(p.straggler_at(7, eval), p.straggler_at(7, eval), "eval {eval}");
        }
        // Different seeds decorrelate.
        let hits_a: u32 = (0..256).map(|e| p.transient_failures_at(1, e)).sum();
        let hits_b: u32 = (0..256).map(|e| p.transient_failures_at(2, e)).sum();
        assert!(hits_a > 0 && hits_b > 0);
        let differs =
            (0..256).any(|e| p.transient_failures_at(1, e) != p.transient_failures_at(2, e));
        assert!(differs, "seeds must decorrelate draws");
    }

    #[test]
    fn background_rates_are_roughly_calibrated() {
        let p = FaultPlan::parse("transient:0.25, straggler:0.25x4").unwrap();
        let n = 2000u64;
        let transients = (0..n).filter(|&e| p.transient_failures_at(3, e) > 0).count();
        let stragglers = (0..n).filter(|&e| p.straggler_at(3, e).is_some()).count();
        for hits in [transients, stragglers] {
            let rate = hits as f64 / n as f64;
            assert!((0.18..0.32).contains(&rate), "rate {rate}");
        }
    }

    #[test]
    fn scheduled_events_override_background() {
        let p = FaultPlan::parse("transient@5, straggler:7@9").unwrap();
        assert_eq!(p.transient_failures_at(0, 5), 1);
        assert_eq!(p.transient_failures_at(0, 6), 0, "no background rate");
        assert_eq!(p.straggler_at(0, 9), Some(7.0));
        assert_eq!(p.straggler_at(0, 8), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_s(0), 1.0);
        assert_eq!(r.backoff_s(1), 2.0);
        assert_eq!(r.backoff_s(2), 4.0);
        assert_eq!(r.backoff_s(10), 30.0, "capped");
    }

    #[test]
    fn boundaries_filter_keeps_order() {
        let p = FaultPlan::parse("transient@1, fail:2@3, crash@8, straggler:5@4").unwrap();
        let b = p.boundaries();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], Fault { at_eval: 3, kind: FaultKind::DeviceFailure { device: 2 } });
        assert_eq!(b[1], Fault { at_eval: 8, kind: FaultKind::AgentCrash });
    }
}
