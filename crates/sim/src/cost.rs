//! Per-op execution-time model.
//!
//! `t(op, dev) = overhead + flops / (peak × util)` with
//! `util = flops / (flops + knee)` — small ops are launch-bound, large
//! ops approach the device's effective peak. The knee captures why a
//! batch-1 Inception step (many ~100 MFLOP kernels) achieves a far
//! lower fraction of peak than BERT's ~17 GFLOP matmuls, which is
//! exactly the regime split visible in the paper's absolute numbers.

use crate::device::DeviceSpec;
use mars_graph::OpNode;

/// Execution time of one op on one device, in seconds.
pub fn op_time(node: &OpNode, dev: &DeviceSpec) -> f64 {
    if node.flops <= 0.0 {
        return dev.op_overhead_s;
    }
    let util = node.flops / (node.flops + dev.util_knee_flops);
    dev.op_overhead_s + node.flops / (dev.peak_gflops * 1e9 * util)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use mars_graph::{OpKind, TensorShape};

    fn node(flops: f64) -> OpNode {
        OpNode {
            name: "n".into(),
            kind: OpKind::MatMul,
            output_shape: TensorShape(vec![1]),
            flops,
            param_bytes: 0,
            activation_bytes: 0,
            gpu_compatible: true,
        }
    }

    #[test]
    fn zero_flops_costs_only_overhead() {
        let d = DeviceSpec::p100(0);
        assert_eq!(op_time(&node(0.0), &d), d.op_overhead_s);
    }

    #[test]
    fn monotone_in_flops() {
        let d = DeviceSpec::p100(0);
        let mut last = 0.0;
        for f in [1e6, 1e7, 1e8, 1e9, 1e10] {
            let t = op_time(&node(f), &d);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn large_ops_approach_peak() {
        let d = DeviceSpec::p100(0);
        let f = 1e12;
        let t = op_time(&node(f), &d);
        let ideal = f / (d.peak_gflops * 1e9);
        assert!(t < ideal * 1.05, "t={t}, ideal={ideal}");
    }

    #[test]
    fn small_ops_are_launch_bound() {
        let d = DeviceSpec::p100(0);
        let t = op_time(&node(1e5), &d);
        // Effective rate is far below peak for tiny kernels.
        let rate = 1e5 / (t - d.op_overhead_s);
        assert!(rate < 0.01 * d.peak_gflops * 1e9);
    }

    #[test]
    fn gpu_beats_cpu_on_heavy_ops() {
        let g = DeviceSpec::p100(0);
        let c = DeviceSpec::xeon();
        assert!(op_time(&node(1e10), &g) < op_time(&node(1e10), &c) / 5.0);
    }
}
