//! The measurement protocol around the engine — the `Environment` the
//! RL agent interacts with.
//!
//! §4.2: "we only run the benchmark workload for 15 steps in each
//! placement ... we discard the first 5 steps and average the per-step
//! time of the last 10 steps." §3.4: invalid (OOM) placements receive
//! an extremely long reading (100 s); evaluations beyond a per-workload
//! cutoff are aborted and marked *bad*.

use crate::device::Cluster;
use crate::engine::{simulate, StepReport};
use crate::memory::{check_memory, OomError};
use crate::placement::Placement;
use mars_graph::CompGraph;
use mars_tensor::init::randn_scalar;
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

/// Outcome of evaluating one placement.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalOutcome {
    /// Ran to completion; the averaged per-step time in seconds.
    Valid {
        /// Measured per-step time (mean of the 10 kept steps).
        per_step_s: f64,
    },
    /// Ran but exceeded the cutoff; evaluation was aborted.
    Bad {
        /// The cutoff that was hit, used as the reward reading.
        cutoff_s: f64,
    },
    /// Out of memory — could not run at all.
    Invalid {
        /// Which device overflowed.
        oom: OomError,
    },
}

impl EvalOutcome {
    /// The per-step reading fed to the reward (§3.4): the measurement
    /// for valid placements, the cutoff for bad ones, and the 100 s
    /// penalty for invalid ones.
    pub fn reading_s(&self, invalid_penalty_s: f64) -> f64 {
        match self {
            EvalOutcome::Valid { per_step_s } => *per_step_s,
            EvalOutcome::Bad { cutoff_s } => *cutoff_s,
            EvalOutcome::Invalid { .. } => invalid_penalty_s,
        }
    }

    /// True for [`EvalOutcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, EvalOutcome::Valid { .. })
    }
}

/// An RL environment measuring placements.
pub trait Environment {
    /// Evaluate a placement and return the outcome.
    fn evaluate(&mut self, placement: &Placement) -> EvalOutcome;
    /// The workload graph.
    fn graph(&self) -> &CompGraph;
    /// The device cluster.
    fn cluster(&self) -> &Cluster;
    /// Seconds of (simulated) machine time spent on evaluations so far
    /// — the dominant cost in Fig. 8's agent-training-time comparison.
    fn machine_seconds(&self) -> f64;
    /// Number of evaluations performed.
    fn evaluations(&self) -> usize;
}

/// Simulator-backed environment with the paper's measurement protocol.
///
/// ```
/// use mars_graph::generators::{Profile, Workload};
/// use mars_sim::{Cluster, Environment, EvalOutcome, Placement, SimEnv};
///
/// let graph = Workload::InceptionV3.build(Profile::Reduced);
/// let mut env = SimEnv::new(graph.clone(), Cluster::p100_quad(), 42);
/// let placement = Placement::all_on(&graph, 1); // everything on GPU 0
/// match env.evaluate(&placement) {
///     EvalOutcome::Valid { per_step_s } => assert!(per_step_s > 0.0),
///     other => panic!("inception fits one GPU: {other:?}"),
/// }
/// assert_eq!(env.evaluations(), 1);
/// ```
pub struct SimEnv {
    graph: CompGraph,
    cluster: Cluster,
    rng: StdRng,
    /// Per-step times beyond this are aborted and marked bad.
    pub bad_cutoff_s: f64,
    /// Reading assigned to invalid placements.
    pub invalid_penalty_s: f64,
    /// Relative measurement-noise standard deviation.
    pub noise_sigma: f64,
    /// Steps run per evaluation (warm-up included).
    pub steps_per_eval: usize,
    /// Warm-up steps discarded.
    pub warmup_steps: usize,
    machine_seconds: f64,
    evaluations: usize,
}

impl SimEnv {
    /// Environment with the paper's defaults (15 steps, 5 warm-up,
    /// 100 s invalid penalty, 20 s bad cutoff).
    pub fn new(graph: CompGraph, cluster: Cluster, seed: u64) -> Self {
        SimEnv {
            graph,
            cluster,
            rng: StdRng::seed_from_u64(seed),
            bad_cutoff_s: 20.0,
            invalid_penalty_s: 100.0,
            noise_sigma: 0.03,
            steps_per_eval: 15,
            warmup_steps: 5,
            machine_seconds: 0.0,
            evaluations: 0,
        }
    }

    /// Noise-free single-step simulation (for analysis and tests).
    pub fn true_step_time(&self, placement: &Placement) -> Result<StepReport, OomError> {
        let mut p = placement.clone();
        p.enforce_compatibility(&self.graph, &self.cluster);
        check_memory(&self.graph, &p, &self.cluster)?;
        Ok(simulate(&self.graph, &p, &self.cluster))
    }
}

impl Environment for SimEnv {
    fn evaluate(&mut self, placement: &Placement) -> EvalOutcome {
        let _span = mars_telemetry::span("sim.measure.evaluate");
        self.evaluations += 1;
        let mut p = placement.clone();
        p.enforce_compatibility(&self.graph, &self.cluster);
        let (report, peak_mem) = match check_memory(&self.graph, &p, &self.cluster) {
            Err(oom) => {
                // Startup + failure still costs machine time.
                self.machine_seconds += 5.0;
                mars_telemetry::counter("sim.eval.oom").inc();
                if mars_telemetry::active() {
                    let over = oom.required_bytes as f64 / oom.capacity_bytes.max(1) as f64;
                    mars_telemetry::event(
                        "sim.eval",
                        &[
                            ("outcome", "oom".into()),
                            ("device", (oom.device as f64).into()),
                            ("peak_mem_utilization", over.into()),
                        ],
                    );
                }
                return EvalOutcome::Invalid { oom };
            }
            Ok(mem) => {
                let peak = mem.peak_utilization(&self.cluster);
                (simulate(&self.graph, &p, &self.cluster), peak)
            }
        };
        let base = report.makespan_s;
        if mars_telemetry::active() {
            mars_telemetry::gauge("sim.eval.makespan_s", base);
            mars_telemetry::gauge("sim.eval.comm_s", report.comm_s);
            mars_telemetry::gauge("sim.eval.transfers", report.num_transfers as f64);
            mars_telemetry::gauge("sim.eval.peak_mem_utilization", peak_mem);
        }

        // Bad placements: abort as soon as one step exceeds the cutoff.
        if base > self.bad_cutoff_s {
            self.machine_seconds += base; // one aborted step
            mars_telemetry::counter("sim.eval.bad").inc();
            if mars_telemetry::active() {
                mars_telemetry::event(
                    "sim.eval",
                    &[
                        ("outcome", "bad".into()),
                        ("makespan_s", base.into()),
                        ("comm_s", report.comm_s.into()),
                        ("transfers", (report.num_transfers as f64).into()),
                        ("peak_mem_utilization", peak_mem.into()),
                    ],
                );
            }
            return EvalOutcome::Bad { cutoff_s: self.bad_cutoff_s };
        }

        // Warm-up steps take longer (graph rewrites, allocator growth).
        let warm_factor = 2.0;
        let mut kept = Vec::with_capacity(self.steps_per_eval - self.warmup_steps);
        for step in 0..self.steps_per_eval {
            let noise = 1.0 + self.noise_sigma * randn_scalar(&mut self.rng) as f64;
            let t = base * noise.clamp(0.5, 1.5);
            if step < self.warmup_steps {
                self.machine_seconds += t * warm_factor;
            } else {
                self.machine_seconds += t;
                kept.push(t);
            }
        }
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        mars_telemetry::counter("sim.eval.valid").inc();
        if mars_telemetry::active() {
            mars_telemetry::event(
                "sim.eval",
                &[
                    ("outcome", "valid".into()),
                    ("makespan_s", base.into()),
                    ("reading_s", mean.into()),
                    ("comm_s", report.comm_s.into()),
                    ("transfers", (report.num_transfers as f64).into()),
                    ("peak_mem_utilization", peak_mem.into()),
                ],
            );
        }
        EvalOutcome::Valid { per_step_s: mean }
    }

    fn graph(&self) -> &CompGraph {
        &self.graph
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn machine_seconds(&self) -> f64 {
        self.machine_seconds
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::generators::{Profile, Workload};

    fn env(w: Workload, seed: u64) -> SimEnv {
        SimEnv::new(w.build(Profile::Reduced), Cluster::p100_quad(), seed)
    }

    #[test]
    fn valid_measurement_close_to_truth() {
        let mut e = env(Workload::InceptionV3, 7);
        let p = Placement::all_on(e.graph(), 1);
        let truth = e.true_step_time(&p).expect("fits").makespan_s;
        match e.evaluate(&p) {
            EvalOutcome::Valid { per_step_s } => {
                assert!((per_step_s - truth).abs() / truth < 0.05, "{per_step_s} vs {truth}");
            }
            other => panic!("expected valid, got {other:?}"),
        }
        assert_eq!(e.evaluations(), 1);
        assert!(e.machine_seconds() > truth * 15.0);
    }

    #[test]
    fn oom_yields_invalid_and_penalty_reading() {
        let mut e = env(Workload::Gnmt4, 7);
        let p = Placement::all_on(e.graph(), 1);
        let out = e.evaluate(&p);
        assert!(matches!(out, EvalOutcome::Invalid { .. }));
        assert_eq!(out.reading_s(100.0), 100.0);
    }

    #[test]
    fn cpu_only_bert_is_bad() {
        // BERT entirely on the CPU is far beyond the 20 s cutoff.
        let mut e = env(Workload::BertBase, 7);
        let cpu = e.cluster().cpu_id();
        let p = Placement::all_on(e.graph(), cpu);
        let out = e.evaluate(&p);
        assert!(matches!(out, EvalOutcome::Bad { .. }), "{out:?}");
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let p = Placement::all_on(env(Workload::InceptionV3, 1).graph(), 1);
        let a = env(Workload::InceptionV3, 42).evaluate(&p);
        let b = env(Workload::InceptionV3, 42).evaluate(&p);
        assert_eq!(a, b);
        let c = env(Workload::InceptionV3, 43).evaluate(&p);
        assert_ne!(a, c);
    }

    #[test]
    fn machine_time_accumulates_per_eval() {
        let mut e = env(Workload::InceptionV3, 5);
        let p = Placement::all_on(e.graph(), 1);
        e.evaluate(&p);
        let after_one = e.machine_seconds();
        e.evaluate(&p);
        assert!(e.machine_seconds() > 1.9 * after_one);
    }
}
