//! The measurement protocol around the engine — the `Environment` the
//! RL agent interacts with.
//!
//! §4.2: "we only run the benchmark workload for 15 steps in each
//! placement ... we discard the first 5 steps and average the per-step
//! time of the last 10 steps." §3.4: invalid (OOM) placements receive
//! an extremely long reading (100 s); evaluations beyond a per-workload
//! cutoff are aborted and marked *bad*.
//!
//! # Purity, parallelism, and memoization
//!
//! Evaluating a placement is a *pure function* of `(graph, cluster,
//! environment seed, placement)`: the measurement noise is drawn from a
//! generator seeded by mixing the environment seed with a stable hash
//! of the (compatibility-enforced) placement, not from a shared
//! sequential stream. Re-evaluating the same placement therefore
//! always yields the bit-identical outcome and machine-time cost, which
//! buys two things at once:
//!
//! * **Concurrency** — [`SimEnv::evaluate_batch`] computes a round's
//!   evaluations on up to `eval_threads` threads
//!   ([`mars_tensor::pool::par_tasks`]); results are committed in
//!   sample order on the calling thread, so serial and parallel runs
//!   are bit-identical.
//! * **Memoization** — resampled placements are answered from a
//!   bounded LRU cache ([`crate::cache::EvalCache`]) instead of a full
//!   critical-path simulation. A cache hit replays the stored outcome
//!   *and* the stored simulated machine-seconds, so enabling or
//!   disabling the cache changes wall-clock only, never the training
//!   trace.

use crate::cache::EvalCache;
use crate::device::Cluster;
use crate::engine::{simulate, StepReport};
use crate::fault::{Fault, FaultKind, FaultPlan, RetryPolicy};
use crate::memory::{check_memory, OomError};
use crate::placement::Placement;
use mars_graph::CompGraph;
use mars_rng::rngs::{SplitMix64, StdRng};
use mars_rng::{RngCore, SeedableRng};
use mars_tensor::init::randn_scalar;
use mars_tensor::pool;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;
use std::time::Instant;

/// Outcome of evaluating one placement.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalOutcome {
    /// Ran to completion; the averaged per-step time in seconds.
    Valid {
        /// Measured per-step time (mean of the 10 kept steps).
        per_step_s: f64,
    },
    /// Ran but exceeded the cutoff; evaluation was aborted.
    Bad {
        /// The cutoff that was hit, used as the reward reading.
        cutoff_s: f64,
    },
    /// Out of memory — could not run at all.
    Invalid {
        /// Which device overflowed.
        oom: OomError,
    },
    /// An injected transient error exhausted the retry/timeout budget
    /// (see [`crate::fault::RetryPolicy`]).
    TransientError {
        /// Attempts made before giving up.
        attempts: u32,
        /// The cutoff used as the reward reading.
        cutoff_s: f64,
    },
    /// An injected straggler slowed the run past the cutoff; aborted.
    Straggler {
        /// The slowdown factor that was injected.
        slowdown: f64,
        /// The cutoff used as the reward reading.
        cutoff_s: f64,
    },
}

impl EvalOutcome {
    /// The per-step reading fed to the reward (§3.4): the measurement
    /// for valid placements, the cutoff for bad ones, and the 100 s
    /// penalty for invalid ones.
    pub fn reading_s(&self, invalid_penalty_s: f64) -> f64 {
        match self {
            EvalOutcome::Valid { per_step_s } => *per_step_s,
            EvalOutcome::Bad { cutoff_s } => *cutoff_s,
            EvalOutcome::Invalid { .. } => invalid_penalty_s,
            EvalOutcome::TransientError { cutoff_s, .. } => *cutoff_s,
            EvalOutcome::Straggler { cutoff_s, .. } => *cutoff_s,
        }
    }

    /// True for [`EvalOutcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, EvalOutcome::Valid { .. })
    }
}

/// Everything one evaluation produces: the outcome plus the simulated
/// machine-time cost and the telemetry readings. This is what the
/// memo cache stores — committing a cached computation is
/// indistinguishable from committing a fresh one.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalComputation {
    /// The agent-visible outcome.
    pub outcome: EvalOutcome,
    /// Simulated machine-seconds this evaluation costs (§4.2 protocol
    /// accounting: warm-up steps at double cost, aborted step for bad
    /// placements, 5 s startup overhead for OOM).
    pub machine_s: f64,
    /// Noise-free makespan of one step (NaN for OOM).
    pub makespan_s: f64,
    /// Link-occupancy seconds (NaN for OOM).
    pub comm_s: f64,
    /// Cross-device transfers (0 for OOM).
    pub num_transfers: usize,
    /// Peak device-memory utilization (for OOM: the overflow ratio
    /// `required / capacity` of the overflowing device).
    pub peak_mem_utilization: f64,
}

/// Stable 64-bit fingerprint of a (graph, cluster) pair — the guard key
/// for [`EvalCache`]. Coarse by design (name, sizes, device memory): it
/// exists to catch a cache accidentally reused across environments, not
/// to distinguish adversarially similar graphs.
pub fn env_fingerprint(graph: &CompGraph, cluster: &Cluster) -> u64 {
    let mut h: u64 = 0x4d41_5253_4556_414c; // "MARSEVAL"
    let mut fold = |v: u64| h = SplitMix64::new(h ^ v).next_u64();
    for b in graph.name.bytes() {
        fold(b as u64);
    }
    fold(graph.num_nodes() as u64);
    fold(graph.num_edges() as u64);
    fold(cluster.num_devices() as u64);
    for d in 0..cluster.num_devices() {
        fold(cluster.device(d).memory_bytes);
        // The failure mask is part of the environment identity: losing
        // a device invalidates every memoized evaluation.
        fold(cluster.is_alive(d) as u64);
    }
    h
}

/// A pluggable engine for the *compute phase* of
/// [`SimEnv::evaluate_batch`].
///
/// The batch path splits every round into a serial pre-pass (enforce,
/// remap, cache peek, dedupe), a pure compute phase, and a serial
/// commit phase (cache, machine time, commit faults, telemetry) — see
/// the module docs. A backend replaces only the middle phase: given
/// the deduplicated, compatibility-enforced placements, it must return
/// one computation per placement, each bit-identical to what
/// [`SimEnv::compute`] would produce. The default (no backend) runs
/// [`mars_tensor::pool::par_tasks`] in-process; `mars-net` installs a
/// multi-process worker fleet. Because every observable effect is
/// committed serially by the environment afterwards, a conforming
/// backend can only ever change wall-clock, never the training trace.
pub trait EvalBackend: Send + Sync {
    /// Compute `placements` (already enforced and remapped off failed
    /// devices) against `env`, returning exactly one
    /// `(computation, compute_wall_seconds)` pair per placement, in
    /// order. The wall-clock component is telemetry-only.
    fn compute_batch(
        &mut self,
        env: &SimEnv,
        placements: &[&Placement],
    ) -> Vec<(EvalComputation, f64)>;

    /// Short label for telemetry events (e.g. `"fleet:4"`).
    fn label(&self) -> String;
}

/// An RL environment measuring placements.
pub trait Environment {
    /// Evaluate a placement and return the outcome.
    fn evaluate(&mut self, placement: &Placement) -> EvalOutcome;

    /// Evaluate a whole round of placements, returning outcomes in
    /// sample order. The default implementation is the serial loop;
    /// implementations may compute concurrently as long as every
    /// observable effect (outcomes, machine time, telemetry order) is
    /// identical to the serial loop.
    fn evaluate_batch(&mut self, placements: &[Placement]) -> Vec<EvalOutcome> {
        placements.iter().map(|p| self.evaluate(p)).collect()
    }

    /// The workload graph.
    fn graph(&self) -> &CompGraph;
    /// The device cluster.
    fn cluster(&self) -> &Cluster;
    /// Seconds of (simulated) machine time spent on evaluations so far
    /// — the dominant cost in Fig. 8's agent-training-time comparison.
    fn machine_seconds(&self) -> f64;
    /// Number of evaluations performed.
    fn evaluations(&self) -> usize;
    /// Consume a pending injected agent crash: `true` exactly once per
    /// crash fault that fired since the last call. The training loop
    /// reacts by checkpointing and resuming (see `mars_core`).
    fn take_crash(&mut self) -> bool {
        false
    }
}

/// Simulator-backed environment with the paper's measurement protocol.
///
/// ```
/// use mars_graph::generators::{Profile, Workload};
/// use mars_sim::{Cluster, Environment, EvalOutcome, Placement, SimEnv};
///
/// let graph = Workload::InceptionV3.build(Profile::Reduced);
/// let mut env = SimEnv::new(graph.clone(), Cluster::p100_quad(), 42);
/// let placement = Placement::all_on(&graph, 1); // everything on GPU 0
/// match env.evaluate(&placement) {
///     EvalOutcome::Valid { per_step_s } => assert!(per_step_s > 0.0),
///     other => panic!("inception fits one GPU: {other:?}"),
/// }
/// assert_eq!(env.evaluations(), 1);
/// ```
pub struct SimEnv {
    graph: CompGraph,
    cluster: Cluster,
    seed: u64,
    /// Per-step times beyond this are aborted and marked bad.
    pub bad_cutoff_s: f64,
    /// Reading assigned to invalid placements.
    pub invalid_penalty_s: f64,
    /// Relative measurement-noise standard deviation.
    pub noise_sigma: f64,
    /// Steps run per evaluation (warm-up included).
    pub steps_per_eval: usize,
    /// Warm-up steps discarded.
    pub warmup_steps: usize,
    /// Retry policy for injected transient errors.
    pub retry: RetryPolicy,
    /// Per-evaluation machine-time budget: retries that would push one
    /// evaluation past this are abandoned (mirrors the paper's cutoff
    /// philosophy — never let one measurement stall the search).
    pub eval_timeout_s: f64,
    machine_seconds: f64,
    evaluations: usize,
    eval_threads: usize,
    fingerprint: u64,
    cache: Option<EvalCache>,
    fault_plan: FaultPlan,
    /// Boundary faults (device failures, crashes) not yet fired.
    boundaries: Vec<Fault>,
    boundary_cursor: usize,
    crash_pending: bool,
    backend: Option<Box<dyn EvalBackend>>,
}

impl SimEnv {
    /// Environment with the paper's defaults (15 steps, 5 warm-up,
    /// 100 s invalid penalty, 20 s bad cutoff), a single evaluation
    /// thread, and the memo cache enabled.
    pub fn new(graph: CompGraph, cluster: Cluster, seed: u64) -> Self {
        let fingerprint = env_fingerprint(&graph, &cluster);
        SimEnv {
            graph,
            cluster,
            seed,
            bad_cutoff_s: 20.0,
            invalid_penalty_s: 100.0,
            noise_sigma: 0.03,
            steps_per_eval: 15,
            warmup_steps: 5,
            retry: RetryPolicy::default(),
            eval_timeout_s: 300.0,
            machine_seconds: 0.0,
            evaluations: 0,
            eval_threads: 1,
            fingerprint,
            cache: Some(EvalCache::with_default_capacity(fingerprint)),
            fault_plan: FaultPlan::none(),
            boundaries: Vec::new(),
            boundary_cursor: 0,
            crash_pending: false,
            backend: None,
        }
    }

    /// The environment seed (noise streams and commit-fault draws
    /// derive from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Install (or, with `None`, remove) a compute backend for the
    /// batch path. Dropping a previous backend here lets it release
    /// its resources (a fleet backend shuts its workers down).
    pub fn set_backend(&mut self, backend: Option<Box<dyn EvalBackend>>) {
        self.backend = backend;
    }

    /// Label of the installed compute backend, if any.
    pub fn backend_label(&self) -> Option<String> {
        self.backend.as_ref().map(|b| b.label())
    }

    /// Mark every device in `failed` as failed, skipping those already
    /// dead. This is the fleet worker's mirror of the learner's
    /// boundary device failures: the worker never fires fault plans
    /// itself, it replays the failure mask shipped with each work unit
    /// so its cluster (and environment fingerprint) match the
    /// learner's.
    pub fn sync_failures(&mut self, failed: &[usize]) {
        for &d in failed {
            if self.cluster.is_alive(d) {
                self.apply_device_failure(d);
            }
        }
    }

    /// Install a fault plan (validated against the cluster). Replaces
    /// any previous plan; boundary faults scheduled at or before the
    /// current evaluation count fire before the next evaluation.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), String> {
        plan.validate(&self.cluster)?;
        self.boundaries = plan.boundaries();
        self.boundary_cursor = 0;
        self.fault_plan = plan;
        Ok(())
    }

    /// The installed fault plan (the empty plan by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Global index of the next boundary fault yet to fire, if any.
    fn next_boundary(&self) -> Option<u64> {
        self.boundaries.get(self.boundary_cursor).map(|f| f.at_eval)
    }

    /// Fire every boundary fault scheduled at or before the current
    /// evaluation count. Called before each evaluation (and before each
    /// batch segment), so the firing point is a pure function of the
    /// global evaluation index — identical across threads and caching.
    fn fire_due_faults(&mut self) {
        while let Some(f) = self.boundaries.get(self.boundary_cursor) {
            if f.at_eval > self.evaluations as u64 {
                break;
            }
            let fault = f.clone();
            self.boundary_cursor += 1;
            match fault.kind {
                FaultKind::DeviceFailure { device } => self.apply_device_failure(device),
                FaultKind::AgentCrash => {
                    self.crash_pending = true;
                    mars_telemetry::counter("sim.fault.crash").inc();
                    if mars_telemetry::active() {
                        mars_telemetry::event(
                            "sim.fault.crash",
                            &[("at_eval", (self.evaluations as f64).into())],
                        );
                    }
                }
                // Commit faults never appear in `boundaries`.
                FaultKind::Transient { .. } | FaultKind::Straggler { .. } => unreachable!(),
            }
        }
    }

    /// Degrade the cluster: mark the device dead, refresh the
    /// environment fingerprint (the failure mask is part of it), and
    /// rebuild the memo cache — every stored reading was measured on
    /// the healthy cluster and must not be replayed.
    fn apply_device_failure(&mut self, device: usize) {
        self.cluster.fail_device(device);
        self.fingerprint = env_fingerprint(&self.graph, &self.cluster);
        if self.cache.is_some() {
            self.cache = Some(EvalCache::with_default_capacity(self.fingerprint));
        }
        mars_telemetry::counter("sim.fault.device_failure").inc();
        if mars_telemetry::active() {
            mars_telemetry::event(
                "sim.fault.device_failure",
                &[
                    ("device", (device as f64).into()),
                    ("at_eval", (self.evaluations as f64).into()),
                    ("live_devices", (self.cluster.num_live_devices() as f64).into()),
                ],
            );
        }
    }

    /// Use up to `n` threads (calling thread included) per
    /// [`Environment::evaluate_batch`] round. `0` is treated as `1`.
    /// Thread count never changes results — only wall-clock.
    pub fn set_eval_threads(&mut self, n: usize) {
        self.eval_threads = n.max(1);
    }

    /// Current evaluation concurrency.
    pub fn eval_threads(&self) -> usize {
        self.eval_threads
    }

    /// Enable (default) or disable the placement memo cache. Disabling
    /// drops all entries. The cache never changes results — a hit
    /// replays the stored outcome and machine-time cost bit for bit.
    pub fn set_cache_enabled(&mut self, on: bool) {
        if on && self.cache.is_none() {
            self.cache = Some(EvalCache::with_default_capacity(self.fingerprint));
        } else if !on {
            self.cache = None;
        }
    }

    /// Drop all cached evaluations (call after mutating protocol
    /// parameters such as `noise_sigma` so stale readings cannot be
    /// replayed).
    pub fn reset_cache(&mut self) {
        if self.cache.is_some() {
            self.cache = Some(EvalCache::with_default_capacity(self.fingerprint));
        }
    }

    /// `(hits, misses, evictions)` of the memo cache, if enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64, u64)> {
        self.cache.as_ref().map(EvalCache::stats)
    }

    /// Hit fraction of the memo cache, if enabled.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache.as_ref().map(EvalCache::hit_rate)
    }

    /// Noise-free single-step simulation (for analysis and tests).
    pub fn true_step_time(&self, placement: &Placement) -> Result<StepReport, OomError> {
        let mut p = placement.clone();
        p.enforce_compatibility(&self.graph, &self.cluster);
        check_memory(&self.graph, &p, &self.cluster)?;
        Ok(simulate(&self.graph, &p, &self.cluster))
    }

    /// Compatibility-enforce a sampled placement and remap it off any
    /// failed devices. Runs serially (pre-pass of the batch path, or
    /// inline in the serial path) so remap telemetry is deterministic.
    fn normalize(&self, placement: &Placement) -> Placement {
        let mut p = placement.clone();
        p.enforce_compatibility(&self.graph, &self.cluster);
        let moved = p.remap_failed(&self.graph, &self.cluster);
        if moved > 0 {
            mars_telemetry::counter("sim.fault.remap").inc();
            mars_telemetry::counter("sim.fault.remap_ops").add(moved as u64);
            if mars_telemetry::active() {
                mars_telemetry::event(
                    "sim.fault.remap",
                    &[
                        ("ops_moved", (moved as f64).into()),
                        ("live_devices", (self.cluster.num_live_devices() as f64).into()),
                    ],
                );
            }
        }
        p
    }

    /// Apply this evaluation's commit faults (straggler, transient) to
    /// a pure computation. Keyed by the global evaluation index (the
    /// pre-commit evaluation count), so the transformation is identical
    /// whether `comp` was freshly computed, replayed from the memo
    /// cache, or produced on another thread.
    fn apply_commit_faults(&self, comp: &EvalComputation) -> EvalComputation {
        if self.fault_plan.is_empty() {
            return comp.clone();
        }
        let idx = self.evaluations as u64;
        let mut comp = comp.clone();

        // Straggler: the whole evaluation runs `slow`× longer; if the
        // slowed per-step time would blow the cutoff, the measurement
        // protocol aborts it like any other over-cutoff run. OOM never
        // started, so it cannot straggle.
        if let Some(slow) = self.fault_plan.straggler_at(self.seed, idx) {
            if !matches!(comp.outcome, EvalOutcome::Invalid { .. }) {
                comp.machine_s *= slow;
                mars_telemetry::counter("sim.fault.straggler").inc();
                if let EvalOutcome::Valid { per_step_s } = comp.outcome {
                    if per_step_s * slow > self.bad_cutoff_s {
                        comp.outcome =
                            EvalOutcome::Straggler { slowdown: slow, cutoff_s: self.bad_cutoff_s };
                        mars_telemetry::counter("sim.fault.straggler_abort").inc();
                    }
                }
            }
        }

        // Transient errors: each failed attempt burns a full attempt's
        // machine time plus exponential backoff. The retry budget and
        // the per-evaluation timeout both bound the total spend.
        let failures = self.fault_plan.transient_failures_at(self.seed, idx);
        if failures > 0 {
            mars_telemetry::counter("sim.fault.transient").inc();
            let attempt_cost = comp.machine_s;
            let mut spend = 0.0;
            let mut attempts = 0u32;
            let mut succeeded = false;
            while attempts <= self.retry.max_retries {
                if attempts > 0 {
                    spend += self.retry.backoff_s(attempts - 1);
                }
                spend += attempt_cost;
                attempts += 1;
                if spend > self.eval_timeout_s {
                    break; // the timeout kills the evaluation mid-attempt
                }
                if attempts > failures {
                    succeeded = true;
                    break;
                }
            }
            mars_telemetry::counter("sim.fault.retry").add(attempts.saturating_sub(1) as u64);
            if succeeded {
                comp.machine_s = spend;
            } else {
                mars_telemetry::counter("sim.fault.retry_exhausted").inc();
                comp.machine_s = spend.min(self.eval_timeout_s);
                comp.outcome =
                    EvalOutcome::TransientError { attempts, cutoff_s: self.bad_cutoff_s };
            }
        }
        comp
    }

    /// Stable seed for a placement's measurement noise: the env seed
    /// mixed with a SplitMix64 fold over the device ids. Function of
    /// value only — independent of evaluation order, thread, or count.
    fn noise_seed(&self, enforced: &Placement) -> u64 {
        let mut h = SplitMix64::new(self.seed ^ 0x4d41_5253_5349_4d21).next_u64();
        for &d in &enforced.0 {
            h = SplitMix64::new(h ^ (d as u64).wrapping_add(0x9E37_79B9_7F4A_7C15)).next_u64();
        }
        h
    }

    /// The pure evaluation: everything §4.2 prescribes for one
    /// (already compatibility-enforced) placement. No `&mut self`, no
    /// shared state — safe to run concurrently for distinct
    /// placements, on any thread or in any process that holds an
    /// identically configured environment (this is what fleet workers
    /// call; see [`EvalBackend`]).
    pub fn compute(&self, enforced: &Placement) -> EvalComputation {
        let _span = mars_telemetry::span("sim.measure.compute");
        let report = match check_memory(&self.graph, enforced, &self.cluster) {
            Err(oom) => {
                // Startup + failure still costs machine time.
                let over = oom.required_bytes as f64 / oom.capacity_bytes.max(1) as f64;
                return EvalComputation {
                    outcome: EvalOutcome::Invalid { oom },
                    machine_s: 5.0,
                    makespan_s: f64::NAN,
                    comm_s: f64::NAN,
                    num_transfers: 0,
                    peak_mem_utilization: over,
                };
            }
            Ok(mem) => {
                let peak = mem.peak_utilization(&self.cluster);
                (simulate(&self.graph, enforced, &self.cluster), peak)
            }
        };
        let (report, peak_mem) = report;
        let base = report.makespan_s;

        // Bad placements: abort as soon as one step exceeds the cutoff.
        if base > self.bad_cutoff_s {
            return EvalComputation {
                outcome: EvalOutcome::Bad { cutoff_s: self.bad_cutoff_s },
                machine_s: base, // one aborted step
                makespan_s: base,
                comm_s: report.comm_s,
                num_transfers: report.num_transfers,
                peak_mem_utilization: peak_mem,
            };
        }

        // Warm-up steps take longer (graph rewrites, allocator growth).
        let warm_factor = 2.0;
        let mut rng = StdRng::seed_from_u64(self.noise_seed(enforced));
        let mut machine_s = 0.0;
        let mut kept = Vec::with_capacity(self.steps_per_eval - self.warmup_steps);
        for step in 0..self.steps_per_eval {
            let noise = 1.0 + self.noise_sigma * randn_scalar(&mut rng) as f64;
            let t = base * noise.clamp(0.5, 1.5);
            if step < self.warmup_steps {
                machine_s += t * warm_factor;
            } else {
                machine_s += t;
                kept.push(t);
            }
        }
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        EvalComputation {
            outcome: EvalOutcome::Valid { per_step_s: mean },
            machine_s,
            makespan_s: base,
            comm_s: report.comm_s,
            num_transfers: report.num_transfers,
            peak_mem_utilization: peak_mem,
        }
    }

    /// Serial bookkeeping for one evaluation: machine time, counters,
    /// and the telemetry event. Called in sample order for both the
    /// serial and the batched path, so the observable stream is
    /// identical regardless of how the computation was produced.
    fn commit(&mut self, comp: &EvalComputation, cached: bool) -> EvalOutcome {
        self.evaluations += 1;
        self.machine_seconds += comp.machine_s;
        match &comp.outcome {
            EvalOutcome::Invalid { oom } => {
                mars_telemetry::counter("sim.eval.oom").inc();
                if mars_telemetry::active() {
                    mars_telemetry::event(
                        "sim.eval",
                        &[
                            ("outcome", "oom".into()),
                            ("device", (oom.device as f64).into()),
                            ("peak_mem_utilization", comp.peak_mem_utilization.into()),
                            ("cached", (cached as u64 as f64).into()),
                        ],
                    );
                }
            }
            EvalOutcome::Bad { .. } => {
                self.eval_gauges(comp);
                mars_telemetry::counter("sim.eval.bad").inc();
                if mars_telemetry::active() {
                    mars_telemetry::event(
                        "sim.eval",
                        &[
                            ("outcome", "bad".into()),
                            ("makespan_s", comp.makespan_s.into()),
                            ("comm_s", comp.comm_s.into()),
                            ("transfers", (comp.num_transfers as f64).into()),
                            ("peak_mem_utilization", comp.peak_mem_utilization.into()),
                            ("cached", (cached as u64 as f64).into()),
                        ],
                    );
                }
            }
            EvalOutcome::TransientError { attempts, .. } => {
                mars_telemetry::counter("sim.eval.transient_error").inc();
                if mars_telemetry::active() {
                    mars_telemetry::event(
                        "sim.eval",
                        &[
                            ("outcome", "transient_error".into()),
                            ("attempts", (*attempts as f64).into()),
                            ("cached", (cached as u64 as f64).into()),
                        ],
                    );
                }
            }
            EvalOutcome::Straggler { slowdown, .. } => {
                mars_telemetry::counter("sim.eval.straggler").inc();
                if mars_telemetry::active() {
                    mars_telemetry::event(
                        "sim.eval",
                        &[
                            ("outcome", "straggler".into()),
                            ("slowdown", (*slowdown).into()),
                            ("makespan_s", comp.makespan_s.into()),
                            ("cached", (cached as u64 as f64).into()),
                        ],
                    );
                }
            }
            EvalOutcome::Valid { per_step_s } => {
                self.eval_gauges(comp);
                mars_telemetry::counter("sim.eval.valid").inc();
                if mars_telemetry::active() {
                    mars_telemetry::event(
                        "sim.eval",
                        &[
                            ("outcome", "valid".into()),
                            ("makespan_s", comp.makespan_s.into()),
                            ("reading_s", (*per_step_s).into()),
                            ("comm_s", comp.comm_s.into()),
                            ("transfers", (comp.num_transfers as f64).into()),
                            ("peak_mem_utilization", comp.peak_mem_utilization.into()),
                            ("cached", (cached as u64 as f64).into()),
                        ],
                    );
                }
            }
        }
        if cached {
            mars_telemetry::counter("sim.cache.hit").inc();
        } else {
            mars_telemetry::counter("sim.cache.miss").inc();
        }
        comp.outcome.clone()
    }

    fn eval_gauges(&self, comp: &EvalComputation) {
        if mars_telemetry::active() {
            mars_telemetry::gauge("sim.eval.makespan_s", comp.makespan_s);
            mars_telemetry::gauge("sim.eval.comm_s", comp.comm_s);
            mars_telemetry::gauge("sim.eval.transfers", comp.num_transfers as f64);
            mars_telemetry::gauge("sim.eval.peak_mem_utilization", comp.peak_mem_utilization);
        }
    }

    /// Cache-aware lookup-or-compute for one enforced placement.
    /// Returns the computation and whether it was a cache hit.
    fn lookup_or_compute(&mut self, enforced: Placement) -> (EvalComputation, bool) {
        let fp = self.fingerprint;
        if let Some(cache) = &mut self.cache {
            if let Some(hit) = cache.get(&enforced, fp) {
                return (hit, true);
            }
        }
        let comp = self.compute(&enforced);
        if let Some(cache) = &mut self.cache {
            cache.insert(enforced, comp.clone(), fp);
        }
        (comp, false)
    }
}

impl Environment for SimEnv {
    fn evaluate(&mut self, placement: &Placement) -> EvalOutcome {
        let _span = mars_telemetry::span("sim.measure.evaluate");
        self.fire_due_faults();
        let p = self.normalize(placement);
        let (comp, cached) = self.lookup_or_compute(p);
        let comp = self.apply_commit_faults(&comp);
        self.commit(&comp, cached)
    }

    /// One round of evaluations. Boundary faults (device failures,
    /// crashes) split the round into segments — each segment sees one
    /// consistent cluster, and faults fire at exactly the same global
    /// evaluation index the serial loop would fire them at.
    fn evaluate_batch(&mut self, placements: &[Placement]) -> Vec<EvalOutcome> {
        let _span = mars_telemetry::span("sim.measure.evaluate_batch");
        let mut outcomes = Vec::with_capacity(placements.len());
        let mut i = 0;
        while i < placements.len() {
            self.fire_due_faults();
            let remaining = placements.len() - i;
            let seg = match self.next_boundary() {
                Some(b) => (b.saturating_sub(self.evaluations as u64) as usize).min(remaining),
                None => remaining,
            };
            debug_assert!(seg > 0, "due boundaries fire before segmentation");
            outcomes.extend(self.evaluate_batch_segment(&placements[i..i + seg]));
            i += seg;
        }
        outcomes
    }

    fn graph(&self) -> &CompGraph {
        &self.graph
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn machine_seconds(&self) -> f64 {
        self.machine_seconds
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn take_crash(&mut self) -> bool {
        std::mem::take(&mut self.crash_pending)
    }
}

impl SimEnv {
    /// One boundary-free segment of a round: cache-known placements are
    /// skipped, the remaining computations run on up to `eval_threads`
    /// threads, and all bookkeeping (cache get/insert, machine time,
    /// fault application, telemetry) is committed serially in sample
    /// order — exactly the sequence the serial loop would produce.
    fn evaluate_batch_segment(&mut self, placements: &[Placement]) -> Vec<EvalOutcome> {
        let wall_t0 = Instant::now();
        let enforced: Vec<Placement> = placements.iter().map(|p| self.normalize(p)).collect();

        // Pre-pass: decide what actually needs computing. With the
        // cache on, only the first occurrence of each unknown placement
        // (`peek` leaves recency/stats untouched — the authoritative
        // lookups happen at commit time). With the cache off, every
        // occurrence is computed, matching the serial no-cache loop.
        let mut jobs: Vec<usize> = Vec::new(); // indices into `enforced`
        if self.cache.is_some() {
            let mut scheduled: HashSet<&Placement> = HashSet::new();
            for (i, p) in enforced.iter().enumerate() {
                let known = self.cache.as_ref().is_some_and(|c| c.peek(p));
                if !known && scheduled.insert(p) {
                    jobs.push(i);
                }
            }
        } else {
            jobs = (0..enforced.len()).collect();
        }

        // Compute phase: pure evaluations — on a backend (worker
        // fleet) when one is installed, on the in-process pool
        // otherwise. Either way the results feed the identical serial
        // commit below, so the engine choice is trace-invisible.
        let computed: Vec<(EvalComputation, f64)> = if let Some(mut backend) = self.backend.take() {
            let shard: Vec<&Placement> = jobs.iter().map(|&i| &enforced[i]).collect();
            let out = backend.compute_batch(self, &shard);
            self.backend = Some(backend);
            assert_eq!(
                out.len(),
                jobs.len(),
                "EvalBackend returned {} computations for {} placements",
                out.len(),
                jobs.len()
            );
            out
        } else {
            let slots = Mutex::new(vec![None; jobs.len()]);
            let env = &*self;
            pool::par_tasks(jobs.len(), self.eval_threads, |j| {
                let t0 = Instant::now();
                let comp = env.compute(&enforced[jobs[j]]);
                let wall = t0.elapsed().as_secs_f64();
                slots.lock().unwrap_or_else(|e| e.into_inner())[j] = Some((comp, wall));
            });
            slots
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .into_iter()
                .map(|slot| slot.expect("par_tasks ran every job"))
                .collect()
        };
        let mut by_placement: HashMap<&Placement, EvalComputation> = HashMap::new();
        let mut by_index: HashMap<usize, EvalComputation> = HashMap::new();
        let mut compute_wall_s = 0.0;
        for (j, (comp, wall)) in computed.into_iter().enumerate() {
            compute_wall_s += wall;
            by_placement.insert(&enforced[jobs[j]], comp.clone());
            by_index.insert(jobs[j], comp);
        }

        // Commit phase: sample order, identical to serial evaluate().
        let fp = self.fingerprint;
        let mut outcomes = Vec::with_capacity(enforced.len());
        let mut batch_hits = 0u64;
        for (i, p) in enforced.iter().enumerate() {
            let (comp, cached) = if self.cache.is_some() {
                let from_cache = self.cache.as_mut().and_then(|c| c.get(p, fp));
                match from_cache {
                    Some(hit) => (hit, true),
                    None => {
                        // First occurrence: use the precomputed result
                        // (recomputing on the spot covers the rare case
                        // of an entry evicted between pre-pass and
                        // commit with a tiny cache capacity — the pure
                        // function makes both paths identical).
                        let comp = by_placement.get(p).cloned().unwrap_or_else(|| self.compute(p));
                        if let Some(cache) = &mut self.cache {
                            cache.insert(p.clone(), comp.clone(), fp);
                        }
                        (comp, false)
                    }
                }
            } else {
                (by_index.get(&i).cloned().unwrap_or_else(|| self.compute(p)), false)
            };
            if cached {
                batch_hits += 1;
            }
            let comp = self.apply_commit_faults(&comp);
            outcomes.push(self.commit(&comp, cached));
        }

        if mars_telemetry::active() {
            mars_telemetry::event(
                "sim.eval_batch",
                &[
                    ("size", (enforced.len() as f64).into()),
                    ("computed", (jobs.len() as f64).into()),
                    ("cache_hits", (batch_hits as f64).into()),
                    ("threads", (self.eval_threads as f64).into()),
                    ("backend", self.backend_label().unwrap_or_else(|| "in-process".into()).into()),
                    ("wall_s", wall_t0.elapsed().as_secs_f64().into()),
                    ("compute_s", compute_wall_s.into()),
                ],
            );
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::generators::{Profile, Workload};

    fn env(w: Workload, seed: u64) -> SimEnv {
        SimEnv::new(w.build(Profile::Reduced), Cluster::p100_quad(), seed)
    }

    #[test]
    fn valid_measurement_close_to_truth() {
        let mut e = env(Workload::InceptionV3, 7);
        let p = Placement::all_on(e.graph(), 1);
        let truth = e.true_step_time(&p).expect("fits").makespan_s;
        match e.evaluate(&p) {
            EvalOutcome::Valid { per_step_s } => {
                assert!((per_step_s - truth).abs() / truth < 0.05, "{per_step_s} vs {truth}");
            }
            other => panic!("expected valid, got {other:?}"),
        }
        assert_eq!(e.evaluations(), 1);
        assert!(e.machine_seconds() > truth * 15.0);
    }

    #[test]
    fn oom_yields_invalid_and_penalty_reading() {
        let mut e = env(Workload::Gnmt4, 7);
        let p = Placement::all_on(e.graph(), 1);
        let out = e.evaluate(&p);
        assert!(matches!(out, EvalOutcome::Invalid { .. }));
        assert_eq!(out.reading_s(100.0), 100.0);
    }

    #[test]
    fn cpu_only_bert_is_bad() {
        // BERT entirely on the CPU is far beyond the 20 s cutoff.
        let mut e = env(Workload::BertBase, 7);
        let cpu = e.cluster().cpu_id();
        let p = Placement::all_on(e.graph(), cpu);
        let out = e.evaluate(&p);
        assert!(matches!(out, EvalOutcome::Bad { .. }), "{out:?}");
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let p = Placement::all_on(env(Workload::InceptionV3, 1).graph(), 1);
        let a = env(Workload::InceptionV3, 42).evaluate(&p);
        let b = env(Workload::InceptionV3, 42).evaluate(&p);
        assert_eq!(a, b);
        let c = env(Workload::InceptionV3, 43).evaluate(&p);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_is_placement_deterministic_and_distinct() {
        // Evaluation is pure: same placement, same reading, every time
        // — and different placements draw independent noise.
        let mut e = env(Workload::InceptionV3, 9);
        let p1 = Placement::all_on(e.graph(), 1);
        let p2 = Placement::all_on(e.graph(), 2);
        let a = e.evaluate(&p1);
        let b = e.evaluate(&p2);
        let a2 = e.evaluate(&p1);
        assert_eq!(a, a2, "re-evaluation replays the identical reading");
        assert_ne!(a, b, "distinct placements draw distinct noise");
    }

    #[test]
    fn machine_time_accumulates_per_eval() {
        let mut e = env(Workload::InceptionV3, 5);
        let p = Placement::all_on(e.graph(), 1);
        e.evaluate(&p);
        let after_one = e.machine_seconds();
        e.evaluate(&p);
        assert!(e.machine_seconds() > 1.9 * after_one);
    }

    #[test]
    fn cache_hits_replay_machine_time_and_count_evaluations() {
        let mut e = env(Workload::InceptionV3, 5);
        let p = Placement::all_on(e.graph(), 1);
        e.evaluate(&p);
        let after_one = e.machine_seconds();
        e.evaluate(&p); // cache hit
        assert_eq!(e.machine_seconds(), 2.0 * after_one, "hit replays the stored cost exactly");
        assert_eq!(e.evaluations(), 2);
        assert_eq!(e.cache_stats(), Some((1, 1, 0)));
    }

    #[test]
    fn cache_on_off_observables_identical() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let ps: Vec<Placement> = vec![
            Placement::all_on(&g, 1),
            Placement::round_robin(&g, &[1, 2]),
            Placement::all_on(&g, 1), // repeat → hit when cached
            Placement::blocked(&g, &[1, 2, 3]),
            Placement::round_robin(&g, &[1, 2]), // repeat
        ];
        let mut on = env(Workload::InceptionV3, 11);
        let mut off = env(Workload::InceptionV3, 11);
        off.set_cache_enabled(false);
        let out_on = on.evaluate_batch(&ps);
        let out_off = off.evaluate_batch(&ps);
        assert_eq!(out_on, out_off);
        assert_eq!(on.machine_seconds().to_bits(), off.machine_seconds().to_bits());
        assert_eq!(on.evaluations(), off.evaluations());
        assert!(on.cache_stats().unwrap().0 >= 2, "repeats hit the cache");
        assert!(off.cache_stats().is_none());
    }

    #[test]
    fn batch_matches_serial_loop_bitwise() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let ps: Vec<Placement> = (0..8)
            .map(|i| {
                if i % 3 == 0 {
                    Placement::all_on(&g, 1 + i % 4)
                } else {
                    Placement::round_robin(&g, &[1, 1 + i % 4])
                }
            })
            .collect();
        for threads in [1usize, 4] {
            let mut serial = env(Workload::InceptionV3, 21);
            let serial_out: Vec<EvalOutcome> = ps.iter().map(|p| serial.evaluate(p)).collect();
            let mut batch = env(Workload::InceptionV3, 21);
            batch.set_eval_threads(threads);
            let batch_out = batch.evaluate_batch(&ps);
            assert_eq!(serial_out, batch_out, "threads={threads}");
            assert_eq!(
                serial.machine_seconds().to_bits(),
                batch.machine_seconds().to_bits(),
                "threads={threads}"
            );
            assert_eq!(serial.cache_stats(), batch.cache_stats(), "threads={threads}");
        }
    }

    /// A conforming backend that just calls the pure compute itself
    /// (the degenerate "fleet of one local worker"), counting calls.
    struct LoopbackBackend {
        batches: usize,
        placements: usize,
    }

    impl EvalBackend for LoopbackBackend {
        fn compute_batch(
            &mut self,
            env: &SimEnv,
            placements: &[&Placement],
        ) -> Vec<(EvalComputation, f64)> {
            self.batches += 1;
            self.placements += placements.len();
            placements.iter().map(|p| (env.compute(p), 0.0)).collect()
        }

        fn label(&self) -> String {
            "loopback".into()
        }
    }

    #[test]
    fn backend_path_is_bit_identical_to_inline_path() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let ps: Vec<Placement> = vec![
            Placement::all_on(&g, 1),
            Placement::round_robin(&g, &[1, 2]),
            Placement::all_on(&g, 1), // repeat → cache hit, not a backend job
            Placement::blocked(&g, &[1, 2, 3]),
        ];
        let mut inline = env(Workload::InceptionV3, 33);
        let inline_out = inline.evaluate_batch(&ps);

        let mut routed = env(Workload::InceptionV3, 33);
        routed.set_backend(Some(Box::new(LoopbackBackend { batches: 0, placements: 0 })));
        assert_eq!(routed.backend_label().as_deref(), Some("loopback"));
        let routed_out = routed.evaluate_batch(&ps);

        assert_eq!(inline_out, routed_out);
        assert_eq!(inline.machine_seconds().to_bits(), routed.machine_seconds().to_bits());
        assert_eq!(inline.cache_stats(), routed.cache_stats());
        routed.set_backend(None);
        assert!(routed.backend_label().is_none());
    }

    #[test]
    fn backend_only_sees_deduplicated_cache_misses() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let ps: Vec<Placement> = vec![
            Placement::all_on(&g, 1),
            Placement::all_on(&g, 1),
            Placement::all_on(&g, 2),
            Placement::all_on(&g, 1),
        ];
        let mut e = env(Workload::InceptionV3, 3);
        e.set_backend(Some(Box::new(LoopbackBackend { batches: 0, placements: 0 })));
        e.evaluate_batch(&ps);
        e.evaluate_batch(&ps); // every placement known now: no backend jobs at all
        let (hits, misses, _) = e.cache_stats().expect("cache on");
        assert_eq!(misses, 2, "only the two distinct placements were ever computed");
        assert_eq!(hits, 2 * ps.len() as u64 - 2);
    }

    #[test]
    fn sync_failures_mirrors_device_loss_and_is_idempotent() {
        let mut e = env(Workload::InceptionV3, 8);
        let p = Placement::all_on(e.graph(), 1);
        let healthy = e.compute(&p);
        e.sync_failures(&[2]);
        e.sync_failures(&[2]); // replaying the same mask is a no-op
        assert_eq!(e.cluster().failed_ids(), vec![2]);
        let degraded = e.compute(&p);
        // Placement avoids device 2 entirely, so the pure computation
        // is unchanged — what changes is the fingerprint/cache domain.
        assert_eq!(healthy, degraded);
    }

    #[test]
    fn fingerprint_distinguishes_graphs_and_clusters() {
        let a =
            env_fingerprint(&Workload::InceptionV3.build(Profile::Reduced), &Cluster::p100_quad());
        let b = env_fingerprint(&Workload::BertBase.build(Profile::Reduced), &Cluster::p100_quad());
        assert_ne!(a, b);
    }
}
