//! Execution traces: per-device timelines of one simulated step.
//!
//! [`simulate_traced`] runs the same list-scheduling engine as
//! [`crate::simulate`] but records every op execution and tensor
//! transfer, enabling Gantt-style inspection of a placement — which
//! devices idle, where communication serializes, which op is on the
//! critical path.

use crate::cost::op_time;
use crate::device::Cluster;
use crate::engine::StepReport;
use crate::placement::Placement;
use mars_graph::{CompGraph, NodeId};
use mars_json::Json;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One op execution on a device.
#[derive(Clone, Debug)]
pub struct OpSpan {
    /// Executed op.
    pub node: NodeId,
    /// Device it ran on.
    pub device: usize,
    /// Start time (s).
    pub start_s: f64,
    /// End time (s).
    pub end_s: f64,
}

/// One tensor transfer between devices.
#[derive(Clone, Debug)]
pub struct TransferSpan {
    /// Edge index in the graph.
    pub edge: usize,
    /// Source device.
    pub from: usize,
    /// Destination device.
    pub to: usize,
    /// Start time (s).
    pub start_s: f64,
    /// End time (s).
    pub end_s: f64,
    /// Bytes moved.
    pub bytes: u64,
}

/// A full step trace.
#[derive(Clone, Debug)]
pub struct StepTrace {
    /// Makespan and utilization summary.
    pub makespan_s: f64,
    /// All op executions, in start order.
    pub ops: Vec<OpSpan>,
    /// All transfers, in start order.
    pub transfers: Vec<TransferSpan>,
}

impl StepTrace {
    /// Idle fraction of a device within the makespan.
    pub fn idle_fraction(&self, device: usize) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        let busy: f64 =
            self.ops.iter().filter(|o| o.device == device).map(|o| o.end_s - o.start_s).sum();
        1.0 - busy / self.makespan_s
    }

    /// Ops on the tail of the critical path: the chain of spans ending
    /// at the makespan, linked by exact finish-to-start adjacency on
    /// the same device or through a transfer.
    pub fn last_finisher(&self) -> Option<&OpSpan> {
        self.ops.iter().max_by(|a, b| a.end_s.total_cmp(&b.end_s))
    }

    /// JSON encoding of the whole trace (encode-only; traces are
    /// experiment artifacts, never read back by the repo).
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("makespan_s", Json::from(self.makespan_s)),
            (
                "ops",
                Json::arr(self.ops.iter().map(|o| {
                    Json::obj([
                        ("node", Json::from(o.node)),
                        ("device", Json::from(o.device)),
                        ("start_s", Json::from(o.start_s)),
                        ("end_s", Json::from(o.end_s)),
                    ])
                })),
            ),
            (
                "transfers",
                Json::arr(self.transfers.iter().map(|t| {
                    Json::obj([
                        ("edge", Json::from(t.edge)),
                        ("from", Json::from(t.from)),
                        ("to", Json::from(t.to)),
                        ("start_s", Json::from(t.start_s)),
                        ("end_s", Json::from(t.end_s)),
                        ("bytes", Json::from(t.bytes)),
                    ])
                })),
            ),
        ])
    }

    /// Render a coarse ASCII Gantt chart (`width` columns).
    pub fn ascii_gantt(&self, num_devices: usize, width: usize) -> String {
        let mut out = String::new();
        let scale = width as f64 / self.makespan_s.max(1e-12);
        for d in 0..num_devices {
            let mut row = vec![' '; width];
            for op in self.ops.iter().filter(|o| o.device == d) {
                let s = (op.start_s * scale) as usize;
                let e = ((op.end_s * scale) as usize).min(width.saturating_sub(1));
                for cell in row.iter_mut().take(e + 1).skip(s.min(width - 1)) {
                    *cell = '#';
                }
            }
            out.push_str(&format!("dev{d} |{}|\n", row.iter().collect::<String>()));
        }
        out
    }
}

/// Like [`crate::simulate`], but records spans. The returned
/// [`StepReport`] is identical to the untraced engine's.
pub fn simulate_traced(
    graph: &CompGraph,
    placement: &Placement,
    cluster: &Cluster,
) -> (StepReport, StepTrace) {
    let n = graph.num_nodes();
    assert_eq!(placement.len(), n, "placement length mismatch");
    let order = graph.topo_order().expect("graph must be a DAG");
    let mut rank = vec![0usize; n];
    for (r, &node) in order.iter().enumerate() {
        rank[node] = r;
    }

    let out_edges = graph.out_edges();
    let mut pending = graph.in_degrees();
    let nd = cluster.num_devices();
    let mut ready: Vec<BinaryHeap<Reverse<(usize, NodeId)>>> =
        (0..nd).map(|_| BinaryHeap::new()).collect();
    let mut device_busy = vec![false; nd];
    let mut device_busy_s = vec![0.0f64; nd];
    let mut link_free_at = vec![0.0f64; nd * nd];

    #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
    enum Ev {
        OpDone(NodeId),
        TransferDone(usize),
    }
    #[derive(Clone, Copy, PartialEq)]
    struct Time(f64);
    impl Eq for Time {}
    impl PartialOrd for Time {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Time {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("finite")
        }
    }

    let mut events: BinaryHeap<Reverse<(Time, usize, Ev)>> = BinaryHeap::new();
    let mut seq = 0usize;
    let mut comm_s = 0.0;
    let mut num_transfers = 0usize;
    let mut makespan = 0.0f64;
    let mut ops_trace: Vec<OpSpan> = Vec::with_capacity(n);
    let mut transfers_trace: Vec<TransferSpan> = Vec::new();

    for i in 0..n {
        if pending[i] == 0 {
            ready[placement.device(i)].push(Reverse((rank[i], i)));
        }
    }

    macro_rules! try_start {
        ($dev:expr, $now:expr) => {{
            let dev = $dev;
            if !device_busy[dev] {
                if let Some(Reverse((_, node))) = ready[dev].pop() {
                    let dur = op_time(graph.node(node), cluster.device(dev));
                    device_busy[dev] = true;
                    device_busy_s[dev] += dur;
                    ops_trace.push(OpSpan { node, device: dev, start_s: $now, end_s: $now + dur });
                    seq += 1;
                    events.push(Reverse((Time($now + dur), seq, Ev::OpDone(node))));
                }
            }
        }};
    }

    for d in 0..nd {
        try_start!(d, 0.0);
    }

    while let Some(Reverse((Time(now), _, ev))) = events.pop() {
        makespan = makespan.max(now);
        match ev {
            Ev::OpDone(node) => {
                let dev = placement.device(node);
                device_busy[dev] = false;
                for &ei in &out_edges[node] {
                    let e = graph.edges()[ei];
                    let dst_dev = placement.device(e.dst);
                    if dst_dev == dev {
                        pending[e.dst] -= 1;
                        if pending[e.dst] == 0 {
                            ready[dst_dev].push(Reverse((rank[e.dst], e.dst)));
                            try_start!(dst_dev, now);
                        }
                    } else {
                        let link = cluster.link(dev, dst_dev);
                        let key = dev * nd + dst_dev;
                        let start = link_free_at[key].max(now);
                        let dur = link.transfer_time(e.bytes);
                        link_free_at[key] = start + dur;
                        comm_s += dur;
                        num_transfers += 1;
                        transfers_trace.push(TransferSpan {
                            edge: ei,
                            from: dev,
                            to: dst_dev,
                            start_s: start,
                            end_s: start + dur,
                            bytes: e.bytes,
                        });
                        seq += 1;
                        events.push(Reverse((Time(start + dur), seq, Ev::TransferDone(ei))));
                    }
                }
                try_start!(dev, now);
            }
            Ev::TransferDone(ei) => {
                let e = graph.edges()[ei];
                let dst_dev = placement.device(e.dst);
                pending[e.dst] -= 1;
                if pending[e.dst] == 0 {
                    ready[dst_dev].push(Reverse((rank[e.dst], e.dst)));
                    try_start!(dst_dev, now);
                }
            }
        }
    }

    ops_trace.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    transfers_trace.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    let report = StepReport { makespan_s: makespan, device_busy_s, comm_s, num_transfers };
    let trace = StepTrace { makespan_s: makespan, ops: ops_trace, transfers: transfers_trace };
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use mars_graph::generators::{Profile, Workload};

    fn setup() -> (CompGraph, Placement, Cluster) {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let c = Cluster::p100_quad();
        let mut p = Placement::round_robin(&g, &[1, 2]);
        p.enforce_compatibility(&g, &c);
        (g, p, c)
    }

    #[test]
    fn traced_report_matches_untraced() {
        let (g, p, c) = setup();
        let plain = simulate(&g, &p, &c);
        let (traced, _) = simulate_traced(&g, &p, &c);
        assert!((plain.makespan_s - traced.makespan_s).abs() < 1e-12);
        assert_eq!(plain.num_transfers, traced.num_transfers);
        assert!((plain.comm_s - traced.comm_s).abs() < 1e-12);
    }

    #[test]
    fn trace_covers_every_op_exactly_once() {
        let (g, p, c) = setup();
        let (_, trace) = simulate_traced(&g, &p, &c);
        assert_eq!(trace.ops.len(), g.num_nodes());
        let mut seen = vec![false; g.num_nodes()];
        for span in &trace.ops {
            assert!(!seen[span.node], "op {} executed twice", span.node);
            seen[span.node] = true;
            assert!(span.end_s >= span.start_s);
            assert!(span.end_s <= trace.makespan_s + 1e-12);
        }
    }

    #[test]
    fn spans_respect_dependencies() {
        let (g, p, c) = setup();
        let (_, trace) = simulate_traced(&g, &p, &c);
        let mut end = vec![0.0f64; g.num_nodes()];
        let mut start = vec![0.0f64; g.num_nodes()];
        for s in &trace.ops {
            end[s.node] = s.end_s;
            start[s.node] = s.start_s;
        }
        for e in g.edges() {
            assert!(
                start[e.dst] >= end[e.src] - 1e-9,
                "op {} started before its input {} finished",
                e.dst,
                e.src
            );
        }
    }

    #[test]
    fn no_device_overlap() {
        let (g, p, c) = setup();
        let (_, trace) = simulate_traced(&g, &p, &c);
        for d in 0..c.num_devices() {
            let mut spans: Vec<&OpSpan> = trace.ops.iter().filter(|s| s.device == d).collect();
            spans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
            for w in spans.windows(2) {
                assert!(
                    w[1].start_s >= w[0].end_s - 1e-9,
                    "device {d} overlap: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn idle_fraction_and_gantt() {
        let (g, p, c) = setup();
        let (_, trace) = simulate_traced(&g, &p, &c);
        for d in 0..c.num_devices() {
            let f = trace.idle_fraction(d);
            assert!((0.0..=1.0).contains(&f), "idle fraction {f}");
        }
        let gantt = trace.ascii_gantt(c.num_devices(), 60);
        assert_eq!(gantt.lines().count(), c.num_devices());
        assert!(gantt.contains('#'));
        assert!(trace.last_finisher().is_some());
    }
}
