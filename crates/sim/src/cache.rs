//! Bounded LRU memo cache for placement evaluations.
//!
//! The PPO policy resamples placements constantly — within a round once
//! entropy drops, and across rounds as the policy converges — and every
//! resample used to pay a full critical-path simulation. Evaluation is
//! a pure function of `(graph, cluster, env seed, placement)` (see
//! [`crate::measure`]), so identical placements can be answered from a
//! map lookup. The cache is keyed by the [`Placement`] itself (already
//! `Hash + Eq`) and guarded by a fingerprint of the graph + cluster so
//! a cache can never silently serve readings for a different workload.
//!
//! Eviction is least-recently-used with a monotonic tick: ticks are
//! unique, so the eviction victim is deterministic and cache behavior
//! is identical across serial and parallel rollout runs (all cache
//! mutations happen in the serial commit phase of
//! [`crate::measure::SimEnv::evaluate_batch`]). The victim scan is
//! `O(len)` per eviction; with the default capacity and
//! millisecond-scale simulations this is noise, and it keeps the
//! structure a single `HashMap` with no intrusive list to maintain.

use crate::measure::EvalComputation;
use crate::placement::Placement;
use std::collections::HashMap;

/// Default number of memoized evaluations ([`EvalCache::with_default_capacity`]).
pub const DEFAULT_CAPACITY: usize = 4096;

struct Entry {
    value: EvalComputation,
    last_used: u64,
}

/// Bounded LRU map from [`Placement`] to its evaluation result.
pub struct EvalCache {
    map: HashMap<Placement, Entry>,
    capacity: usize,
    fingerprint: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl EvalCache {
    /// Empty cache holding at most `capacity` entries, bound to the
    /// environment identified by `fingerprint`
    /// (see [`crate::measure::env_fingerprint`]).
    pub fn new(capacity: usize, fingerprint: u64) -> Self {
        assert!(capacity > 0, "EvalCache capacity must be positive");
        EvalCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            capacity,
            fingerprint,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// [`EvalCache::new`] with [`DEFAULT_CAPACITY`].
    pub fn with_default_capacity(fingerprint: u64) -> Self {
        Self::new(DEFAULT_CAPACITY, fingerprint)
    }

    fn check_fingerprint(&self, fingerprint: u64) {
        assert_eq!(
            self.fingerprint, fingerprint,
            "EvalCache used with a different graph/cluster than it was built for"
        );
    }

    /// Look up `placement`, refreshing its recency and bumping the
    /// hit/miss statistics. `fingerprint` must match the one the cache
    /// was built with.
    pub fn get(&mut self, placement: &Placement, fingerprint: u64) -> Option<EvalComputation> {
        self.check_fingerprint(fingerprint);
        self.tick += 1;
        match self.map.get_mut(placement) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `placement` is cached, *without* touching recency or the
    /// hit/miss statistics (used by the batch pre-pass to decide what
    /// to compute; the authoritative lookup happens at commit time).
    pub fn peek(&self, placement: &Placement) -> bool {
        self.map.contains_key(placement)
    }

    /// Insert an evaluation, evicting the least-recently-used entry
    /// when full. Ticks are unique so the victim is deterministic.
    pub fn insert(&mut self, placement: Placement, value: EvalComputation, fingerprint: u64) {
        self.check_fingerprint(fingerprint);
        self.tick += 1;
        if !self.map.contains_key(&placement) && self.map.len() >= self.capacity {
            if let Some(victim) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(p, _)| p.clone())
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(placement, Entry { value, last_used: self.tick });
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Hit fraction over all lookups (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::EvalComputation;
    use crate::EvalOutcome;

    fn comp(reading: f64) -> EvalComputation {
        EvalComputation {
            outcome: EvalOutcome::Valid { per_step_s: reading },
            machine_s: reading * 20.0,
            makespan_s: reading,
            comm_s: 0.0,
            num_transfers: 0,
            peak_mem_utilization: 0.1,
        }
    }

    fn p(ids: &[usize]) -> Placement {
        Placement(ids.to_vec())
    }

    #[test]
    fn get_after_insert_returns_value_and_counts_hit() {
        let mut c = EvalCache::new(8, 7);
        assert!(c.get(&p(&[1, 2]), 7).is_none());
        c.insert(p(&[1, 2]), comp(0.5), 7);
        let v = c.get(&p(&[1, 2]), 7).expect("cached");
        assert_eq!(v.outcome, EvalOutcome::Valid { per_step_s: 0.5 });
        assert_eq!(c.stats(), (1, 1, 0));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = EvalCache::new(2, 0);
        c.insert(p(&[0]), comp(0.1), 0);
        c.insert(p(&[1]), comp(0.2), 0);
        // Touch [0] so [1] becomes the LRU victim.
        assert!(c.get(&p(&[0]), 0).is_some());
        c.insert(p(&[2]), comp(0.3), 0);
        assert_eq!(c.len(), 2);
        assert!(c.peek(&p(&[0])), "recently used entry survived");
        assert!(!c.peek(&p(&[1])), "LRU entry evicted");
        assert!(c.peek(&p(&[2])));
        assert_eq!(c.stats().2, 1, "one eviction");
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut c = EvalCache::new(2, 0);
        c.insert(p(&[0]), comp(0.1), 0);
        c.insert(p(&[1]), comp(0.2), 0);
        c.insert(p(&[0]), comp(0.9), 0); // overwrite, cache stays full
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().2, 0);
        let v = c.get(&p(&[0]), 0).expect("overwritten entry");
        assert_eq!(v.outcome, EvalOutcome::Valid { per_step_s: 0.9 });
    }

    #[test]
    fn peek_does_not_disturb_recency_or_stats() {
        let mut c = EvalCache::new(2, 0);
        c.insert(p(&[0]), comp(0.1), 0);
        c.insert(p(&[1]), comp(0.2), 0);
        assert!(c.peek(&p(&[0])));
        // peek([0]) must NOT have refreshed it: [0] is still the LRU.
        c.insert(p(&[2]), comp(0.3), 0);
        assert!(!c.peek(&p(&[0])));
        assert_eq!(c.stats(), (0, 0, 1));
    }

    #[test]
    #[should_panic(expected = "different graph/cluster")]
    fn fingerprint_mismatch_panics() {
        let mut c = EvalCache::new(2, 1);
        c.insert(p(&[0]), comp(0.1), 2);
    }
}
