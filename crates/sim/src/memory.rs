//! Per-device memory accounting and out-of-memory detection.
//!
//! Training keeps all forward activations alive for the backward pass,
//! so a device's footprint is the sum of parameter bytes plus live
//! activation bytes of every op placed on it. Exceeding the capacity is
//! an *invalid placement* — §3.4: "The invalid placements usually
//! exceed the memory constrain of devices (out-of-memory) and cannot be
//! run."

use crate::device::{Cluster, DeviceId};
use crate::placement::Placement;
use mars_graph::CompGraph;

/// Out-of-memory error for one device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OomError {
    /// The overflowing device.
    pub device: DeviceId,
    /// Bytes required by the placement.
    pub required_bytes: u64,
    /// The device's capacity.
    pub capacity_bytes: u64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device {} out of memory: needs {:.2} GB, has {:.2} GB",
            self.device,
            self.required_bytes as f64 / (1u64 << 30) as f64,
            self.capacity_bytes as f64 / (1u64 << 30) as f64
        )
    }
}

/// Memory usage per device for a placement.
#[derive(Clone, Debug)]
pub struct MemoryReport {
    /// Bytes used per device (indexed by [`DeviceId`]).
    pub used_bytes: Vec<u64>,
}

impl MemoryReport {
    /// Peak usage fraction across devices.
    pub fn peak_utilization(&self, cluster: &Cluster) -> f64 {
        self.used_bytes
            .iter()
            .enumerate()
            .map(|(d, &u)| u as f64 / cluster.device(d).memory_bytes as f64)
            .fold(0.0, f64::max)
    }
}

/// Compute per-device usage and check capacities.
pub fn check_memory(
    graph: &CompGraph,
    placement: &Placement,
    cluster: &Cluster,
) -> Result<MemoryReport, OomError> {
    assert_eq!(placement.len(), graph.num_nodes(), "placement length mismatch");
    let mut used = vec![0u64; cluster.num_devices()];
    for (i, node) in graph.nodes().iter().enumerate() {
        used[placement.device(i)] += node.param_bytes + node.activation_bytes;
    }
    for (d, &u) in used.iter().enumerate() {
        let cap = cluster.device(d).memory_bytes;
        if u > cap {
            return Err(OomError { device: d, required_bytes: u, capacity_bytes: cap });
        }
    }
    Ok(MemoryReport { used_bytes: used })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::generators::{Profile, Workload};

    #[test]
    fn inception_fits_one_gpu() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let c = Cluster::p100_quad();
        let mut p = Placement::all_on(&g, 1);
        p.enforce_compatibility(&g, &c);
        assert!(check_memory(&g, &p, &c).is_ok());
    }

    #[test]
    fn gnmt_ooms_one_gpu_but_fits_two() {
        let g = Workload::Gnmt4.build(Profile::Reduced);
        let c = Cluster::p100_quad();
        let mut one = Placement::all_on(&g, 1);
        one.enforce_compatibility(&g, &c);
        let err = check_memory(&g, &one, &c).expect_err("must OOM");
        assert_eq!(err.device, 1);

        let mut two = Placement::round_robin(&g, &[1, 2]);
        two.enforce_compatibility(&g, &c);
        assert!(check_memory(&g, &two, &c).is_ok(), "GNMT must fit two GPUs");
    }

    #[test]
    fn bert_needs_at_least_three_gpus() {
        let g = Workload::BertBase.build(Profile::Reduced);
        let c = Cluster::p100_quad();
        let mut two = Placement::round_robin(&g, &[1, 2]);
        two.enforce_compatibility(&g, &c);
        assert!(check_memory(&g, &two, &c).is_err(), "BERT (~24 GB) must not fit 2×12 GB");

        let mut three = Placement::round_robin(&g, &[1, 2, 3]);
        three.enforce_compatibility(&g, &c);
        assert!(check_memory(&g, &three, &c).is_ok(), "BERT must fit three GPUs round-robin");
    }

    #[test]
    fn everything_fits_cpu() {
        for w in [Workload::InceptionV3, Workload::Gnmt4, Workload::BertBase] {
            let g = w.build(Profile::Reduced);
            let c = Cluster::p100_quad();
            let p = Placement::all_on(&g, c.cpu_id());
            assert!(check_memory(&g, &p, &c).is_ok(), "{}", w.name());
        }
    }

    #[test]
    fn report_totals_match_graph() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let c = Cluster::p100_quad();
        let p = Placement::all_on(&g, 0);
        let rep = check_memory(&g, &p, &c).expect("fits cpu");
        assert_eq!(rep.used_bytes[0], g.total_memory_bytes());
        assert!(rep.peak_utilization(&c) > 0.0);
    }
}
