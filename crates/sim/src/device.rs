//! Device and interconnect models.
//!
//! The default [`Cluster`] mirrors the paper's testbed: one CPU domain
//! (2× Intel E5-2650 v4, 125 GB RAM) and four NVIDIA P100 GPUs (12 GB
//! each) connected over PCIe. Throughput constants are *effective
//! training* rates calibrated so that the benchmark workloads land at
//! the paper's absolute per-step times (see DESIGN.md §2).

use mars_json::Json;

/// Index of a device within a [`Cluster`].
pub type DeviceId = usize;

/// Device class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// Host CPU domain.
    Cpu,
    /// A discrete GPU.
    Gpu,
}

/// One computational device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Display name (`"/gpu:0"`).
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Effective peak throughput in GFLOP/s for large ops.
    pub peak_gflops: f64,
    /// FLOP count at which an op reaches 50% of peak utilization
    /// (models kernel-launch inefficiency for small ops).
    pub util_knee_flops: f64,
    /// Fixed per-op overhead in seconds (kernel launch / op dispatch).
    pub op_overhead_s: f64,
    /// Memory capacity in bytes.
    pub memory_bytes: u64,
}

impl DeviceSpec {
    /// The paper's P100 (12 GB), with effective-training throughput.
    pub fn p100(index: usize) -> Self {
        DeviceSpec {
            name: format!("/gpu:{index}"),
            kind: DeviceKind::Gpu,
            peak_gflops: 600.0,
            util_knee_flops: 2e8,
            op_overhead_s: 20e-6,
            memory_bytes: 12 << 30,
        }
    }

    /// The paper's dual-Xeon CPU domain (125 GB).
    pub fn xeon() -> Self {
        DeviceSpec {
            name: "/cpu:0".into(),
            kind: DeviceKind::Cpu,
            peak_gflops: 50.0,
            util_knee_flops: 5e7,
            op_overhead_s: 60e-6,
            memory_bytes: 125 << 30,
        }
    }
}

/// A directed interconnect between two devices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Per-transfer latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// PCIe 3.0 x16 with realistic contention (~6 GB/s sustained).
    pub fn pcie() -> Self {
        LinkSpec { bandwidth_bps: 6e9, latency_s: 20e-6 }
    }

    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// A set of devices plus the pairwise interconnect.
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster {
    devices: Vec<DeviceSpec>,
    /// Uniform link used between every distinct device pair (fallback
    /// when no per-pair override exists).
    link: LinkSpec,
    /// Optional per-pair overrides, keyed `from * num_devices + to`.
    /// Absent in older serialized clusters; decoding defaults to empty.
    link_overrides: Vec<Option<LinkSpec>>,
    /// Per-device failure mask. Failed devices keep their id (the
    /// placer's action space stays stable) but accept no work; see
    /// [`Placement::remap_failed`](crate::Placement::remap_failed).
    failed: Vec<bool>,
}

impl Cluster {
    /// Build from explicit parts.
    pub fn new(devices: Vec<DeviceSpec>, link: LinkSpec) -> Self {
        assert!(!devices.is_empty(), "cluster needs at least one device");
        let failed = vec![false; devices.len()];
        Cluster { devices, link, link_overrides: Vec::new(), failed }
    }

    /// Override the link between a specific ordered device pair (both
    /// directions must be set separately; use twice for symmetry).
    pub fn set_link(&mut self, from: DeviceId, to: DeviceId, link: LinkSpec) {
        let nd = self.devices.len();
        assert!(from < nd && to < nd && from != to, "invalid link pair {from}->{to}");
        if self.link_overrides.is_empty() {
            self.link_overrides = vec![None; nd * nd];
        }
        self.link_overrides[from * nd + to] = Some(link);
    }

    /// The paper's testbed: 1 CPU domain + 4 P100 GPUs over PCIe.
    /// Device 0 is the CPU.
    pub fn p100_quad() -> Self {
        let mut devices = vec![DeviceSpec::xeon()];
        for i in 0..4 {
            devices.push(DeviceSpec::p100(i));
        }
        Cluster::new(devices, LinkSpec::pcie())
    }

    /// A heterogeneous testbed (the paper's intro motivates placement
    /// across "a heterogeneous mix of computational devices"): CPU +
    /// 2 fast GPUs joined by an NVLink-class link + 2 older, slower
    /// GPUs (half throughput, same 12 GB) on PCIe.
    pub fn heterogeneous() -> Self {
        let mut devices = vec![DeviceSpec::xeon()];
        for i in 0..2 {
            devices.push(DeviceSpec::p100(i));
        }
        for i in 2..4 {
            let mut d = DeviceSpec::p100(i);
            d.name = format!("/gpu:{i} (old)");
            d.peak_gflops /= 2.0;
            d.util_knee_flops *= 2.0;
            devices.push(d);
        }
        let mut c = Cluster::new(devices, LinkSpec::pcie());
        // NVLink between the two fast GPUs (devices 1 and 2).
        let nvlink = LinkSpec { bandwidth_bps: 40e9, latency_s: 5e-6 };
        c.set_link(1, 2, nvlink);
        c.set_link(2, 1, nvlink);
        c
    }

    /// Number of devices (the placer's action-space size).
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device accessor.
    pub fn device(&self, id: DeviceId) -> &DeviceSpec {
        &self.devices[id]
    }

    /// All devices.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Ids of GPU devices.
    pub fn gpu_ids(&self) -> Vec<DeviceId> {
        (0..self.devices.len()).filter(|&i| self.devices[i].kind == DeviceKind::Gpu).collect()
    }

    /// Id of the (first) CPU device.
    pub fn cpu_id(&self) -> DeviceId {
        (0..self.devices.len())
            .find(|&i| self.devices[i].kind == DeviceKind::Cpu)
            .expect("cluster has a CPU")
    }

    /// Permanently mark a device as failed. Its id stays valid (the
    /// action space does not shrink) but placements must be remapped
    /// off it before simulation. Failing the CPU is rejected — ops
    /// without a GPU kernel need somewhere to live.
    pub fn fail_device(&mut self, id: DeviceId) {
        assert!(id < self.devices.len(), "fail_device: no device {id}");
        assert!(self.devices[id].kind != DeviceKind::Cpu, "fail_device: the CPU cannot fail");
        self.failed[id] = true;
    }

    /// True when the device has not failed.
    pub fn is_alive(&self, id: DeviceId) -> bool {
        !self.failed[id]
    }

    /// True when any device has failed.
    pub fn has_failures(&self) -> bool {
        self.failed.iter().any(|&f| f)
    }

    /// Ids of failed devices.
    pub fn failed_ids(&self) -> Vec<DeviceId> {
        (0..self.devices.len()).filter(|&i| self.failed[i]).collect()
    }

    /// Ids of GPUs still alive.
    pub fn live_gpu_ids(&self) -> Vec<DeviceId> {
        self.gpu_ids().into_iter().filter(|&i| !self.failed[i]).collect()
    }

    /// Number of devices still alive.
    pub fn num_live_devices(&self) -> usize {
        self.failed.iter().filter(|&&f| !f).count()
    }

    /// The interconnect between two distinct devices.
    pub fn link(&self, from: DeviceId, to: DeviceId) -> LinkSpec {
        if !self.link_overrides.is_empty() {
            if let Some(l) = self.link_overrides[from * self.devices.len() + to] {
                return l;
            }
        }
        self.link
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Serialize to a [`Json`] value tree.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("devices", Json::arr(self.devices.iter().map(DeviceSpec::to_json_value))),
            ("link", self.link.to_json_value()),
            (
                "link_overrides",
                Json::arr(self.link_overrides.iter().map(|o| match o {
                    Some(l) => l.to_json_value(),
                    None => Json::Null,
                })),
            ),
            ("failed", Json::arr(self.failed.iter().map(|&f| Json::from(f)))),
        ])
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = Json::parse(s).map_err(|e| e.to_string())?;
        Self::from_json_value(&v)
    }

    /// Decode a [`Cluster`] object. A missing `link_overrides` field is
    /// treated as empty (older snapshots predate per-pair links).
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let devices = v["devices"]
            .as_array()
            .ok_or("cluster: missing 'devices'")?
            .iter()
            .map(DeviceSpec::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        if devices.is_empty() {
            return Err("cluster: needs at least one device".into());
        }
        let link = LinkSpec::from_json_value(&v["link"])?;
        let link_overrides =
            match &v["link_overrides"] {
                Json::Null => Vec::new(),
                overrides => overrides
                    .as_array()
                    .ok_or("cluster: 'link_overrides' must be an array")?
                    .iter()
                    .map(|o| {
                        if o.is_null() {
                            Ok(None)
                        } else {
                            LinkSpec::from_json_value(o).map(Some)
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            };
        if !link_overrides.is_empty() && link_overrides.len() != devices.len() * devices.len() {
            return Err("cluster: 'link_overrides' has wrong length".into());
        }
        // Older snapshots predate the failure mask; default all-alive.
        let failed = match &v["failed"] {
            Json::Null => vec![false; devices.len()],
            mask => mask
                .as_array()
                .ok_or("cluster: 'failed' must be an array")?
                .iter()
                .map(|b| b.as_bool().ok_or_else(|| "cluster: bad 'failed' entry".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
        };
        if failed.len() != devices.len() {
            return Err("cluster: 'failed' has wrong length".into());
        }
        Ok(Cluster { devices, link, link_overrides, failed })
    }
}

impl DeviceKind {
    fn to_json_value(self) -> Json {
        Json::Str(match self {
            DeviceKind::Cpu => "Cpu".into(),
            DeviceKind::Gpu => "Gpu".into(),
        })
    }

    fn from_json_value(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Cpu") => Ok(DeviceKind::Cpu),
            Some("Gpu") => Ok(DeviceKind::Gpu),
            other => Err(format!("device kind: expected 'Cpu'/'Gpu', got {other:?}")),
        }
    }
}

impl DeviceSpec {
    /// JSON encoding as an object of the spec's fields.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("name", Json::from(&self.name)),
            ("kind", self.kind.to_json_value()),
            ("peak_gflops", Json::from(self.peak_gflops)),
            ("util_knee_flops", Json::from(self.util_knee_flops)),
            ("op_overhead_s", Json::from(self.op_overhead_s)),
            ("memory_bytes", Json::from(self.memory_bytes)),
        ])
    }

    /// Decode a [`DeviceSpec`] object.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        Ok(DeviceSpec {
            name: v["name"].as_str().ok_or("device: missing 'name'")?.to_string(),
            kind: DeviceKind::from_json_value(&v["kind"])?,
            peak_gflops: v["peak_gflops"].as_f64().ok_or("device: missing 'peak_gflops'")?,
            util_knee_flops: v["util_knee_flops"]
                .as_f64()
                .ok_or("device: missing 'util_knee_flops'")?,
            op_overhead_s: v["op_overhead_s"].as_f64().ok_or("device: missing 'op_overhead_s'")?,
            memory_bytes: v["memory_bytes"].as_u64().ok_or("device: missing 'memory_bytes'")?,
        })
    }
}

impl LinkSpec {
    /// JSON encoding as a `{bandwidth_bps, latency_s}` object.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("bandwidth_bps", Json::from(self.bandwidth_bps)),
            ("latency_s", Json::from(self.latency_s)),
        ])
    }

    /// Decode a [`LinkSpec`] object.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        Ok(LinkSpec {
            bandwidth_bps: v["bandwidth_bps"].as_f64().ok_or("link: missing 'bandwidth_bps'")?,
            latency_s: v["latency_s"].as_f64().ok_or("link: missing 'latency_s'")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_layout() {
        let c = Cluster::p100_quad();
        assert_eq!(c.num_devices(), 5);
        assert_eq!(c.cpu_id(), 0);
        assert_eq!(c.gpu_ids(), vec![1, 2, 3, 4]);
        assert_eq!(c.device(1).memory_bytes, 12 << 30);
        assert!(c.device(0).memory_bytes > c.device(1).memory_bytes);
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let l = LinkSpec::pcie();
        assert!(l.transfer_time(1 << 20) < l.transfer_time(1 << 24));
        assert!(l.transfer_time(0) == l.latency_s);
    }

    #[test]
    fn gpu_much_faster_than_cpu() {
        let c = Cluster::p100_quad();
        assert!(c.device(1).peak_gflops > 5.0 * c.device(0).peak_gflops);
    }

    #[test]
    fn heterogeneous_cluster_structure() {
        let c = Cluster::heterogeneous();
        assert_eq!(c.num_devices(), 5);
        // Fast pair vs old pair.
        assert!(c.device(1).peak_gflops > 1.9 * c.device(3).peak_gflops);
        // NVLink only between the fast pair.
        let nv = c.link(1, 2);
        let pcie = c.link(1, 3);
        assert!(nv.bandwidth_bps > 5.0 * pcie.bandwidth_bps);
        assert!(nv.latency_s < pcie.latency_s);
        assert_eq!(c.link(3, 4).bandwidth_bps, pcie.bandwidth_bps);
    }

    #[test]
    fn failure_mask_tracks_live_devices() {
        let mut c = Cluster::p100_quad();
        assert!(!c.has_failures());
        assert_eq!(c.num_live_devices(), 5);
        c.fail_device(2);
        assert!(c.has_failures());
        assert!(!c.is_alive(2));
        assert!(c.is_alive(1));
        assert_eq!(c.failed_ids(), vec![2]);
        assert_eq!(c.live_gpu_ids(), vec![1, 3, 4]);
        assert_eq!(c.num_live_devices(), 4);
        // Ids remain stable: the action space does not shrink.
        assert_eq!(c.num_devices(), 5);
        assert_eq!(c.gpu_ids(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "CPU cannot fail")]
    fn cpu_failure_is_rejected() {
        Cluster::p100_quad().fail_device(0);
    }

    #[test]
    fn failure_mask_roundtrips_through_json() {
        let mut c = Cluster::p100_quad();
        c.fail_device(3);
        let back = Cluster::from_json(&c.to_json()).expect("roundtrip");
        assert_eq!(back.failed_ids(), vec![3]);
        // Snapshots without the mask decode as all-alive.
        let legacy = r#"{"devices":[{"name":"/cpu:0","kind":"Cpu","peak_gflops":50.0,
            "util_knee_flops":5e7,"op_overhead_s":6e-5,"memory_bytes":1000}],
            "link":{"bandwidth_bps":6e9,"latency_s":2e-5}}"#;
        let old = Cluster::from_json(legacy).expect("legacy decode");
        assert!(!old.has_failures());
    }

    #[test]
    fn set_link_is_directional() {
        let mut c = Cluster::p100_quad();
        let fast = LinkSpec { bandwidth_bps: 50e9, latency_s: 1e-6 };
        c.set_link(1, 2, fast);
        assert_eq!(c.link(1, 2).bandwidth_bps, 50e9);
        // Reverse direction unchanged.
        assert_eq!(c.link(2, 1).bandwidth_bps, LinkSpec::pcie().bandwidth_bps);
    }
}
