//! Placement: the action of the RL agent.

use crate::device::{Cluster, DeviceId};
use mars_graph::CompGraph;
use mars_json::Json;
use mars_rng::Rng;

/// An assignment of every op to a device.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Placement(pub Vec<DeviceId>);

impl Placement {
    /// All ops on one device.
    pub fn all_on(graph: &CompGraph, device: DeviceId) -> Self {
        Placement(vec![device; graph.num_nodes()])
    }

    /// Round-robin over the given devices in node order.
    pub fn round_robin(graph: &CompGraph, devices: &[DeviceId]) -> Self {
        assert!(!devices.is_empty());
        Placement((0..graph.num_nodes()).map(|i| devices[i % devices.len()]).collect())
    }

    /// Contiguous blocks of roughly equal node count over the given
    /// devices (a crude model-parallel split).
    pub fn blocked(graph: &CompGraph, devices: &[DeviceId]) -> Self {
        assert!(!devices.is_empty());
        let n = graph.num_nodes();
        let per = n.div_ceil(devices.len());
        Placement((0..n).map(|i| devices[(i / per).min(devices.len() - 1)]).collect())
    }

    /// Uniformly random placement over all cluster devices.
    pub fn random(graph: &CompGraph, cluster: &Cluster, rng: &mut impl Rng) -> Self {
        Placement((0..graph.num_nodes()).map(|_| rng.gen_range(0..cluster.num_devices())).collect())
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Device of op `i`.
    pub fn device(&self, i: usize) -> DeviceId {
        self.0[i]
    }

    /// Number of edges whose endpoints land on different devices.
    pub fn cut_edges(&self, graph: &CompGraph) -> usize {
        graph.edges().iter().filter(|e| self.0[e.src] != self.0[e.dst]).count()
    }

    /// Bytes crossing device boundaries.
    pub fn cut_bytes(&self, graph: &CompGraph) -> u64 {
        graph.edges().iter().filter(|e| self.0[e.src] != self.0[e.dst]).map(|e| e.bytes).sum()
    }

    /// Distinct devices actually used.
    pub fn devices_used(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self.0.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Rewrite CPU-incompatible assignments: ops without a GPU kernel
    /// are forced onto the CPU (TensorFlow's "soft placement"). Returns
    /// the number of ops moved.
    pub fn enforce_compatibility(&mut self, graph: &CompGraph, cluster: &Cluster) -> usize {
        let cpu = cluster.cpu_id();
        let mut moved = 0;
        for (i, node) in graph.nodes().iter().enumerate() {
            if !node.gpu_compatible && self.0[i] != cpu {
                self.0[i] = cpu;
                moved += 1;
            }
        }
        moved
    }

    /// Rewrite assignments on failed devices: GPU-compatible ops move
    /// round-robin over the surviving GPUs; everything else (and
    /// everything when no GPU survives) falls back to the CPU. A pure
    /// function of `(placement, graph, failure mask)` — remapping the
    /// same placement on the same degraded cluster always produces the
    /// identical result. Returns the number of ops moved.
    pub fn remap_failed(&mut self, graph: &CompGraph, cluster: &Cluster) -> usize {
        if !cluster.has_failures() {
            return 0;
        }
        let live_gpus = cluster.live_gpu_ids();
        let cpu = cluster.cpu_id();
        let mut moved = 0;
        for (i, node) in graph.nodes().iter().enumerate() {
            if cluster.is_alive(self.0[i]) {
                continue;
            }
            self.0[i] = if node.gpu_compatible && !live_gpus.is_empty() {
                live_gpus[moved % live_gpus.len()]
            } else {
                cpu
            };
            moved += 1;
        }
        moved
    }

    /// Serialize to JSON (a bare array of device ids, matching the old
    /// newtype encoding).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Serialize to a [`Json`] array.
    pub fn to_json_value(&self) -> Json {
        Json::arr(self.0.iter().map(|&d| Json::from(d)))
    }

    /// Deserialize from the bare-array JSON encoding.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = Json::parse(s).map_err(|e| e.to_string())?;
        Self::from_json_value(&v)
    }

    /// Decode from a [`Json`] array.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let devices = v
            .as_array()
            .ok_or("placement: expected array")?
            .iter()
            .map(|d| d.as_usize().ok_or_else(|| format!("placement: bad device id {d}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Placement(devices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::generators::{Profile, Workload};
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;

    fn graph() -> CompGraph {
        Workload::InceptionV3.build(Profile::Reduced)
    }

    #[test]
    fn all_on_single_device() {
        let g = graph();
        let p = Placement::all_on(&g, 1);
        assert_eq!(p.len(), g.num_nodes());
        assert_eq!(p.cut_edges(&g), 0);
        assert_eq!(p.devices_used(), vec![1]);
    }

    #[test]
    fn round_robin_cuts_most_edges() {
        let g = graph();
        let p = Placement::round_robin(&g, &[1, 2, 3, 4]);
        assert!(p.cut_edges(&g) > g.num_edges() / 2);
        assert_eq!(p.devices_used(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn blocked_cuts_few_edges() {
        let g = graph();
        let p = Placement::blocked(&g, &[1, 2]);
        assert!(p.cut_edges(&g) < g.num_edges() / 4, "{}", p.cut_edges(&g));
    }

    #[test]
    fn random_is_seed_deterministic() {
        let g = graph();
        let c = Cluster::p100_quad();
        let a = Placement::random(&g, &c, &mut StdRng::seed_from_u64(1));
        let b = Placement::random(&g, &c, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn compatibility_moves_cpu_only_ops() {
        let g = graph();
        let c = Cluster::p100_quad();
        let mut p = Placement::all_on(&g, 1);
        let moved = p.enforce_compatibility(&g, &c);
        assert!(moved >= 1, "inception has a CPU-only pipeline op");
        let idx = g.nodes().iter().position(|n| !n.gpu_compatible).expect("cpu-only");
        assert_eq!(p.device(idx), c.cpu_id());
    }

    #[test]
    fn remap_moves_only_dead_assignments() {
        let g = graph();
        let mut c = Cluster::p100_quad();
        c.fail_device(2);
        let mut p = Placement::round_robin(&g, &[1, 2, 3, 4]);
        let before = p.clone();
        let moved = p.remap_failed(&g, &c);
        assert!(moved > 0);
        for i in 0..p.len() {
            assert!(c.is_alive(p.device(i)), "op {i} still on a dead device");
            if before.device(i) != 2 {
                assert_eq!(p.device(i), before.device(i), "op {i} moved needlessly");
            }
        }
        // Healthy cluster: remap is a no-op.
        let mut q = Placement::round_robin(&g, &[1, 2]);
        assert_eq!(q.remap_failed(&g, &Cluster::p100_quad()), 0);
    }

    #[test]
    fn remap_falls_back_to_cpu_when_no_gpu_survives() {
        let g = graph();
        let mut c = Cluster::p100_quad();
        for d in c.gpu_ids() {
            c.fail_device(d);
        }
        let mut p = Placement::round_robin(&g, &[1, 2, 3, 4]);
        p.remap_failed(&g, &c);
        assert_eq!(p.devices_used(), vec![c.cpu_id()]);
    }

    #[test]
    fn cut_bytes_zero_on_colocated() {
        let g = graph();
        assert_eq!(Placement::all_on(&g, 2).cut_bytes(&g), 0);
    }
}
