#![warn(missing_docs)]
//! Discrete-event multi-device execution simulator.
//!
//! This crate is the reproduction's substitute for the paper's physical
//! RL environment (a 4×P100 + 2×Xeon machine running TensorFlow; see
//! DESIGN.md §2). Given a [`CompGraph`](mars_graph::CompGraph) and a
//! [`Placement`], it computes the per-step training time by
//! list-scheduling ops on devices and tensor transfers on PCIe links:
//!
//! * each device executes one op at a time, picking ready ops in
//!   topological priority order;
//! * an op is ready when every input tensor has arrived on its device;
//! * cross-device edges enqueue transfers on the directed link between
//!   the two devices (links serialize; latency + bytes/bandwidth);
//! * per-device memory is parameters + live activations; exceeding
//!   capacity is an out-of-memory error (an *invalid placement* in the
//!   paper's terms).
//!
//! [`measure::SimEnv`] wraps the engine in the paper's measurement
//! protocol: run 15 steps, discard the first 5, average the last 10
//! (with seeded measurement noise), abort evaluations beyond a cutoff
//! ("bad placements"), and penalize invalid placements with a 100 s
//! reading.

pub mod cache;
pub mod cost;
pub mod device;
pub mod engine;
pub mod fault;
pub mod measure;
pub mod memory;
pub mod placement;
pub mod trace;

pub use cache::EvalCache;
pub use device::{Cluster, DeviceId, DeviceKind, DeviceSpec, LinkSpec};
pub use engine::{simulate, simulate_with, SimOptions, StepReport};
pub use fault::{Fault, FaultKind, FaultPlan, RetryPolicy};
pub use measure::{
    env_fingerprint, Environment, EvalBackend, EvalComputation, EvalOutcome, SimEnv,
};
pub use memory::{check_memory, MemoryReport, OomError};
pub use placement::Placement;
pub use trace::{simulate_traced, StepTrace};
