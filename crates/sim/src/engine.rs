//! The event-driven makespan engine.

use crate::cost::op_time;
use crate::device::Cluster;
use crate::placement::Placement;
use mars_graph::{CompGraph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of simulating one training step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// End-to-end step time in seconds.
    pub makespan_s: f64,
    /// Busy (computing) seconds per device.
    pub device_busy_s: Vec<f64>,
    /// Total seconds of link occupancy.
    pub comm_s: f64,
    /// Number of cross-device tensor transfers.
    pub num_transfers: usize,
}

impl StepReport {
    /// Fraction of the makespan the busiest device spent computing.
    pub fn peak_device_utilization(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.device_busy_s.iter().copied().fold(0.0, f64::max) / self.makespan_s
    }
}

/// Totally-ordered finite f64 for the event queue.
#[derive(Clone, Copy, PartialEq)]
struct Time(f64);
impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("simulation times are finite")
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    OpDone(NodeId),
    /// Transfer of edge index `usize` has arrived at the destination device.
    TransferDone(usize),
}

/// Tunable aspects of the scheduling model.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimOptions {
    /// Send one copy of an op's output tensor per destination *device*
    /// instead of one per consuming edge (TensorFlow's send/recv pairs
    /// are per-device). Off by default to match the calibrated
    /// experiments; see DESIGN.md §5.
    pub dedup_transfers: bool,
}

/// Simulate one training step of `graph` under `placement`.
///
/// The placement must already be compatibility-enforced
/// ([`Placement::enforce_compatibility`]); memory is *not* checked here
/// (see [`crate::memory::check_memory`]).
///
/// Scheduling model: one op at a time per device, ready ops picked by
/// topological rank; cross-device edges occupy the directed link
/// between the endpoint devices (latency + bytes/bandwidth, serialized
/// per link direction).
pub fn simulate(graph: &CompGraph, placement: &Placement, cluster: &Cluster) -> StepReport {
    simulate_with(graph, placement, cluster, SimOptions::default())
}

/// [`simulate`] with explicit [`SimOptions`].
pub fn simulate_with(
    graph: &CompGraph,
    placement: &Placement,
    cluster: &Cluster,
    options: SimOptions,
) -> StepReport {
    let _span = mars_telemetry::span("sim.engine.simulate");
    let n = graph.num_nodes();
    assert_eq!(placement.len(), n, "placement length mismatch");
    debug_assert!(
        placement.0.iter().all(|&d| cluster.is_alive(d)),
        "placement references a failed device; remap it first (Placement::remap_failed)"
    );
    let order = graph.topo_order().expect("graph must be a DAG");
    let mut rank = vec![0usize; n];
    for (r, &node) in order.iter().enumerate() {
        rank[node] = r;
    }

    let out_edges = graph.out_edges();
    let mut pending = graph.in_degrees();

    let nd = cluster.num_devices();
    let mut ready: Vec<BinaryHeap<Reverse<(usize, NodeId)>>> =
        (0..nd).map(|_| BinaryHeap::new()).collect();
    let mut device_busy = vec![false; nd];
    let mut device_busy_s = vec![0.0f64; nd];
    // Directed link occupancy, keyed by src_dev * nd + dst_dev.
    let mut link_free_at = vec![0.0f64; nd * nd];

    let mut events: BinaryHeap<Reverse<(Time, usize, Event)>> = BinaryHeap::new();
    let mut seq = 0usize;
    let mut comm_s = 0.0f64;
    let mut num_transfers = 0usize;
    let mut makespan = 0.0f64;
    let mut completed = 0usize;
    // Per representative-edge member lists for grouped transfers.
    let mut group_members: Vec<Vec<usize>> = vec![Vec::new(); graph.num_edges()];

    // Seed sources.
    for i in 0..n {
        if pending[i] == 0 {
            ready[placement.device(i)].push(Reverse((rank[i], i)));
        }
    }

    // Start any idle device that has ready work.
    macro_rules! try_start {
        ($dev:expr, $now:expr) => {{
            let dev = $dev;
            if !device_busy[dev] {
                if let Some(Reverse((_, node))) = ready[dev].pop() {
                    let dur = op_time(graph.node(node), cluster.device(dev));
                    device_busy[dev] = true;
                    device_busy_s[dev] += dur;
                    seq += 1;
                    events.push(Reverse((Time($now + dur), seq, Event::OpDone(node))));
                }
            }
        }};
    }

    for d in 0..nd {
        try_start!(d, 0.0);
    }

    while let Some(Reverse((Time(now), _, ev))) = events.pop() {
        makespan = makespan.max(now);
        match ev {
            Event::OpDone(node) => {
                completed += 1;
                let dev = placement.device(node);
                device_busy[dev] = false;
                // Group cross-device edges by destination device when
                // transfer deduplication is on (one tensor copy per
                // device); otherwise every edge is its own group.
                let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
                for &ei in &out_edges[node] {
                    let e = graph.edges()[ei];
                    let dst_dev = placement.device(e.dst);
                    if dst_dev == dev {
                        pending[e.dst] -= 1;
                        if pending[e.dst] == 0 {
                            ready[dst_dev].push(Reverse((rank[e.dst], e.dst)));
                            try_start!(dst_dev, now);
                        }
                    } else if options.dedup_transfers {
                        match groups.iter_mut().find(|(d, _)| *d == dst_dev) {
                            Some((_, members)) => members.push(ei),
                            None => groups.push((dst_dev, vec![ei])),
                        }
                    } else {
                        groups.push((dst_dev, vec![ei]));
                    }
                }
                for (dst_dev, members) in groups {
                    let rep = members[0];
                    let bytes = graph.edges()[rep].bytes;
                    let link = cluster.link(dev, dst_dev);
                    let key = dev * nd + dst_dev;
                    let start = link_free_at[key].max(now);
                    let dur = link.transfer_time(bytes);
                    link_free_at[key] = start + dur;
                    comm_s += dur;
                    num_transfers += 1;
                    seq += 1;
                    group_members[rep] = members;
                    events.push(Reverse((Time(start + dur), seq, Event::TransferDone(rep))));
                }
                try_start!(dev, now);
            }
            Event::TransferDone(rep) => {
                let members = std::mem::take(&mut group_members[rep]);
                for ei in members {
                    let e = graph.edges()[ei];
                    let dst_dev = placement.device(e.dst);
                    pending[e.dst] -= 1;
                    if pending[e.dst] == 0 {
                        ready[dst_dev].push(Reverse((rank[e.dst], e.dst)));
                        try_start!(dst_dev, now);
                    }
                }
            }
        }
    }

    assert_eq!(completed, n, "deadlock: only {completed}/{n} ops completed");
    StepReport { makespan_s: makespan, device_busy_s, comm_s, num_transfers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::{shape, GraphBuilder, OpKind};

    fn chain(name: &str, k: usize, flops: f64) -> CompGraph {
        let mut b = GraphBuilder::new(name);
        let mut prev = None;
        for i in 0..k {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(b.compute(OpKind::MatMul, format!("op{i}"), shape![64, 64], flops, &deps));
        }
        b.build()
    }

    #[test]
    fn single_device_is_serial() {
        let g = chain("serial", 10, 1e9);
        let c = Cluster::p100_quad();
        let p = Placement::all_on(&g, 1);
        let rep = simulate(&g, &p, &c);
        let expected: f64 = g.nodes().iter().map(|nd| crate::cost::op_time(nd, c.device(1))).sum();
        assert!((rep.makespan_s - expected).abs() < 1e-9);
        assert_eq!(rep.num_transfers, 0);
        assert_eq!(rep.comm_s, 0.0);
    }

    #[test]
    fn independent_chains_run_in_parallel() {
        // Two disjoint chains joined by a zero-cost sink.
        let mut b = GraphBuilder::new("par");
        let mut last = Vec::new();
        for chain_id in 0..2 {
            let mut prev: Option<usize> = None;
            for i in 0..5 {
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(b.compute(
                    OpKind::MatMul,
                    format!("c{chain_id}/op{i}"),
                    shape![1],
                    1e9,
                    &deps,
                ));
            }
            last.push(prev.expect("chain built"));
        }
        b.compute(OpKind::Identity, "sink", shape![1], 0.0, &last);
        let g = b.build();
        let c = Cluster::p100_quad();

        let serial = simulate(&g, &Placement::all_on(&g, 1), &c);
        let mut split = vec![1usize; g.num_nodes()];
        for (i, nd) in g.nodes().iter().enumerate() {
            if nd.name.starts_with("c1") {
                split[i] = 2;
            }
        }
        let parallel = simulate(&g, &Placement(split), &c);
        assert!(
            parallel.makespan_s < 0.62 * serial.makespan_s,
            "parallel {} vs serial {}",
            parallel.makespan_s,
            serial.makespan_s
        );
    }

    #[test]
    fn cross_device_edge_pays_transfer() {
        let g = chain("pair", 2, 1e9);
        let c = Cluster::p100_quad();
        let colocated = simulate(&g, &Placement(vec![1, 1]), &c);
        let split = simulate(&g, &Placement(vec![1, 2]), &c);
        let link = c.link(1, 2);
        let bytes = g.edges()[0].bytes;
        let expected_extra = link.transfer_time(bytes);
        assert!(
            (split.makespan_s - colocated.makespan_s - expected_extra).abs() < 1e-9,
            "extra {} vs expected {}",
            split.makespan_s - colocated.makespan_s,
            expected_extra
        );
        assert_eq!(split.num_transfers, 1);
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let g = mars_graph::generators::Workload::InceptionV3
            .build(mars_graph::generators::Profile::Reduced);
        let c = Cluster::p100_quad();
        let mut p = Placement::round_robin(&g, &[1, 2, 3, 4]);
        p.enforce_compatibility(&g, &c);
        let rep = simulate(&g, &p, &c);
        // Lower bound: critical-path flops at ideal peak on the fastest
        // device, ignoring overheads.
        let fastest = c.devices().iter().map(|d| d.peak_gflops).fold(0.0, f64::max);
        let lb = g.critical_path_flops() / (fastest * 1e9);
        assert!(rep.makespan_s >= lb, "makespan {} < lower bound {lb}", rep.makespan_s);
    }

    #[test]
    fn dedup_merges_same_device_transfers() {
        // One producer feeding two consumers on another device: with
        // dedup one transfer, without dedup two.
        let mut b = GraphBuilder::new("fanout");
        let src = b.compute(OpKind::MatMul, "src", shape![256, 256], 1e9, &[]);
        let a = b.compute(OpKind::Relu, "a", shape![256, 256], 1e8, &[src]);
        let bb = b.compute(OpKind::Relu, "b", shape![256, 256], 1e8, &[src]);
        b.compute(OpKind::Add, "sink", shape![256, 256], 1e6, &[a, bb]);
        let g = b.build();
        let c = Cluster::p100_quad();
        let p = Placement(vec![1, 2, 2, 2]);

        let plain = simulate(&g, &p, &c);
        assert_eq!(plain.num_transfers, 2);
        let dedup = simulate_with(&g, &p, &c, SimOptions { dedup_transfers: true });
        assert_eq!(dedup.num_transfers, 1);
        assert!(dedup.comm_s < plain.comm_s);
        assert!(dedup.makespan_s <= plain.makespan_s + 1e-12);
    }

    #[test]
    fn dedup_does_not_merge_across_devices() {
        let mut b = GraphBuilder::new("fanout2");
        let src = b.compute(OpKind::MatMul, "src", shape![64, 64], 1e9, &[]);
        let a = b.compute(OpKind::Relu, "a", shape![64, 64], 1e8, &[src]);
        let bb = b.compute(OpKind::Relu, "b", shape![64, 64], 1e8, &[src]);
        b.compute(OpKind::Add, "sink", shape![64, 64], 1e6, &[a, bb]);
        let g = b.build();
        let c = Cluster::p100_quad();
        // Consumers on two DIFFERENT devices → still two transfers.
        let p = Placement(vec![1, 2, 3, 2]);
        let dedup = simulate_with(&g, &p, &c, SimOptions { dedup_transfers: true });
        assert!(dedup.num_transfers >= 2);
    }

    #[test]
    fn utilization_bounded() {
        let g = chain("u", 6, 1e9);
        let c = Cluster::p100_quad();
        let rep = simulate(&g, &Placement::all_on(&g, 1), &c);
        let u = rep.peak_device_utilization();
        assert!(u > 0.9 && u <= 1.0 + 1e-9, "{u}");
    }
}
