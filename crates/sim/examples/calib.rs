use mars_graph::generators::{Profile, Workload};
use mars_sim::{Cluster, Placement, SimEnv};

fn main() {
    let c = Cluster::p100_quad();
    for w in [
        Workload::InceptionV3,
        Workload::Gnmt4,
        Workload::BertBase,
        Workload::Vgg16,
        Workload::Seq2Seq,
        Workload::Transformer,
    ] {
        let g = w.build(Profile::Reduced);
        let env = SimEnv::new(g.clone(), c.clone(), 0);
        println!(
            "== {} ({} nodes, {:.2} GB, {:.2e} flops)",
            w.name(),
            g.num_nodes(),
            g.total_memory_bytes() as f64 / (1u64 << 30) as f64,
            g.total_flops()
        );
        for (label, p) in [
            ("gpu0-only", Placement::all_on(&g, 1)),
            ("rr-2gpu", Placement::round_robin(&g, &[1, 2])),
            ("rr-4gpu", Placement::round_robin(&g, &[1, 2, 3, 4])),
            ("blocked-2", Placement::blocked(&g, &[1, 2])),
            ("blocked-3", Placement::blocked(&g, &[1, 2, 3])),
            ("blocked-4", Placement::blocked(&g, &[1, 2, 3, 4])),
            ("cpu-only", Placement::all_on(&g, 0)),
        ] {
            match env.true_step_time(&p) {
                Ok(r) => println!(
                    "  {label:10} {:8.3}s  comm {:6.3}s xfers {}",
                    r.makespan_s, r.comm_s, r.num_transfers
                ),
                Err(e) => println!("  {label:10} OOM ({e})"),
            }
        }
    }
}
