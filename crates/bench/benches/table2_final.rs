//! Table 2 — per-step runtime (s) of the best placements found by each
//! approach.
//!
//! Paper reference values:
//! | Model        | Human | GPU-Only | Grouper | Encoder | Mars  | Mars (no pre) |
//! |--------------|-------|----------|---------|---------|-------|----------------|
//! | Inception-V3 | 0.071 | 0.071    | 0.067   | 0.067   | 0.067 | 0.067          |
//! | GNMT-4       | 1.661 | OOM      | 1.418   | 1.437   | 1.379 | 1.396          |
//! | BERT         | OOM   | OOM      | 12.661  | 11.737  | 9.214 | 11.363         |

use mars_bench::{
    bench_label, cell, cell_opt, finish_runs, measure_placement, note_run, print_table,
    run_agent_multi, save_json, telemetry_from_env, ExpConfig, BENCHMARKS,
};
use mars_core::agent::AgentKind;
use mars_core::baselines::{gpu_only, human_expert};
use mars_json::Json;
use mars_sim::Cluster;

struct Row {
    model: String,
    human: String,
    gpu_only: String,
    grouper_placer: String,
    encoder_placer: String,
    mars: String,
    mars_no_pretrain: String,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("model", Json::from(&self.model)),
            ("human", Json::from(&self.human)),
            ("gpu_only", Json::from(&self.gpu_only)),
            ("grouper_placer", Json::from(&self.grouper_placer)),
            ("encoder_placer", Json::from(&self.encoder_placer)),
            ("mars", Json::from(&self.mars)),
            ("mars_no_pretrain", Json::from(&self.mars_no_pretrain)),
        ])
    }
}
fn main() {
    let cfg = ExpConfig::from_env();
    telemetry_from_env();
    println!(
        "Table 2 reproduction — profile {:?}, budget {} placements/agent, {} seeds",
        cfg.profile, cfg.budget, cfg.seeds
    );

    let cluster = Cluster::p100_quad();
    let mut rows = Vec::new();
    for (wi, w) in BENCHMARKS.iter().copied().enumerate() {
        let graph = w.build(cfg.profile);
        let human = measure_placement(&cfg, w, &human_expert(w, &graph, &cluster), 1);
        let gpu = measure_placement(&cfg, w, &gpu_only(&graph, &cluster), 2);

        let mut agent_best = Vec::new();
        for (ai, (kind, pre)) in [
            (AgentKind::GrouperPlacer, false),
            (AgentKind::EncoderPlacer, false),
            (AgentKind::Mars, true),
            (AgentKind::MarsNoPretrain, false),
        ]
        .into_iter()
        .enumerate()
        {
            let r = run_agent_multi(&cfg, kind, w, pre, cfg.budget, (wi * 16 + ai) as u64 + 100);
            note_run(&kind.label(), w, &r);
            agent_best.push(r.mean_best);
        }

        rows.push(Row {
            model: bench_label(w).to_string(),
            human: cell(&human),
            gpu_only: cell(&gpu),
            grouper_placer: cell_opt(agent_best[0]),
            encoder_placer: cell_opt(agent_best[1]),
            mars: cell_opt(agent_best[2]),
            mars_no_pretrain: cell_opt(agent_best[3]),
        });
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.human.clone(),
                r.gpu_only.clone(),
                r.grouper_placer.clone(),
                r.encoder_placer.clone(),
                r.mars.clone(),
                r.mars_no_pretrain.clone(),
            ]
        })
        .collect();
    print_table(
        "Table 2: per-step runtime (s) of best placements",
        &[
            "Models",
            "Human Experts",
            "GPU Only",
            "Grouper-Placer",
            "Encoder-Placer",
            "Mars",
            "Mars (no pre-training)",
        ],
        &table_rows,
    );
    save_json("table2_final", &Json::arr(rows.iter().map(Row::to_json)));
    finish_runs("table2_final");
}
