//! End-to-end benchmark of the parallel rollout engine: PPO-shaped
//! evaluation rounds through [`SimEnv::evaluate_batch`], comparing the
//! serial/no-cache path against `--eval-threads 4` + memo cache, plus a
//! real smoke-train comparison. Writes the `BENCH_e2e.json` perf
//! baseline at the repo root.
//!
//! # What the rounds look like
//!
//! Placement-eval memoization only pays when the sampler re-draws a
//! placement it has seen. Early PPO training samples from a diffuse
//! policy over an astronomically large action space (`D^N`), where
//! exact repeats essentially never happen; the paper's acceleration
//! claim lives in the *converging* regime, where the policy peaks and
//! keeps re-emitting its favorite placements (§4's
//! samples-to-convergence comparison). The round generator models that
//! trajectory explicitly: round `r`'s resample probability ramps from
//! 0 (fully explorative, all fresh placements) to 0.9 (near-converged,
//! mostly re-drawing from the pool of previously sampled placements).
//! The realized cache hit rate is recorded in the JSON — nothing about
//! the workload shape is hidden.
//!
//! All arms — serial, threads+cache, and the two-worker fleet over a
//! Unix socketpair — are asserted bit-identical (outcomes and
//! simulated machine-seconds) every repetition: the engine may only
//! change wall-clock.

use mars_bench::harness::{write_baseline, BenchOpts, Sample};
use mars_core::agent::{Agent, AgentKind, TrainingLog};
use mars_core::config::MarsConfig;
use mars_core::workload_input::WorkloadInput;
use mars_graph::features::FEATURE_DIM;
use mars_graph::generators::{Profile, Workload};
use mars_json::Json;
use mars_net::{worker, Conn, EnvSetup, FleetBackend};
use mars_rng::rngs::StdRng;
use mars_rng::{Rng, SeedableRng};
use mars_sim::{Cluster, Environment, EvalOutcome, Placement, SimEnv};
use std::time::{Duration, Instant};

/// Worker threads in the fleet arm.
const FLEET_WORKERS: usize = 2;

const SEED: u64 = 42;
const SAMPLES_PER_ROUND: usize = 20;

/// PPO-shaped rounds with a convergence schedule: the probability of
/// re-drawing an already-sampled placement ramps 0 → 0.9 across rounds.
fn make_rounds(graph_w: Workload, profile: Profile, rounds: usize) -> Vec<Vec<Placement>> {
    let graph = graph_w.build(profile);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5011_0e75);
    let mut pool: Vec<Placement> = Vec::new();
    let mut out = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let resample_p = 0.9 * r as f64 / (rounds.max(2) - 1) as f64;
        let mut round = Vec::with_capacity(SAMPLES_PER_ROUND);
        for _ in 0..SAMPLES_PER_ROUND {
            let redraw = !pool.is_empty() && (rng.gen::<f64>()) < resample_p;
            let p = if redraw {
                pool[rng.gen_range(0..pool.len())].clone()
            } else {
                let p = Placement::random(&graph, &cluster, &mut rng);
                pool.push(p.clone());
                p
            };
            round.push(p);
        }
        out.push(round);
    }
    out
}

struct ArmResult {
    wall: Duration,
    outcomes: Vec<EvalOutcome>,
    machine_bits: u64,
    hit_rate: f64,
}

fn run_arm(
    graph_w: Workload,
    profile: Profile,
    rounds: &[Vec<Placement>],
    threads: usize,
    cache: bool,
) -> ArmResult {
    let mut env = SimEnv::new(graph_w.build(profile), Cluster::p100_quad(), SEED);
    env.set_eval_threads(threads);
    env.set_cache_enabled(cache);
    let t0 = Instant::now();
    let mut outcomes = Vec::new();
    for round in rounds {
        outcomes.extend(env.evaluate_batch(round));
    }
    ArmResult {
        wall: t0.elapsed(),
        outcomes,
        machine_bits: env.machine_seconds().to_bits(),
        hit_rate: env.cache_hit_rate().unwrap_or(0.0),
    }
}

/// The fleet arm: the same rounds with the compute phase sharded over
/// real fleet connections (worker threads serving Unix socketpairs —
/// the full frame/message path without process-spawn noise).
fn run_arm_fleet(graph_w: Workload, profile: Profile, rounds: &[Vec<Placement>]) -> ArmResult {
    let setup = EnvSetup {
        workload: graph_w.name().into(),
        profile: profile.name().into(),
        seed: SEED,
        fault_plan: String::new(),
        bad_cutoff_s: 20.0,
        invalid_penalty_s: 100.0,
        noise_sigma: 0.03,
        steps_per_eval: 15,
        warmup_steps: 5,
    };
    let mut conns = Vec::new();
    let mut threads = Vec::new();
    for _ in 0..FLEET_WORKERS {
        let (learner_end, worker_end) = Conn::pair().expect("socketpair");
        conns.push(learner_end);
        threads.push(std::thread::spawn(move || worker::serve(worker_end, None)));
    }
    let backend = FleetBackend::over_conns(conns, &setup).expect("fleet handshake");
    let mut env = SimEnv::new(graph_w.build(profile), Cluster::p100_quad(), SEED);
    env.set_cache_enabled(true);
    env.set_backend(Some(Box::new(backend)));
    let t0 = Instant::now();
    let mut outcomes = Vec::new();
    for round in rounds {
        outcomes.extend(env.evaluate_batch(round));
    }
    let wall = t0.elapsed();
    let result = ArmResult {
        wall,
        outcomes,
        machine_bits: env.machine_seconds().to_bits(),
        hit_rate: env.cache_hit_rate().unwrap_or(0.0),
    };
    env.set_backend(None); // shut the fleet down before joining
    for t in threads {
        t.join().expect("worker thread").expect("worker exits cleanly");
    }
    result
}

fn percentile_sample(name: &str, mut times: Vec<Duration>) -> Sample {
    times.sort_unstable();
    Sample {
        name: name.to_string(),
        iters: times.len() as u32,
        median: times[times.len() / 2],
        mean: times.iter().sum::<Duration>() / times.len() as u32,
        p10: times[times.len() / 10],
        p90: times[(times.len() * 9 / 10).min(times.len() - 1)],
    }
}

/// Real smoke train, serial/no-cache vs threads+cache; returns the two
/// wall times after asserting the training traces are bit-identical.
fn smoke_train(threads: usize, cache: bool) -> (Duration, TrainingLog) {
    let graph = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut cfg = MarsConfig::small();
    cfg.encoder_hidden = 16;
    cfg.placer_hidden = 16;
    cfg.attn_dim = 8;
    cfg.segment_size = 24;
    cfg.dgi_iters = 0;
    cfg.eval_threads = threads;
    cfg.eval_cache = cache;
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut agent = Agent::new(AgentKind::Mars, cfg, FEATURE_DIM, cluster.num_devices(), &mut rng);
    let mut env = SimEnv::new(graph, cluster, SEED);
    env.set_eval_threads(threads);
    env.set_cache_enabled(cache);
    let mut log = TrainingLog::default();
    let t0 = Instant::now();
    agent.train(&mut env, &input, 100, &mut rng, &mut log);
    (t0.elapsed(), log)
}

/// DGI pre-training with the given corpus batch width; returns wall
/// time and the per-iteration loss bits (asserted identical across
/// widths by the caller — batching may only change wall-clock).
fn smoke_pretrain(encode_batch: usize, iters: usize) -> (Duration, Vec<u32>) {
    let graph = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut cfg = MarsConfig::small();
    cfg.encoder_hidden = 16;
    cfg.placer_hidden = 16;
    cfg.attn_dim = 8;
    cfg.segment_size = 24;
    cfg.dgi_iters = iters;
    cfg.encode_batch = encode_batch;
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut agent = Agent::new(AgentKind::Mars, cfg, FEATURE_DIM, cluster.num_devices(), &mut rng);
    let t0 = Instant::now();
    let report = agent.pretrain(&input, &mut rng).expect("mars agent pre-trains");
    (t0.elapsed(), report.losses.iter().map(|l| l.to_bits()).collect())
}

fn trace_bits(log: &TrainingLog) -> Vec<(usize, Option<u64>, u64)> {
    log.records
        .iter()
        .map(|r| (r.samples_so_far, r.best_so_far_s.map(f64::to_bits), r.machine_s.to_bits()))
        .collect()
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.install_telemetry();
    let (workload, profile) = (Workload::Gnmt4, Profile::Paper);
    let (rounds_n, reps) = if opts.smoke { (6, 1) } else { (40, 7) };
    let rounds = make_rounds(workload, profile, rounds_n);
    let evals: usize = rounds.iter().map(Vec::len).sum();

    let mut serial_times = Vec::new();
    let mut engine_times = Vec::new();
    let mut fleet_times = Vec::new();
    let mut hit_rate = 0.0;
    for rep in 0..=reps {
        let serial = run_arm(workload, profile, &rounds, 1, false);
        let engine = run_arm(workload, profile, &rounds, 4, true);
        let fleet = run_arm_fleet(workload, profile, &rounds);
        assert_eq!(
            serial.outcomes, engine.outcomes,
            "parallel+cached rollout must be observably identical to serial"
        );
        assert_eq!(serial.machine_bits, engine.machine_bits, "machine-seconds must match bitwise");
        assert_eq!(
            serial.outcomes, fleet.outcomes,
            "fleet rollout must be observably identical to serial"
        );
        assert_eq!(
            serial.machine_bits, fleet.machine_bits,
            "fleet machine-seconds must match bitwise"
        );
        if rep > 0 || opts.smoke {
            // rep 0 is warm-up in measured mode.
            serial_times.push(serial.wall);
            engine_times.push(engine.wall);
            fleet_times.push(fleet.wall);
            hit_rate = engine.hit_rate;
        }
        if opts.smoke {
            break;
        }
    }
    println!(
        "rollout rounds on {}/{profile:?}: {evals} evals, cache hit rate {:.1}%",
        workload.name(),
        hit_rate * 100.0
    );

    let (train_serial, log_serial) = smoke_train(1, false);
    let (train_engine, log_engine) = smoke_train(4, true);
    assert_eq!(
        trace_bits(&log_serial),
        trace_bits(&log_engine),
        "smoke train must be bit-identical across engine configurations"
    );
    println!(
        "smoke train (inception, 100 evals): serial {:.3}s, engine {:.3}s (bit-identical traces)",
        train_serial.as_secs_f64(),
        train_engine.as_secs_f64()
    );

    // Batched-DGI arm: the contrastive pre-training loop with the
    // clean + corrupted graphs packed into one block-diagonal encoder
    // pass (`--encode-batch 2`) against the per-graph loop. The loss
    // trace must agree bit for bit — batching may only buy wall-clock.
    let pretrain_iters = if opts.smoke { 8 } else { 60 };
    let pretrain_reps = if opts.smoke { 1 } else { 5 };
    let mut pre_pg_times = Vec::new();
    let mut pre_b_times = Vec::new();
    for _ in 0..pretrain_reps {
        let (pg_wall, pg_bits) = smoke_pretrain(1, pretrain_iters);
        let (b_wall, b_bits) = smoke_pretrain(2, pretrain_iters);
        assert_eq!(
            pg_bits, b_bits,
            "batched DGI encoding must be bit-identical to the per-graph loop"
        );
        pre_pg_times.push(pg_wall);
        pre_b_times.push(b_wall);
    }
    println!(
        "dgi pretrain (inception, {pretrain_iters} iters): per-graph {:.3}s, batched {:.3}s (bit-identical losses)",
        pre_pg_times[0].as_secs_f64(),
        pre_b_times[0].as_secs_f64()
    );
    let pre_pg = percentile_sample("dgi_pretrain/per_graph", pre_pg_times);
    let pre_b = percentile_sample("dgi_pretrain/batched", pre_b_times);
    let pretrain_speedup = pre_pg.median.as_secs_f64() / pre_b.median.as_secs_f64().max(1e-12);

    if opts.smoke {
        // One-rep measurement for the CI bench gate: too noisy to be a
        // committed baseline, but enough to catch an order-of-magnitude
        // regression via `mars-cli bench-gate` with a loose floor. The
        // gate requires a non-empty `benchmarks` array, so the one-rep
        // samples are recorded too.
        let serial_s = serial_times[0].as_secs_f64();
        let engine_s = engine_times[0].as_secs_f64().max(1e-12);
        let samples = [
            percentile_sample("rollout_e2e/serial_nocache", serial_times),
            percentile_sample("rollout_e2e/threads4_cache", engine_times),
            percentile_sample("rollout_e2e/fleet2_unix", fleet_times),
            pre_pg,
            pre_b,
        ];
        let smoke = Json::obj([
            ("benchmarks", Json::arr(samples.iter().map(Sample::to_json))),
            ("speedup", Json::from(serial_s / engine_s)),
            ("cache_hit_rate", Json::from(hit_rate)),
            ("smoke", Json::from(true)),
        ]);
        // Anchor at the workspace root (cargo runs benches from the
        // package dir), same as `write_baseline`.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        let _ = std::fs::create_dir_all(&dir);
        match std::fs::write(dir.join("BENCH_e2e_smoke.json"), format!("{smoke}\n")) {
            Ok(()) => {
                println!("(smoke baseline written to target/experiments/BENCH_e2e_smoke.json)")
            }
            Err(e) => eprintln!("cannot write smoke baseline: {e}"),
        }
        println!("rollout smoke ok");
        opts.finish();
        return;
    }

    let serial = percentile_sample("rollout_e2e/serial_nocache", serial_times);
    let engine = percentile_sample("rollout_e2e/threads4_cache", engine_times);
    let fleet = percentile_sample("rollout_e2e/fleet2_unix", fleet_times);
    let speedup = serial.median.as_secs_f64() / engine.median.as_secs_f64().max(1e-12);
    let fleet_speedup = serial.median.as_secs_f64() / fleet.median.as_secs_f64().max(1e-12);
    println!(
        "rollout engine: serial {:?} vs threads4+cache {:?} → {speedup:.2}x",
        serial.median, engine.median
    );
    println!(
        "rollout fleet:  serial {:?} vs {FLEET_WORKERS}-worker fleet {:?} → {fleet_speedup:.2}x",
        serial.median, fleet.median
    );
    let extra = [
        ("speedup", Json::from(speedup)),
        ("cache_hit_rate", Json::from(hit_rate)),
        (
            "fleet",
            Json::obj([
                ("workers", Json::from(FLEET_WORKERS as f64)),
                ("speedup_vs_serial", Json::from(fleet_speedup)),
            ]),
        ),
        ("rounds", Json::from(rounds_n as f64)),
        ("samples_per_round", Json::from(SAMPLES_PER_ROUND as f64)),
        ("workload", Json::from(format!("{}/{profile:?}", workload.name()))),
        (
            "smoke_train",
            Json::obj([
                ("serial_s", Json::from(train_serial.as_secs_f64())),
                ("engine_s", Json::from(train_engine.as_secs_f64())),
                (
                    "speedup",
                    Json::from(train_serial.as_secs_f64() / train_engine.as_secs_f64().max(1e-12)),
                ),
            ]),
        ),
        (
            "dgi_pretrain",
            Json::obj([
                ("iters", Json::from(pretrain_iters as f64)),
                ("speedup_batched", Json::from(pretrain_speedup)),
            ]),
        ),
    ];
    write_baseline("BENCH_e2e.json", &[serial, engine, fleet, pre_pg, pre_b], &extra);
    opts.finish();
}
