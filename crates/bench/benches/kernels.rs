//! Microbenchmarks of the substrate kernels: dense/sparse matmul, GCN
//! encoder forward, segment placer forward, and the discrete-event
//! simulator. Uses the in-repo timing harness
//! ([`mars_bench::harness`]); pass `--smoke` for a one-iteration
//! correctness pass.

use mars_bench::harness::{bench, write_baseline, BenchOpts, Sample};
use mars_core::config::MarsConfig;
use mars_core::encoder::{Encoder, GcnEncoder};
use mars_core::placers::segment::SegmentSeq2Seq;
use mars_core::placers::PlacerNet;
use mars_core::workload_input::WorkloadInput;
use mars_graph::features::FEATURE_DIM;
use mars_graph::generators::{Profile, Workload};
use mars_nn::{FwdCtx, ParamStore};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use mars_sim::{simulate, Cluster, Placement};
use mars_tensor::ops::{matmul, matmul_tn, CsrMatrix};
use mars_tensor::{init, Matrix};
use std::hint::black_box;

fn bench_matmul(opts: &BenchOpts, out: &mut Vec<Sample>) {
    for n in [32usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(n, n, 1.0, &mut rng);
        let b = init::uniform(n, n, 1.0, &mut rng);
        out.extend(bench(opts, &format!("matmul/{n}"), || {
            black_box(matmul(black_box(&a), black_box(&b)));
        }));
    }
}

fn bench_matmul_tn(opts: &BenchOpts, out: &mut Vec<Sample>) {
    // The backward hot path: grad_w = xᵀ · grad_y.
    for n in [128usize, 256] {
        let mut rng = StdRng::seed_from_u64(6);
        let a = init::uniform(n, n, 1.0, &mut rng);
        let b = init::uniform(n, n, 1.0, &mut rng);
        out.extend(bench(opts, &format!("matmul_tn/{n}"), || {
            black_box(matmul_tn(black_box(&a), black_box(&b)));
        }));
    }
}

fn bench_spmm(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let g = Workload::BertBase.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::uniform(input.num_ops, 64, 1.0, &mut rng);
    out.extend(bench(opts, "spmm_bert_adjacency_64", || {
        black_box(CsrMatrix::spmm(black_box(&input.adj), black_box(&x)));
    }));
}

fn bench_gcn_forward(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let g = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 48, 3, &mut rng);
    out.extend(bench(opts, "gcn_encoder_forward_inception", || {
        let mut ctx = FwdCtx::new(&store);
        let h = enc.encode(&mut ctx, black_box(&input));
        black_box(ctx.tape.value(h).sum());
    }));
}

fn bench_segment_placer(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let cfg = MarsConfig::small();
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let placer = SegmentSeq2Seq::new(
        &mut store,
        cfg.encoder_hidden,
        cfg.placer_hidden,
        cfg.attn_dim,
        cfg.segment_size,
        5,
        &mut rng,
    );
    let reps = init::uniform(128, cfg.encoder_hidden, 1.0, &mut rng);
    out.extend(bench(opts, "segment_placer_forward_128ops", || {
        let mut ctx = FwdCtx::new(&store);
        let r = ctx.tape.constant(reps.clone());
        let l = placer.logits(&mut ctx, r);
        black_box(ctx.tape.value(l).sum());
    }));
}

fn bench_simulator(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let cluster = Cluster::p100_quad();
    for w in [Workload::InceptionV3, Workload::BertBase] {
        let g = w.build(Profile::Reduced);
        let mut p = Placement::round_robin(&g, &[1, 2, 3, 4]);
        p.enforce_compatibility(&g, &cluster);
        out.extend(bench(opts, &format!("simulate_step/{}", w.name()), || {
            black_box(simulate(black_box(&g), black_box(&p), black_box(&cluster)));
        }));
    }
}

fn bench_backward(opts: &BenchOpts, out: &mut Vec<Sample>) {
    // Full forward+backward of a GCN layer stack, the PPO inner loop's
    // dominant cost.
    let g = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 48, 3, &mut rng);
    let targets = std::sync::Arc::new(Matrix::full(input.num_ops, 48, 0.5));
    out.extend(bench(opts, "gcn_forward_backward_inception", || {
        let mut ctx = FwdCtx::new(&store);
        let h = enc.encode(&mut ctx, &input);
        let loss = ctx.tape.bce_with_logits(h, targets.clone());
        black_box(ctx.into_grads(loss, 1.0).len());
    }));
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.install_telemetry();
    let mut samples = Vec::new();
    bench_matmul(&opts, &mut samples);
    bench_matmul_tn(&opts, &mut samples);
    bench_spmm(&opts, &mut samples);
    bench_gcn_forward(&opts, &mut samples);
    bench_segment_placer(&opts, &mut samples);
    bench_simulator(&opts, &mut samples);
    bench_backward(&opts, &mut samples);
    // Only a full unfiltered run is a baseline worth comparing against.
    if !opts.smoke && opts.filter.is_none() {
        write_baseline("BENCH_kernels.json", &samples, &[]);
    }
    opts.finish();
}
