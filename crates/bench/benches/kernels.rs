//! Criterion microbenchmarks of the substrate kernels: dense/sparse
//! matmul, GCN encoder forward, segment placer forward, and the
//! discrete-event simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_core::config::MarsConfig;
use mars_core::encoder::{Encoder, GcnEncoder};
use mars_core::placers::segment::SegmentSeq2Seq;
use mars_core::placers::PlacerNet;
use mars_core::workload_input::WorkloadInput;
use mars_graph::features::FEATURE_DIM;
use mars_graph::generators::{Profile, Workload};
use mars_nn::{FwdCtx, ParamStore};
use mars_sim::{simulate, Cluster, Placement};
use mars_tensor::ops::{matmul, CsrMatrix};
use mars_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(n, n, 1.0, &mut rng);
        let b = init::uniform(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let g = Workload::BertBase.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::uniform(input.num_ops, 64, 1.0, &mut rng);
    c.bench_function("spmm_bert_adjacency_64", |bench| {
        bench.iter(|| CsrMatrix::spmm(black_box(&input.adj), black_box(&x)))
    });
}

fn bench_gcn_forward(c: &mut Criterion) {
    let g = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 48, 3, &mut rng);
    c.bench_function("gcn_encoder_forward_inception", |bench| {
        bench.iter(|| {
            let mut ctx = FwdCtx::new(&store);
            let h = enc.encode(&mut ctx, black_box(&input));
            black_box(ctx.tape.value(h).sum())
        })
    });
}

fn bench_segment_placer(c: &mut Criterion) {
    let cfg = MarsConfig::small();
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let placer = SegmentSeq2Seq::new(
        &mut store,
        cfg.encoder_hidden,
        cfg.placer_hidden,
        cfg.attn_dim,
        cfg.segment_size,
        5,
        &mut rng,
    );
    let reps = init::uniform(128, cfg.encoder_hidden, 1.0, &mut rng);
    c.bench_function("segment_placer_forward_128ops", |bench| {
        bench.iter(|| {
            let mut ctx = FwdCtx::new(&store);
            let r = ctx.tape.constant(reps.clone());
            let l = placer.logits(&mut ctx, r);
            black_box(ctx.tape.value(l).sum())
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let cluster = Cluster::p100_quad();
    let mut group = c.benchmark_group("simulate_step");
    for w in [Workload::InceptionV3, Workload::BertBase] {
        let g = w.build(Profile::Reduced);
        let mut p = Placement::round_robin(&g, &[1, 2, 3, 4]);
        p.enforce_compatibility(&g, &cluster);
        group.bench_with_input(BenchmarkId::from_parameter(w.name()), &g, |bench, graph| {
            bench.iter(|| simulate(black_box(graph), black_box(&p), black_box(&cluster)))
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    // Full forward+backward of a GCN layer stack, the PPO inner loop's
    // dominant cost.
    let g = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 48, 3, &mut rng);
    let targets = std::sync::Arc::new(Matrix::full(input.num_ops, 48, 0.5));
    c.bench_function("gcn_forward_backward_inception", |bench| {
        bench.iter(|| {
            let mut ctx = FwdCtx::new(&store);
            let h = enc.encode(&mut ctx, &input);
            let loss = ctx.tape.bce_with_logits(h, targets.clone());
            black_box(ctx.into_grads(loss, 1.0).len())
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_spmm, bench_gcn_forward, bench_segment_placer, bench_simulator, bench_backward
}
criterion_main!(kernels);
