//! Microbenchmarks of the substrate kernels: dense/sparse matmul, GCN
//! encoder forward, segment placer forward, and the discrete-event
//! simulator. Uses the in-repo timing harness
//! ([`mars_bench::harness`]); pass `--smoke` for a one-iteration
//! correctness pass.

use mars_bench::harness::{bench, write_baseline, BenchOpts, Sample};
use mars_core::config::MarsConfig;
use mars_core::encoder::{Encoder, GcnEncoder};
use mars_core::GraphBatch;
use mars_core::placers::segment::SegmentSeq2Seq;
use mars_core::placers::PlacerNet;
use mars_core::workload_input::WorkloadInput;
use mars_graph::features::FEATURE_DIM;
use mars_graph::generators::{Profile, Workload};
use mars_nn::{FwdCtx, ParamStore};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use mars_sim::{simulate, Cluster, Placement};
use mars_tensor::ops::{matmul, matmul_tn, CsrMatrix};
use mars_tensor::{init, Matrix};
use std::hint::black_box;

fn bench_matmul(opts: &BenchOpts, out: &mut Vec<Sample>) {
    for n in [32usize, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(n, n, 1.0, &mut rng);
        let b = init::uniform(n, n, 1.0, &mut rng);
        out.extend(bench(opts, &format!("matmul/{n}"), || {
            black_box(matmul(black_box(&a), black_box(&b)));
        }));
    }
}

fn bench_matmul_tn(opts: &BenchOpts, out: &mut Vec<Sample>) {
    // The backward hot path: grad_w = xᵀ · grad_y.
    for n in [128usize, 256] {
        let mut rng = StdRng::seed_from_u64(6);
        let a = init::uniform(n, n, 1.0, &mut rng);
        let b = init::uniform(n, n, 1.0, &mut rng);
        out.extend(bench(opts, &format!("matmul_tn/{n}"), || {
            black_box(matmul_tn(black_box(&a), black_box(&b)));
        }));
    }
}

fn bench_spmm(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let g = Workload::BertBase.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::uniform(input.num_ops, 64, 1.0, &mut rng);
    out.extend(bench(opts, "spmm_bert_adjacency_64", || {
        black_box(CsrMatrix::spmm(black_box(&input.adj), black_box(&x)));
    }));
}

fn bench_gcn_forward(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let g = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 48, 3, &mut rng);
    out.extend(bench(opts, "gcn_encoder_forward_inception", || {
        let mut ctx = FwdCtx::new(&store);
        let h = enc.encode(&mut ctx, black_box(&input));
        black_box(ctx.tape.value(h).sum());
    }));
}

fn bench_segment_placer(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let cfg = MarsConfig::small();
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let placer = SegmentSeq2Seq::new(
        &mut store,
        cfg.encoder_hidden,
        cfg.placer_hidden,
        cfg.attn_dim,
        cfg.segment_size,
        5,
        &mut rng,
    );
    let reps = init::uniform(128, cfg.encoder_hidden, 1.0, &mut rng);
    out.extend(bench(opts, "segment_placer_forward_128ops", || {
        let mut ctx = FwdCtx::new(&store);
        let r = ctx.tape.constant(reps.clone());
        let l = placer.logits(&mut ctx, r);
        black_box(ctx.tape.value(l).sum());
    }));
}

fn bench_lstm_cell(opts: &BenchOpts, out: &mut Vec<Sample>) {
    // The fused lstm_seq node against the same cell composed from
    // primitive tape ops — the pair documents what the fusion buys.
    let hd = 96usize;
    let mut rng = StdRng::seed_from_u64(7);
    let x = init::uniform(1, hd, 0.8, &mut rng);
    let w_ih = init::uniform(hd, 4 * hd, 0.5, &mut rng);
    let w_hh = init::uniform(hd, 4 * hd, 0.5, &mut rng);
    let b = init::uniform(1, 4 * hd, 0.3, &mut rng);
    let h0 = init::uniform(1, hd, 0.5, &mut rng);
    let c0 = init::uniform(1, hd, 0.5, &mut rng);

    out.extend(bench(opts, "lstm_cell/fused", || {
        let mut t = mars_autograd::Tape::new();
        let vs: Vec<_> =
            [&x, &w_ih, &w_hh, &b, &h0, &c0].iter().map(|m| t.constant((*m).clone())).collect();
        let out_v = t.lstm_seq(vs[0], vs[1], vs[2], vs[3], vs[4], vs[5]);
        black_box(t.value(out_v).sum());
    }));

    out.extend(bench(opts, "lstm_cell/unfused", || {
        let mut t = mars_autograd::Tape::new();
        let vs: Vec<_> =
            [&x, &w_ih, &w_hh, &b, &h0, &c0].iter().map(|m| t.constant((*m).clone())).collect();
        let slice_cols = |t: &mut mars_autograd::Tape, m, a, bb| {
            let mt = t.transpose(m);
            let s = t.slice_rows(mt, a, bb);
            t.transpose(s)
        };
        let xi = t.matmul(vs[0], vs[1]);
        let hh = t.matmul(vs[4], vs[2]);
        let z0 = t.add(xi, hh);
        let z = t.add_bias(z0, vs[3]);
        let i_pre = slice_cols(&mut t, z, 0, hd);
        let f_pre = slice_cols(&mut t, z, hd, 2 * hd);
        let g_pre = slice_cols(&mut t, z, 2 * hd, 3 * hd);
        let o_pre = slice_cols(&mut t, z, 3 * hd, 4 * hd);
        let i = t.sigmoid(i_pre);
        let f = t.sigmoid(f_pre);
        let g = t.tanh(g_pre);
        let o = t.sigmoid(o_pre);
        let fc = t.mul(f, vs[5]);
        let ig = t.mul(i, g);
        let c2 = t.add(fc, ig);
        let ct = t.tanh(c2);
        let h2 = t.mul(o, ct);
        black_box(t.value(h2).sum() + t.value(c2).sum());
    }));
}

fn bench_softmax(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let mut rng = StdRng::seed_from_u64(8);
    let row = init::uniform(1, 4096, 4.0, &mut rng);
    out.extend(bench(opts, "softmax/4096", || {
        let mut xs = row.as_slice().to_vec();
        mars_tensor::stats::softmax_inplace(black_box(&mut xs));
        black_box(xs[0]);
    }));
}

fn bench_simulator(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let cluster = Cluster::p100_quad();
    for w in [Workload::InceptionV3, Workload::BertBase] {
        let g = w.build(Profile::Reduced);
        let mut p = Placement::round_robin(&g, &[1, 2, 3, 4]);
        p.enforce_compatibility(&g, &cluster);
        out.extend(bench(opts, &format!("simulate_step/{}", w.name()), || {
            black_box(simulate(black_box(&g), black_box(&p), black_box(&cluster)));
        }));
    }
}

fn bench_gcn_batch(opts: &BenchOpts, out: &mut Vec<Sample>) {
    // Corpus-batched encoding as the training loop runs it: N tiny
    // graphs through one block-diagonal forward+backward on a
    // persistent scratch-arena tape, vs the pre-batching corpus loop
    // (`gcn_batch/seq16`: one fresh ctx per graph, per-graph kernels).
    // Small graphs put the fixed per-graph overhead — tape setup,
    // parameter binds, kernel dispatch, gradient-buffer allocation —
    // in charge, which is exactly what batching + the arena amortize;
    // results are bit-identical either way.
    let n = 2usize;
    let mut rng = StdRng::seed_from_u64(9);
    let mut store = ParamStore::new();
    let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 64, 3, &mut rng);
    let inputs: Vec<WorkloadInput> = (0..16usize)
        .map(|salt| {
            let features = init::uniform(n, FEATURE_DIM, 1.0, &mut rng);
            let mut trips = Vec::with_capacity(3 * n);
            for r in 0..n {
                trips.push((r, r, 0.5f32));
                trips.push((r, (r + 1) % n, 0.25));
                trips.push((r, (r + salt + 2) % n, 0.25));
            }
            let adj = std::sync::Arc::new(CsrMatrix::from_triplets(n, n, &trips));
            WorkloadInput { features, adj, num_ops: n }
        })
        .collect();
    for batch in [1usize, 4, 16] {
        let refs: Vec<&WorkloadInput> = inputs[..batch].iter().collect();
        let gb = GraphBatch::pack(&refs);
        let mut tape: Option<mars_autograd::Tape> = None;
        out.extend(bench(opts, &format!("gcn_batch/{batch}"), || {
            let mut ctx = match tape.take() {
                Some(prev) => FwdCtx::with_tape(prev, &store),
                None => FwdCtx::new(&store),
            };
            let h = enc.encode_batch(&mut ctx, &gb).expect("gcn has a batched path");
            black_box(ctx.tape.value(h).as_slice()[0]);
            let mut reclaimed = ctx.into_tape();
            reclaimed.reset_for_reuse();
            tape = Some(reclaimed);
        }));
    }
    out.extend(bench(opts, "gcn_batch/seq16", || {
        let mut acc = 0.0f32;
        for inp in &inputs {
            let mut ctx = FwdCtx::new(&store);
            let h = enc.encode(&mut ctx, inp);
            acc += ctx.tape.value(h).as_slice()[0];
        }
        black_box(acc);
    }));
    // Hold the batching win on the record: a full run must keep the
    // 16-graph corpus pass at least 2x faster than 16 sequential
    // per-graph encodes (smoke runs time a single unwarmed iteration,
    // which says nothing about throughput, so they skip the floor).
    if !opts.smoke {
        let median = |name: &str| {
            out.iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name} sample"))
                .median
                .as_nanos() as f64
        };
        let speedup = median("gcn_batch/seq16") / median("gcn_batch/16");
        println!("gcn_batch/16 speedup over seq16: {speedup:.2}x");
        assert!(
            speedup >= 2.0,
            "corpus batching lost its edge: gcn_batch/16 is only {speedup:.2}x \
             faster than 16 per-graph encodes (floor 2.0x)"
        );
    }
}

fn bench_backward(opts: &BenchOpts, out: &mut Vec<Sample>) {
    // Full forward+backward of a GCN layer stack, the PPO inner loop's
    // dominant cost.
    let g = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 48, 3, &mut rng);
    let targets = std::sync::Arc::new(Matrix::full(input.num_ops, 48, 0.5));
    out.extend(bench(opts, "gcn_forward_backward_inception", || {
        let mut ctx = FwdCtx::new(&store);
        let h = enc.encode(&mut ctx, &input);
        let loss = ctx.tape.bce_with_logits(h, targets.clone());
        black_box(ctx.into_grads(loss, 1.0).len());
    }));
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.install_telemetry();
    let mut samples = Vec::new();
    bench_matmul(&opts, &mut samples);
    bench_matmul_tn(&opts, &mut samples);
    bench_spmm(&opts, &mut samples);
    bench_gcn_forward(&opts, &mut samples);
    bench_segment_placer(&opts, &mut samples);
    bench_lstm_cell(&opts, &mut samples);
    bench_softmax(&opts, &mut samples);
    bench_simulator(&opts, &mut samples);
    bench_gcn_batch(&opts, &mut samples);
    bench_backward(&opts, &mut samples);
    // Only a full unfiltered run is a baseline worth comparing against.
    if !opts.smoke && opts.filter.is_none() {
        write_baseline("BENCH_kernels.json", &samples, &[]);
    }
    opts.finish();
}
