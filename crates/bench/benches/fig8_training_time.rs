//! Fig. 8 — training time of the agent under each RL approach,
//! including Mars without self-supervised pre-training.
//!
//! Training time = environment machine time (dominant: each placement
//! evaluation runs the workload for 15 steps on the machine) + agent
//! compute + DGI pre-training (which needs *no* machine interaction).
//!
//! Metric: time until the agent first found a placement within 10% of
//! the best placement found by *any* agent on that workload (a common
//! quality target, as the paper's "train until the optimal placement is
//! found" protocol implies). Agents that never reach the target are
//! charged their full budget (censored). Averaged over seeds.
//!
//! Paper shape: Mars trains fastest on Inception-V3; self-supervised
//! pre-training saves ~13.2% of training time on average.

use mars_bench::{bench_label, run_agent_multi, save_json, ExpConfig, BENCHMARKS};
use mars_core::agent::{AgentKind, TrainingLog};
use mars_json::Json;

struct Entry {
    workload: String,
    agent: String,
    /// Mean machine+agent seconds until the common quality target.
    mean_time_to_target_s: f64,
    /// Mean total hours (Fig. 8 y-axis).
    total_hours: f64,
    /// Mean samples until the target.
    samples_to_target: f64,
    /// Seeds that reached the target.
    reached: usize,
    /// Seeds run.
    seeds: usize,
}

impl Entry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(&self.workload)),
            ("agent", Json::from(&self.agent)),
            ("mean_time_to_target_s", Json::from(self.mean_time_to_target_s)),
            ("total_hours", Json::from(self.total_hours)),
            ("samples_to_target", Json::from(self.samples_to_target)),
            ("reached", Json::from(self.reached)),
            ("seeds", Json::from(self.seeds)),
        ])
    }
}
/// Machine+agent time when `log` first had a best ≤ `target`;
/// `None` if it never did.
fn time_to_target(log: &TrainingLog, target: f64) -> Option<(f64, f64, usize)> {
    for r in &log.records {
        if r.best_so_far_s.is_some_and(|b| b <= target) {
            return Some((r.machine_s, r.agent_wall_s + log.pretrain_wall_s, r.samples_so_far));
        }
    }
    None
}

fn main() {
    let cfg = ExpConfig::from_env();
    println!(
        "Fig. 8 reproduction — profile {:?}, budget {} placements/agent, {} seeds",
        cfg.profile, cfg.budget, cfg.seeds
    );

    const AGENTS: [(AgentKind, bool); 4] = [
        (AgentKind::GrouperPlacer, false),
        (AgentKind::EncoderPlacer, false),
        (AgentKind::Mars, true),
        (AgentKind::MarsNoPretrain, false),
    ];

    let mut entries: Vec<Entry> = Vec::new();
    for (wi, w) in BENCHMARKS.iter().copied().enumerate() {
        // Phase 1: run everything, find the global best.
        let runs: Vec<_> = AGENTS
            .iter()
            .enumerate()
            .map(|(ai, &(kind, pre))| {
                (kind, run_agent_multi(&cfg, kind, w, pre, cfg.budget, (wi * 64 + ai) as u64 + 800))
            })
            .collect();
        let global_best = runs
            .iter()
            .flat_map(|(_, r)| r.bests.iter().flatten().copied())
            .fold(f64::INFINITY, f64::min);
        let target = global_best * 1.10;
        println!("  {} target: within 10% of global best {global_best:.3} s", bench_label(w));

        // Phase 2: per-agent mean time to the target.
        for (kind, r) in &runs {
            let mut times = Vec::new();
            let mut sample_counts = Vec::new();
            let mut reached = 0usize;
            for log in &r.logs {
                match time_to_target(log, target) {
                    Some((machine, wall, samples)) => {
                        reached += 1;
                        times.push(machine + wall);
                        sample_counts.push(samples as f64);
                    }
                    None => {
                        // Censored at full budget.
                        times.push(log.machine_s + log.train_wall_s + log.pretrain_wall_s);
                        sample_counts.push(log.total_samples as f64);
                    }
                }
            }
            let mean_time = times.iter().sum::<f64>() / times.len() as f64;
            let mean_samples = sample_counts.iter().sum::<f64>() / sample_counts.len() as f64;
            println!(
                "    {:<24} {:7.2} h to target ({}/{} seeds reached, mean {:.0} samples)",
                kind.label(),
                mean_time / 3600.0,
                reached,
                r.logs.len(),
                mean_samples,
            );
            entries.push(Entry {
                workload: bench_label(w).to_string(),
                agent: kind.label(),
                mean_time_to_target_s: mean_time,
                total_hours: mean_time / 3600.0,
                samples_to_target: mean_samples,
                reached,
                seeds: r.logs.len(),
            });
        }
    }

    // Pre-training saving: Mars vs Mars (no pre-training), per workload.
    let mut savings = Vec::new();
    for w in BENCHMARKS {
        let label = bench_label(w);
        let mars =
            entries.iter().find(|e| e.workload == label && e.agent == "Mars").expect("mars entry");
        let nopre = entries
            .iter()
            .find(|e| e.workload == label && e.agent == "Mars (no pre-training)")
            .expect("no-pretrain entry");
        let saving = 1.0 - mars.total_hours / nopre.total_hours;
        println!("  pre-training saving on {label}: {:.1}%", saving * 100.0);
        savings.push(saving);
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    println!("\nAverage pre-training saving: {:.1}% (paper reports 13.2%)", avg * 100.0);
    save_json("fig8_training_time", &Json::arr(entries.iter().map(Entry::to_json)));
}
