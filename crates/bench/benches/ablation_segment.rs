//! Ablation: segment size `s` of the Mars placer (§3.3 fixes s = 128
//! at paper scale; the reduced profile uses 32). Sweeps s to show the
//! sweet spot between per-op context (small s ⇒ more recurrence
//! carry-over) and encoding efficiency (large s ⇒ full-sequence
//! seq2seq behaviour, which Table 1 shows degrading).

use mars_bench::{bench_label, print_table, run_agent_multi, save_json, ExpConfig};
use mars_core::agent::AgentKind;
use mars_graph::generators::Workload;
use mars_json::Json;

struct Row {
    workload: String,
    segment_size: usize,
    mean_best_s: Option<f64>,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(&self.workload)),
            ("segment_size", Json::from(self.segment_size)),
            ("mean_best_s", Json::from(self.mean_best_s)),
        ])
    }
}
fn main() {
    let cfg = ExpConfig::from_env();
    println!(
        "Segment-size ablation — profile {:?}, budget {}, {} seeds",
        cfg.profile, cfg.budget, cfg.seeds
    );

    let sweep: &[usize] = if matches!(cfg.profile, mars_graph::generators::Profile::Paper) {
        &[32, 64, 128, 256, 4096]
    } else {
        &[8, 16, 32, 64, 4096]
    };

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (wi, w) in [Workload::Gnmt4, Workload::BertBase].into_iter().enumerate() {
        for (si, &s) in sweep.iter().enumerate() {
            let mut exp = cfg.clone();
            exp.mars.segment_size = s;
            let r = run_agent_multi(
                &exp,
                AgentKind::Mars,
                w,
                true,
                exp.budget,
                (wi * 16 + si) as u64 + 5000,
            );
            println!("  {:<10} s={:<5} mean best {:?}", bench_label(w), s, r.mean_best);
            table.push(vec![
                bench_label(w).to_string(),
                if s >= 4096 { "whole-seq".into() } else { s.to_string() },
                r.mean_best.map(|b| format!("{b:.3}")).unwrap_or_else(|| "-".into()),
            ]);
            rows.push(Row {
                workload: bench_label(w).to_string(),
                segment_size: s,
                mean_best_s: r.mean_best,
            });
        }
    }
    print_table(
        "Ablation: Mars placer segment size",
        &["Workload", "Segment size", "Mean best (s)"],
        &table,
    );
    save_json("ablation_segment", &Json::arr(rows.iter().map(Row::to_json)));
}
