//! Table 3 — generalizability: per-step time (s) of placements found
//! by direct training vs. a policy generalized from a similar-type or
//! different-type workload (100 fine-tuning steps).
//!
//! Paper reference values:
//! | Unseen       | Direct | Similar type | Different type |
//! |--------------|--------|--------------|----------------|
//! | Inception-V3 | 0.067  | 0.067        | 0.067          |
//! | GNMT-4       | 1.379  | 1.422        | 1.472          |
//! | BERT         | 9.214  | 10.127       | 12.426         |

use mars_bench::{bench_label, cell_opt, print_table, save_json, ExpConfig, BENCHMARKS};
use mars_core::generalize::{different_source, direct, generalize, similar_source};
use mars_json::Json;

struct Row {
    unseen: String,
    direct: String,
    similar: String,
    different: String,
    similar_source: String,
    different_source: String,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unseen", Json::from(&self.unseen)),
            ("direct", Json::from(&self.direct)),
            ("similar", Json::from(&self.similar)),
            ("different", Json::from(&self.different)),
            ("similar_source", Json::from(&self.similar_source)),
            ("different_source", Json::from(&self.different_source)),
        ])
    }
}
fn main() {
    let cfg = ExpConfig::from_env();
    // Paper protocol: fine-tune for 100 steps; source training until
    // no improvement for 100 steps (capped by the budget).
    let finetune = 100;
    let patience = 100;
    println!(
        "Table 3 reproduction — profile {:?}, source budget {} + {} fine-tune samples",
        cfg.profile, cfg.budget, finetune
    );

    let mean = |xs: &[Option<f64>]| -> Option<f64> {
        let found: Vec<f64> = xs.iter().flatten().copied().collect();
        (!found.is_empty()).then(|| found.iter().sum::<f64>() / found.len() as f64)
    };

    let mut rows = Vec::new();
    for (wi, w) in BENCHMARKS.iter().copied().enumerate() {
        let sim_src = similar_source(w);
        let dif_src = different_source(w);

        let mut sim_bests = Vec::new();
        let mut dif_bests = Vec::new();
        let mut dir_bests = Vec::new();
        for s in 0..cfg.seeds as u64 {
            let sim = generalize(
                &cfg.mars,
                sim_src,
                w,
                cfg.profile,
                cfg.budget,
                patience,
                finetune,
                cfg.seed ^ (wi as u64 * 31 + 1 + s * 977),
            );
            let dif = generalize(
                &cfg.mars,
                dif_src,
                w,
                cfg.profile,
                cfg.budget,
                patience,
                finetune,
                cfg.seed ^ (wi as u64 * 31 + 2 + s * 977),
            );
            // Fair comparison: direct training gets the same total budget.
            let total = sim.train_samples + finetune;
            let d =
                direct(&cfg.mars, w, cfg.profile, total, cfg.seed ^ (wi as u64 * 31 + 3 + s * 977));
            sim_bests.push(sim.best_s);
            dif_bests.push(dif.best_s);
            dir_bests.push(d);
        }
        let sim_best = mean(&sim_bests);
        let dif_best = mean(&dif_bests);
        let dir = mean(&dir_bests);

        println!(
            "  {:<14} direct {:>8}  similar({}) {:>8}  different({}) {:>8}",
            bench_label(w),
            cell_opt(dir),
            sim_src.name(),
            cell_opt(sim_best),
            dif_src.name(),
            cell_opt(dif_best),
        );
        rows.push(Row {
            unseen: bench_label(w).to_string(),
            direct: cell_opt(dir),
            similar: cell_opt(sim_best),
            different: cell_opt(dif_best),
            similar_source: sim_src.name().to_string(),
            different_source: dif_src.name().to_string(),
        });
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.unseen.clone(), r.direct.clone(), r.similar.clone(), r.different.clone()])
        .collect();
    print_table(
        "Table 3: generalization (100 fine-tune steps on the unseen workload)",
        &[
            "Unseen workloads",
            "Direct training",
            "Generalized from similar type",
            "Generalized from different type",
        ],
        &table_rows,
    );
    save_json("table3_generalization", &Json::arr(rows.iter().map(Row::to_json)));
}
