//! Ablation: PPO vs. plain REINFORCE (§2 motivates PPO by the "slow
//! convergence of reinforcement learning based on REINFORCE").
//!
//! REINFORCE is realized as the degenerate PPO configuration: one
//! epoch, one minibatch, effectively-unbounded clip — the first (and
//! only) update then uses ratio ≡ 1, i.e. the vanilla policy gradient
//! `∇ log π × Â`.

use mars_bench::{bench_label, print_table, run_agent_multi, save_json, ExpConfig};
use mars_core::agent::AgentKind;
use mars_core::config::MarsConfig;
use mars_graph::generators::Workload;
use mars_json::Json;

struct Row {
    workload: String,
    algo: String,
    mean_best_s: Option<f64>,
    mean_samples_to_converge: Option<f64>,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(&self.workload)),
            ("algo", Json::from(&self.algo)),
            ("mean_best_s", Json::from(self.mean_best_s)),
            ("mean_samples_to_converge", Json::from(self.mean_samples_to_converge)),
        ])
    }
}
fn reinforce_cfg(base: &MarsConfig) -> MarsConfig {
    let mut c = base.clone();
    c.ppo_epochs = 1;
    c.minibatches = 1;
    c.clip_eps = 1e6;
    c
}

fn main() {
    let cfg = ExpConfig::from_env();
    println!(
        "RL-algorithm ablation — profile {:?}, budget {}, {} seeds",
        cfg.profile, cfg.budget, cfg.seeds
    );

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (wi, w) in [Workload::InceptionV3, Workload::Gnmt4].into_iter().enumerate() {
        for (ci, (algo, exp_cfg)) in [
            ("PPO", cfg.clone()),
            ("REINFORCE", ExpConfig { mars: reinforce_cfg(&cfg.mars), ..cfg.clone() }),
        ]
        .into_iter()
        .enumerate()
        {
            let r = run_agent_multi(
                &exp_cfg,
                AgentKind::Mars,
                w,
                true,
                exp_cfg.budget,
                (wi * 4 + ci) as u64 + 4000,
            );
            let convs: Vec<f64> = r
                .logs
                .iter()
                .filter_map(|l| l.samples_to_converge(1.05).map(|s| s as f64))
                .collect();
            let mean_conv =
                (!convs.is_empty()).then(|| convs.iter().sum::<f64>() / convs.len() as f64);
            println!(
                "  {:<14} {:<10} mean best {:?}, mean samples-to-converge {:?}",
                bench_label(w),
                algo,
                r.mean_best,
                mean_conv
            );
            table.push(vec![
                bench_label(w).to_string(),
                algo.to_string(),
                r.mean_best.map(|b| format!("{b:.3}")).unwrap_or_else(|| "-".into()),
                mean_conv.map(|c| format!("{c:.0}")).unwrap_or_else(|| "-".into()),
            ]);
            rows.push(Row {
                workload: bench_label(w).to_string(),
                algo: algo.to_string(),
                mean_best_s: r.mean_best,
                mean_samples_to_converge: mean_conv,
            });
        }
    }
    print_table(
        "Ablation: PPO vs REINFORCE (Mars agent)",
        &["Workload", "Algorithm", "Mean best (s)", "Samples to converge"],
        &table,
    );
    save_json("ablation_rl", &Json::arr(rows.iter().map(Row::to_json)));
}
