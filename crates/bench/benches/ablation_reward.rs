//! Ablation: reward shaping (Eq. 7 uses `R = −√t`; compare against
//! `−t` and `−ln(1+t)`). The square root compresses the 100 s invalid
//! penalty relative to good readings, keeping advantages from being
//! dominated by OOM samples — linear shaping should be noisier on
//! memory-constrained workloads.

use mars_bench::{bench_label, print_table, run_agent_multi, save_json, ExpConfig};
use mars_core::agent::AgentKind;
use mars_core::ppo::RewardShaping;
use mars_graph::generators::Workload;
use mars_json::Json;

struct Row {
    workload: String,
    shaping: String,
    mean_best_s: Option<f64>,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(&self.workload)),
            ("shaping", Json::from(&self.shaping)),
            ("mean_best_s", Json::from(self.mean_best_s)),
        ])
    }
}
fn main() {
    let cfg = ExpConfig::from_env();
    println!(
        "Reward-shaping ablation — profile {:?}, budget {}, {} seeds",
        cfg.profile, cfg.budget, cfg.seeds
    );

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (wi, w) in [Workload::Gnmt4, Workload::BertBase].into_iter().enumerate() {
        for (si, shaping) in
            [RewardShaping::NegSqrt, RewardShaping::NegLinear, RewardShaping::NegLog]
                .into_iter()
                .enumerate()
        {
            let mut exp = cfg.clone();
            exp.mars.reward_shaping = shaping;
            let r = run_agent_multi(
                &exp,
                AgentKind::Mars,
                w,
                true,
                exp.budget,
                (wi * 8 + si) as u64 + 7000,
            );
            println!("  {:<10} {:?}: mean best {:?}", bench_label(w), shaping, r.mean_best);
            table.push(vec![
                bench_label(w).to_string(),
                format!("{shaping:?}"),
                r.mean_best.map(|b| format!("{b:.3}")).unwrap_or_else(|| "-".into()),
            ]);
            rows.push(Row {
                workload: bench_label(w).to_string(),
                shaping: format!("{shaping:?}"),
                mean_best_s: r.mean_best,
            });
        }
    }
    print_table(
        "Ablation: reward shaping (Mars agent)",
        &["Workload", "Shaping", "Mean best (s)"],
        &table,
    );
    save_json("ablation_reward", &Json::arr(rows.iter().map(Row::to_json)));
}
