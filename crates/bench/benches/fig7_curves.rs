//! Fig. 7 — per-step runtime of the placements found during training,
//! for Inception-V3 (7a) and GNMT-4 (7b), comparing Mars against the
//! grouper-placer and encoder-placer structures. Averaged over seeds.
//!
//! Paper shapes to reproduce:
//! * 7a: Mars finds the Inception optimum quickly; the encoder-placer
//!   converges far more slowly (paper: ~2500 steps vs Mars < 100).
//! * 7b: Mars starts from better placements (all < 4 s even at the
//!   beginning) and finds the best final placement.

use mars_bench::{bench_label, run_agent_multi, save_json, ExpConfig};
use mars_core::agent::AgentKind;
use mars_graph::generators::Workload;
use mars_json::Json;

struct Series {
    agent: String,
    samples: Vec<usize>,
    /// Mean (over seeds) of the per-round mean-valid reading.
    mean_valid_s: Vec<Option<f64>>,
    /// Mean (over seeds) best-so-far.
    best_so_far_s: Vec<Option<f64>>,
    /// Mean policy entropy per round (exploration trace).
    policy_entropy: Vec<f64>,
    /// Mean samples until within 10% of this agent's own final best.
    samples_to_converge_10pct: Option<f64>,
    /// Final mean best.
    final_best_s: Option<f64>,
}

struct Figure {
    workload: String,
    series: Vec<Series>,
}

impl Series {
    fn to_json(&self) -> Json {
        Json::obj([
            ("agent", Json::from(&self.agent)),
            ("samples", Json::from(self.samples.clone())),
            ("mean_valid_s", Json::from(self.mean_valid_s.clone())),
            ("best_so_far_s", Json::from(self.best_so_far_s.clone())),
            ("policy_entropy", Json::from(self.policy_entropy.clone())),
            ("samples_to_converge_10pct", Json::from(self.samples_to_converge_10pct)),
            ("final_best_s", Json::from(self.final_best_s)),
        ])
    }
}

impl Figure {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(&self.workload)),
            ("series", Json::arr(self.series.iter().map(Series::to_json))),
        ])
    }
}
fn mean_opt(values: Vec<Option<f64>>) -> Option<f64> {
    let found: Vec<f64> = values.into_iter().flatten().collect();
    (!found.is_empty()).then(|| found.iter().sum::<f64>() / found.len() as f64)
}

fn ascii_plot(series: &[Series]) {
    let max_t =
        series.iter().flat_map(|s| s.best_so_far_s.iter().flatten()).fold(0.0f64, |a, &b| a.max(b));
    if max_t <= 0.0 {
        return;
    }
    for s in series {
        let line: String = s
            .best_so_far_s
            .iter()
            .map(|v| match v {
                None => '!',
                Some(t) => {
                    let lvl = (t / max_t * 8.0).min(8.0) as usize;
                    char::from_digit(lvl as u32, 10).unwrap_or('8')
                }
            })
            .collect();
        println!("  {:<24} |{line}|", s.agent);
    }
    println!("  (digits: mean best-so-far per update round, 0 = fastest, 8 = slowest)");
}

fn main() {
    let cfg = ExpConfig::from_env();
    println!(
        "Fig. 7 reproduction — profile {:?}, budget {} placements/agent, {} seeds",
        cfg.profile, cfg.budget, cfg.seeds
    );

    let mut figures = Vec::new();
    for (wi, w) in [Workload::InceptionV3, Workload::Gnmt4].into_iter().enumerate() {
        println!("\n== Fig. 7{} — {}", if wi == 0 { 'a' } else { 'b' }, bench_label(w));
        let mut series = Vec::new();
        for (ai, (kind, pre)) in [
            (AgentKind::Mars, true),
            (AgentKind::GrouperPlacer, false),
            (AgentKind::EncoderPlacer, false),
        ]
        .into_iter()
        .enumerate()
        {
            let r = run_agent_multi(&cfg, kind, w, pre, cfg.budget, (wi * 32 + ai) as u64 + 700);
            let rounds = r.logs.iter().map(|l| l.records.len()).min().unwrap_or(0);
            let samples: Vec<usize> =
                (0..rounds).map(|i| r.logs[0].records[i].samples_so_far).collect();
            let best_so_far: Vec<Option<f64>> = (0..rounds)
                .map(|i| mean_opt(r.logs.iter().map(|l| l.records[i].best_so_far_s).collect()))
                .collect();
            let mean_valid: Vec<Option<f64>> = (0..rounds)
                .map(|i| {
                    mean_opt(r.logs.iter().map(|l| l.records[i].mean_valid_reading_s).collect())
                })
                .collect();
            let entropy: Vec<f64> = (0..rounds)
                .map(|i| {
                    r.logs.iter().map(|l| l.records[i].policy_entropy).sum::<f64>()
                        / r.logs.len() as f64
                })
                .collect();
            let convs: Vec<f64> = r
                .logs
                .iter()
                .filter_map(|l| l.samples_to_converge(1.10).map(|s| s as f64))
                .collect();
            let conv = (!convs.is_empty()).then(|| convs.iter().sum::<f64>() / convs.len() as f64);
            println!(
                "  {:<24} mean best {}  converged@{} samples  entropy {:.2}→{:.2}",
                kind.label(),
                r.mean_best.map(|b| format!("{b:.3}s")).unwrap_or_else(|| "-".into()),
                conv.map(|c| format!("{c:.0}")).unwrap_or_else(|| "-".into()),
                entropy.first().copied().unwrap_or(0.0),
                entropy.last().copied().unwrap_or(0.0),
            );
            series.push(Series {
                agent: kind.label(),
                samples,
                mean_valid_s: mean_valid,
                best_so_far_s: best_so_far,
                policy_entropy: entropy,
                samples_to_converge_10pct: conv,
                final_best_s: r.mean_best,
            });
        }
        ascii_plot(&series);
        figures.push(Figure { workload: bench_label(w).to_string(), series });
    }
    save_json("fig7_curves", &Json::arr(figures.iter().map(Figure::to_json)));
}
