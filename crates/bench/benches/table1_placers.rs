//! Table 1 — per-step training time (s) of placements found by the
//! agent with a *trained graph encoder* and different placers (§3.3).
//!
//! Protocol: pre-train the GCN encoder with DGI, freeze its output
//! representations, then train each placer on the frozen
//! representations and report the best placement found.
//!
//! Paper reference values:
//! | Models       | Seq2seq | Trf-XL | Seq2seq (segment) |
//! |--------------|---------|--------|-------------------|
//! | Inception-V3 | 0.100   | 0.067  | 0.067             |
//! | GNMT-4       | 2.040   | 1.449  | 1.440             |
//! | BERT         | 12.529  | 11.363 | 9.821             |

use mars_bench::{
    bench_label, cell_opt, finish_runs, note_run, print_table, run_agent_multi, save_json,
    telemetry_from_env, ExpConfig, BENCHMARKS,
};
use mars_core::agent::AgentKind;
use mars_core::placers::PlacerChoice;
use mars_json::Json;

struct Row {
    model: String,
    seq2seq: String,
    trf_xl: String,
    seq2seq_segment: String,
    mlp: String,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("model", Json::from(&self.model)),
            ("seq2seq", Json::from(&self.seq2seq)),
            ("trf_xl", Json::from(&self.trf_xl)),
            ("seq2seq_segment", Json::from(&self.seq2seq_segment)),
            ("mlp", Json::from(&self.mlp)),
        ])
    }
}
fn main() {
    let cfg = ExpConfig::from_env();
    telemetry_from_env();
    println!(
        "Table 1 reproduction — profile {:?}, budget {} placements/placer, {} seeds",
        cfg.profile, cfg.budget, cfg.seeds
    );

    let mut rows = Vec::new();
    for (wi, w) in BENCHMARKS.iter().copied().enumerate() {
        let mut best = Vec::new();
        for (pi, choice) in
            [PlacerChoice::Seq2Seq, PlacerChoice::TrfXl, PlacerChoice::Segment, PlacerChoice::Mlp]
                .into_iter()
                .enumerate()
        {
            // Pre-train the encoder, then freeze it (run_agent calls
            // freeze_encoder for FixedEncoder kinds after pre-training).
            let r = run_agent_multi(
                &cfg,
                AgentKind::FixedEncoder(choice),
                w,
                true,
                cfg.budget,
                (wi * 8 + pi) as u64 + 300,
            );
            note_run(&format!("frozen-GCN + {}", choice.label()), w, &r);
            best.push(r.mean_best);
        }
        rows.push(Row {
            model: bench_label(w).to_string(),
            seq2seq: cell_opt(best[0]),
            trf_xl: cell_opt(best[1]),
            seq2seq_segment: cell_opt(best[2]),
            mlp: cell_opt(best[3]),
        });
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.seq2seq.clone(),
                r.trf_xl.clone(),
                r.seq2seq_segment.clone(),
                r.mlp.clone(),
            ]
        })
        .collect();
    print_table(
        "Table 1: per-step time (s) by placer (frozen trained encoder); MLP column is the §3.3 ablation",
        &["Models", "Seq2seq", "Trf-XL", "Seq2seq (segment)", "MLP (§3.3)"],
        &table_rows,
    );
    save_json("table1_placers", &Json::arr(rows.iter().map(Row::to_json)));
    finish_runs("table1_placers");
}
