//! Seeded open-loop load generator for the serve daemon.
//!
//! Spins up the real serve loop (`mars_serve::serve`) on an ephemeral
//! loopback listener, primes the placement cache with one cold request
//! per workload, then replays a seeded open-loop schedule across
//! several pipelined connections: a writer thread per connection sends
//! `PlaceRequest`s at pre-drawn exponential inter-arrival times while a
//! reader thread collects responses. Latency is measured against the
//! *scheduled* send time, so server-side queueing shows up in the tail
//! instead of silently stretching the schedule (the open-loop
//! property).
//!
//! Reports throughput and p50/p99 latency. The measured run writes
//! `BENCH_serve.json` at the repo root (the baseline `mars-cli
//! bench-gate --serve` compares against); `--smoke` replays a short
//! schedule at the same offered rate and writes
//! `target/experiments/BENCH_serve_smoke.json` so CI can diff a fresh
//! run against the committed baseline.
//!
//! Every response is checked byte-for-byte against the cold-path
//! reference from the priming phase: hot answers must be identical to
//! the inference that produced them.

use mars_bench::harness::{write_baseline, BenchOpts, Sample};
use mars_core::{Agent, AgentKind, MarsConfig};
use mars_graph::features::FEATURE_DIM;
use mars_json::Json;
use mars_net::msg::{Msg, PROTOCOL_VERSION};
use mars_net::transport::{recv_msg, send_msg, Addr, Conn, Listener};
use mars_rng::rngs::StdRng;
use mars_rng::{Rng, SeedableRng};
use mars_serve::{serve, PlacementEngine, ServeOptions};
use mars_sim::Cluster;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 42;
/// Pipelined client connections (concurrent request handling).
const CONNS: usize = 4;
/// Request mix, drawn uniformly per request from the seeded schedule.
const WORKLOADS: [&str; 3] = ["seq2seq", "vgg16", "inception_v3"];
const PROFILE: &str = "reduced";
const TOP_K: usize = 5;
/// Mean inter-arrival per connection (exponential). Four connections
/// at 2 ms each offer ~2k req/s aggregate — comfortably under serve
/// capacity even on a single-core CI box, so the reported latency is
/// steady-state service time rather than a standing queue.
const MEAN_GAP: Duration = Duration::from_micros(2_000);

/// One scheduled request: offset from the epoch plus a workload index.
#[derive(Clone, Copy)]
struct Slot {
    at: Duration,
    workload: usize,
}

fn engine(seed: u64) -> PlacementEngine {
    // Small dims: the bench measures the serving fast path (cache +
    // framing), not encoder throughput — that's BENCH_e2e's job.
    let mut cfg = MarsConfig::small();
    cfg.encoder_hidden = 16;
    cfg.placer_hidden = 16;
    cfg.attn_dim = 8;
    cfg.segment_size = 16;
    cfg.num_groups = 4;
    cfg.dgi_iters = 10;
    let mut rng = StdRng::seed_from_u64(seed);
    let num_devices = Cluster::p100_quad().num_devices();
    let agent = Agent::new(AgentKind::Mars, cfg, FEATURE_DIM, num_devices, &mut rng);
    PlacementEngine::new(agent, num_devices, 64)
}

fn request(unit: u64, workload: usize) -> Msg {
    Msg::PlaceRequest {
        unit,
        workload: WORKLOADS[workload].into(),
        profile: PROFILE.into(),
        cluster: Cluster::p100_quad(),
        top_k: TOP_K,
    }
}

fn handshake(conn: &mut Conn) {
    send_msg(conn, &Msg::Hello { version: PROTOCOL_VERSION }).expect("hello");
    assert_eq!(
        recv_msg(conn).expect("hello back"),
        Some(Msg::Hello { version: PROTOCOL_VERSION }),
        "serve handshake failed"
    );
}

/// Draw a per-connection schedule of exponential inter-arrival gaps.
fn schedule(rng: &mut StdRng, requests: usize) -> Vec<Slot> {
    let mut at = Duration::ZERO;
    (0..requests)
        .map(|_| {
            let u: f64 = rng.gen::<f64>();
            let gap = -MEAN_GAP.as_secs_f64() * (1.0 - u).ln();
            at += Duration::from_secs_f64(gap);
            Slot { at, workload: rng.gen_range(0..WORKLOADS.len()) }
        })
        .collect()
}

/// Sleep-then-yield until `deadline` past `t0`. Never busy-spins: on a
/// single-core runner a spinning writer starves the very server thread
/// it is waiting on, which would show up as fake queueing delay.
fn pace(t0: Instant, deadline: Duration) {
    loop {
        let now = t0.elapsed();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > Duration::from_micros(200) {
            std::thread::sleep(left - Duration::from_micros(100));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Run one pipelined connection: a writer thread paces the schedule
/// while this thread reads responses. Returns, per request, the
/// workload index, the open-loop latency (receive time minus scheduled
/// send time), and the receive offset (for the throughput span).
fn run_client(
    mut conn: Conn,
    t0: Instant,
    sched: Arc<Vec<Slot>>,
    reference: Arc<Vec<Vec<Vec<usize>>>>,
) -> Vec<(usize, Duration, Duration)> {
    let mut writer = conn.try_clone().expect("clone conn");
    let wsched = Arc::clone(&sched);
    let writer = std::thread::spawn(move || {
        for (unit, slot) in wsched.iter().enumerate() {
            pace(t0, slot.at);
            send_msg(&mut writer, &request(unit as u64, slot.workload)).expect("send");
        }
    });

    let mut out = Vec::with_capacity(sched.len());
    for _ in 0..sched.len() {
        match recv_msg(&mut conn).expect("recv").expect("response") {
            Msg::PlaceResponse { unit, ranking, .. } => {
                let recv_at = t0.elapsed();
                let slot = sched[unit as usize];
                assert_eq!(
                    ranking, reference[slot.workload],
                    "cached response diverged from the cold-path reference"
                );
                out.push((slot.workload, recv_at.saturating_sub(slot.at), recv_at));
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    writer.join().expect("writer join");
    out
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.install_telemetry();
    let requests_per_conn = if opts.smoke { 8 } else { 500 };
    let n_total = requests_per_conn * CONNS;

    let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".into())).expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server =
        std::thread::spawn(move || serve(&listener, engine(SEED), ServeOptions::default()));

    // Priming: one sequential cold request per workload. The responses
    // are the byte-identity reference every load-phase response is
    // checked against.
    let mut prime = Conn::connect(&addr).expect("connect");
    handshake(&mut prime);
    let mut reference = Vec::with_capacity(WORKLOADS.len());
    for (i, _) in WORKLOADS.iter().enumerate() {
        send_msg(&mut prime, &request(1_000 + i as u64, i)).expect("send");
        match recv_msg(&mut prime).expect("recv").expect("response") {
            Msg::PlaceResponse { ranking, .. } => reference.push(ranking),
            other => panic!("unexpected priming response: {other:?}"),
        }
    }
    drop(prime);
    let reference = Arc::new(reference);

    // Seeded schedules, then connect every client before starting the
    // clock so connection setup never pollutes the measurement.
    let mut rng = StdRng::seed_from_u64(SEED);
    let scheds: Vec<Arc<Vec<Slot>>> =
        (0..CONNS).map(|_| Arc::new(schedule(&mut rng, requests_per_conn))).collect();
    let mut conns = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        let mut conn = Conn::connect(&addr).expect("connect");
        handshake(&mut conn);
        conns.push(conn);
    }

    let t0 = Instant::now();
    let clients: Vec<_> = conns
        .into_iter()
        .zip(&scheds)
        .map(|(conn, sched)| {
            let sched = Arc::clone(sched);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || run_client(conn, t0, sched, reference))
        })
        .collect();
    let results: Vec<_> =
        clients.into_iter().flat_map(|c| c.join().expect("client join")).collect();

    let mut conn = Conn::connect(&addr).expect("connect");
    handshake(&mut conn);
    send_msg(&mut conn, &Msg::Shutdown).expect("send shutdown");
    assert_eq!(recv_msg(&mut conn).expect("ack"), Some(Msg::Shutdown));
    drop(conn);
    let stats = server.join().expect("server join");
    assert_eq!(stats.requests as usize, n_total + WORKLOADS.len());
    assert_eq!(stats.engine.miss as usize, WORKLOADS.len(), "only priming goes cold");

    let span = results.iter().map(|&(_, _, recv_at)| recv_at).max().expect("responses");
    let mut lat: Vec<Duration> = results.iter().map(|&(_, l, _)| l).collect();
    lat.sort_unstable();
    let p50 = percentile(&lat, 50);
    let p99 = percentile(&lat, 99);
    let mean = lat.iter().sum::<Duration>() / lat.len() as u32;
    let throughput = n_total as f64 / span.as_secs_f64();
    let offered = CONNS as f64 / MEAN_GAP.as_secs_f64();

    println!(
        "serve/open_loop: {n_total} requests over {CONNS} conns in {:.1} ms",
        span.as_secs_f64() * 1e3
    );
    println!(
        "  throughput {throughput:>9.0} req/s (offered {offered:.0})   p50 {:>8.1} µs   p99 {:>8.1} µs",
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6
    );
    println!(
        "  tiers: hot {} warm {} cold {}",
        stats.engine.hot, stats.engine.warm, stats.engine.miss
    );

    let sample = Sample {
        name: "serve/request_latency".into(),
        iters: n_total as u32,
        median: p50,
        mean,
        p10: percentile(&lat, 10),
        p90: percentile(&lat, 90),
    };
    let extra = [
        ("throughput_rps", Json::from(throughput)),
        ("offered_rps", Json::from(offered)),
        ("p50_ns", Json::from(p50.as_nanos() as f64)),
        ("p99_ns", Json::from(p99.as_nanos() as f64)),
        ("requests", Json::from(n_total as f64)),
        ("connections", Json::from(CONNS as f64)),
        ("seed", Json::from(SEED as f64)),
    ];
    if opts.smoke {
        // Same offered rate as the measured run, fewer requests: the
        // numbers stay comparable to the committed baseline, which is
        // what `bench-gate --serve` diffs in CI.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        let _ = std::fs::create_dir_all(&dir);
        let mut fields: Vec<(&str, Json)> = vec![("benchmarks", Json::arr([sample.to_json()]))];
        fields.extend(extra.iter().cloned());
        let path = dir.join("BENCH_serve_smoke.json");
        std::fs::write(&path, format!("{}\n", Json::obj(fields))).expect("write smoke baseline");
        println!("(smoke baseline written to target/experiments/BENCH_serve_smoke.json)");
    } else {
        write_baseline("BENCH_serve.json", &[sample], &extra);
    }
    opts.finish();
}
