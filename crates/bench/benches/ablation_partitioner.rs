//! Ablation: classical min-cut graph partitioning vs. the RL agent
//! (§2: cost-model-driven solvers like Scotch "fail to achieve
//! satisfactory results").
//!
//! The partitioner optimizes cut bytes + compute balance — a proxy
//! that ignores scheduling/pipelining — while Mars optimizes measured
//! step time directly.

use mars_bench::{
    bench_label, cell, measure_placement, print_table, run_agent_multi, save_json, ExpConfig,
    BENCHMARKS,
};
use mars_core::agent::AgentKind;
use mars_core::partitioner::best_min_cut;
use mars_json::Json;
use mars_sim::Cluster;

struct Row {
    workload: String,
    min_cut_s: String,
    mars_s: String,
    cut_bytes_mb: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(&self.workload)),
            ("min_cut_s", Json::from(&self.min_cut_s)),
            ("mars_s", Json::from(&self.mars_s)),
            ("cut_bytes_mb", Json::from(self.cut_bytes_mb)),
        ])
    }
}
fn main() {
    let cfg = ExpConfig::from_env();
    println!(
        "Partitioner ablation — profile {:?}, budget {}, {} seeds",
        cfg.profile, cfg.budget, cfg.seeds
    );

    let cluster = Cluster::p100_quad();
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (wi, w) in BENCHMARKS.iter().copied().enumerate() {
        let graph = w.build(cfg.profile);
        let (cut_cell, cut_mb) = match best_min_cut(&graph, &cluster) {
            Some(p) => {
                let out = measure_placement(&cfg, w, &p, 6000 + wi as u64);
                (cell(&out), p.cut_bytes(&graph) as f64 / (1 << 20) as f64)
            }
            None => ("infeasible".to_string(), 0.0),
        };
        let mars = run_agent_multi(&cfg, AgentKind::Mars, w, true, cfg.budget, 6100 + wi as u64);
        let mars_cell = mars.mean_best.map(|b| format!("{b:.3}")).unwrap_or_else(|| "-".into());
        println!(
            "  {:<14} min-cut {} ({:.0} MB cut)  Mars {}",
            bench_label(w),
            cut_cell,
            cut_mb,
            mars_cell
        );
        table.push(vec![bench_label(w).to_string(), cut_cell.clone(), mars_cell.clone()]);
        rows.push(Row {
            workload: bench_label(w).to_string(),
            min_cut_s: cut_cell,
            mars_s: mars_cell,
            cut_bytes_mb: cut_mb,
        });
    }
    print_table(
        "Ablation: min-cut partitioner vs Mars (per-step s)",
        &["Workload", "Min-cut partitioner", "Mars"],
        &table,
    );
    save_json("ablation_partitioner", &Json::arr(rows.iter().map(Row::to_json)));
}
