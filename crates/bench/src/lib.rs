#![warn(missing_docs)]
//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Every bench target (`cargo bench -p mars-bench --bench <name>`)
//! prints the paper's table layout with our measured values and writes
//! a JSON record under `target/experiments/` for EXPERIMENTS.md.
//!
//! Two run profiles, selected by `MARS_PROFILE`:
//! * default (*small*) — reduced graph/width profile; minutes on a
//!   CPU-only box.
//! * `MARS_PROFILE=full` — paper-scale graphs and widths (much slower).

use mars_core::agent::{Agent, AgentKind, TrainingLog};
use mars_core::config::MarsConfig;
use mars_core::workload_input::WorkloadInput;
use mars_graph::features::FEATURE_DIM;
use mars_graph::generators::{Profile, Workload};
use mars_sim::{Cluster, Environment, EvalOutcome, Placement, SimEnv};
pub mod harness;

use mars_json::Json;
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use std::io::Write;
use std::path::PathBuf;

/// Experiment-wide settings.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Graph granularity.
    pub profile: Profile,
    /// Agent hyper-parameters.
    pub mars: MarsConfig,
    /// Placement-evaluation budget per (agent, workload) run.
    pub budget: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent seeds averaged per table cell.
    pub seeds: usize,
}

impl ExpConfig {
    /// Resolve from `MARS_PROFILE` / `MARS_BUDGET` / `MARS_SEED` /
    /// `MARS_SEED_COUNT`.
    pub fn from_env() -> Self {
        let full = matches!(std::env::var("MARS_PROFILE").as_deref(), Ok("full") | Ok("paper"));
        let budget = std::env::var("MARS_BUDGET")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(if full { 2000 } else { 600 });
        let seed = std::env::var("MARS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
        let seeds = std::env::var("MARS_SEED_COUNT").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
        ExpConfig {
            profile: if full { Profile::Paper } else { Profile::Reduced },
            mars: if full { MarsConfig::paper() } else { MarsConfig::small() },
            budget,
            seed,
            seeds,
        }
    }
}

/// Aggregate of several seeds of the same (agent, workload) run.
pub struct MultiRunResult {
    /// Per-seed best per-step times (None = no valid placement found).
    pub bests: Vec<Option<f64>>,
    /// Mean of the per-seed bests (None if no seed found a placement).
    pub mean_best: Option<f64>,
    /// Per-seed training logs.
    pub logs: Vec<TrainingLog>,
}

/// Run `cfg.seeds` independent trainings and aggregate.
pub fn run_agent_multi(
    cfg: &ExpConfig,
    kind: AgentKind,
    workload: Workload,
    pretrain: bool,
    budget: usize,
    seed_offset: u64,
) -> MultiRunResult {
    let mut bests = Vec::new();
    let mut logs = Vec::new();
    for s in 0..cfg.seeds {
        let r = run_agent(cfg, kind, workload, pretrain, budget, seed_offset + (s as u64) * 7919);
        bests.push(r.log.best_reading_s);
        logs.push(r.log);
    }
    let found: Vec<f64> = bests.iter().flatten().copied().collect();
    let mean_best = (!found.is_empty()).then(|| found.iter().sum::<f64>() / found.len() as f64);
    MultiRunResult { bests, mean_best, logs }
}

/// One trained-agent result.
pub struct RunResult {
    /// Training trace.
    pub log: TrainingLog,
    /// The trained agent (for generalization / inspection).
    pub agent: Agent,
    /// Pre-training report losses, if pre-training ran.
    pub pretrain_losses: Option<Vec<f32>>,
}

/// Train an agent of `kind` on `workload` for `budget` evaluations.
///
/// `pretrain = true` runs DGI first (only meaningful for GCN agents).
pub fn run_agent(
    cfg: &ExpConfig,
    kind: AgentKind,
    workload: Workload,
    pretrain: bool,
    budget: usize,
    seed_offset: u64,
) -> RunResult {
    let graph = workload.build(cfg.profile);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ seed_offset);
    let mut agent =
        Agent::new(kind, cfg.mars.clone(), FEATURE_DIM, cluster.num_devices(), &mut rng);

    let mut log = TrainingLog::default();
    let mut pretrain_losses = None;
    if pretrain {
        let t0 = std::time::Instant::now();
        if let Some(report) = agent.pretrain(&input, &mut rng) {
            log.pretrain_wall_s = t0.elapsed().as_secs_f64();
            pretrain_losses = Some(report.losses);
        }
    }
    if let AgentKind::FixedEncoder(_) = kind {
        agent.freeze_encoder(&input);
    }

    let mut env = SimEnv::new(graph, cluster, cfg.seed ^ seed_offset ^ 0xE11);
    env.set_eval_threads(cfg.mars.eval_threads);
    env.set_cache_enabled(cfg.mars.eval_cache);
    agent.train(&mut env, &input, budget, &mut rng, &mut log);
    RunResult { log, agent, pretrain_losses }
}

/// Evaluate a fixed placement under the measurement protocol.
pub fn measure_placement(
    cfg: &ExpConfig,
    workload: Workload,
    placement: &Placement,
    seed_offset: u64,
) -> EvalOutcome {
    let graph = workload.build(cfg.profile);
    let cluster = Cluster::p100_quad();
    let mut env = SimEnv::new(graph, cluster, cfg.seed ^ seed_offset);
    env.evaluate(placement)
}

/// Format a table cell: seconds or "OOM".
pub fn cell(v: &EvalOutcome) -> String {
    match v {
        EvalOutcome::Valid { per_step_s } => format!("{per_step_s:.3}"),
        EvalOutcome::Bad { .. } => "bad".into(),
        EvalOutcome::Invalid { .. } => "OOM".into(),
        EvalOutcome::TransientError { .. } => "fault".into(),
        EvalOutcome::Straggler { .. } => "straggler".into(),
    }
}

/// Format an optional seconds value.
pub fn cell_opt(v: Option<f64>) -> String {
    match v {
        Some(s) => format!("{s:.3}"),
        None => "OOM".into(),
    }
}

/// Print a markdown-style table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Install a telemetry JSONL recorder when `MARS_TELEMETRY=<path>` is
/// set. Call [`finish_runs`] at the end of the bench to flush it.
pub fn telemetry_from_env() -> bool {
    match std::env::var("MARS_TELEMETRY") {
        Ok(path) if !path.is_empty() => match mars_telemetry::install_file(&path) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("cannot open telemetry sink '{path}': {e}");
                false
            }
        },
        _ => false,
    }
}

/// Record one aggregated (agent, workload) training run in telemetry —
/// the structured replacement for the old per-run stderr lines. Bumps
/// the `bench.runs` / `bench.runs_no_valid` counters and, when a
/// recorder is active, emits a `bench.run` event carrying the per-seed
/// bests.
pub fn note_run(label: &str, workload: Workload, r: &MultiRunResult) {
    mars_telemetry::counter("bench.runs").inc();
    if r.mean_best.is_none() {
        mars_telemetry::counter("bench.runs_no_valid").inc();
    }
    if mars_telemetry::active() {
        mars_telemetry::event(
            "bench.run",
            &[
                ("agent", label.into()),
                ("workload", workload.name().into()),
                ("mean_best_s", r.mean_best.unwrap_or(f64::NAN).into()),
                ("seeds", (r.bests.len() as f64).into()),
                ("seeds_valid", (r.bests.iter().filter(|b| b.is_some()).count() as f64).into()),
            ],
        );
    }
}

/// Print the single end-of-bench summary line for the runs noted via
/// [`note_run`] and flush the env-installed recorder, if any.
pub fn finish_runs(table: &str) {
    let runs = mars_telemetry::counter("bench.runs").get();
    let no_valid = mars_telemetry::counter("bench.runs_no_valid").get();
    eprintln!("{table}: {runs} training runs, {no_valid} found no valid placement");
    if mars_telemetry::uninstall() {
        if let Ok(path) = std::env::var("MARS_TELEMETRY") {
            println!("(telemetry written to {path})");
        }
    }
}

/// Persist an experiment record as JSON under `target/experiments/`.
pub fn save_json(name: &str, value: &Json) {
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(value.pretty().as_bytes());
        println!("(wrote {})", path.display());
    }
}

/// The three benchmark workloads of §4.1, in table order.
pub const BENCHMARKS: [Workload; 3] = [Workload::InceptionV3, Workload::Gnmt4, Workload::BertBase];

/// Paper row label per benchmark.
pub fn bench_label(w: Workload) -> &'static str {
    match w {
        Workload::InceptionV3 => "Inception-V3",
        Workload::Gnmt4 => "GNMT-4",
        Workload::BertBase => "BERT",
        Workload::Vgg16 => "VGG16",
        Workload::Seq2Seq => "Seq2seq",
        Workload::Transformer => "Transformer",
        Workload::Resnet50 => "ResNet-50",
        Workload::Gpt2Small => "GPT-2 Small",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_sim::OomError;

    #[test]
    fn cells_format_outcomes() {
        assert_eq!(cell(&EvalOutcome::Valid { per_step_s: 1.2345 }), "1.234");
        assert_eq!(cell(&EvalOutcome::Bad { cutoff_s: 20.0 }), "bad");
        let oom = OomError { device: 1, required_bytes: 1, capacity_bytes: 0 };
        assert_eq!(cell(&EvalOutcome::Invalid { oom }), "OOM");
        assert_eq!(cell_opt(Some(0.5)), "0.500");
        assert_eq!(cell_opt(None), "OOM");
    }

    #[test]
    fn bench_labels_cover_all_workloads() {
        for w in Workload::ALL {
            assert!(!bench_label(w).is_empty());
        }
        assert_eq!(bench_label(Workload::BertBase), "BERT");
    }

    #[test]
    fn multi_run_aggregates_means() {
        let mut cfg = ExpConfig::from_env();
        cfg.seeds = 2;
        cfg.mars.encoder_hidden = 16;
        cfg.mars.placer_hidden = 16;
        cfg.mars.attn_dim = 8;
        cfg.mars.segment_size = 16;
        cfg.mars.dgi_iters = 5;
        let r = run_agent_multi(
            &cfg,
            mars_core::agent::AgentKind::MarsNoPretrain,
            Workload::InceptionV3,
            false,
            40,
            12345,
        );
        assert_eq!(r.bests.len(), 2);
        assert_eq!(r.logs.len(), 2);
        let found: Vec<f64> = r.bests.iter().flatten().copied().collect();
        if !found.is_empty() {
            let mean = found.iter().sum::<f64>() / found.len() as f64;
            assert!((r.mean_best.unwrap() - mean).abs() < 1e-12);
        } else {
            assert!(r.mean_best.is_none());
        }
    }
}
