//! Plain timing harness for the kernel microbenchmarks (the
//! workspace's `criterion` replacement).
//!
//! Keeps the parts we actually used: warm-up, many timed samples,
//! median/mean reporting, and a grouped naming scheme. Run via
//! `cargo bench -p mars-bench --bench kernels`; pass `--smoke` for a
//! single-iteration correctness pass (used by `scripts/verify.sh`).

use mars_json::Json;
use std::io::Write;
use std::time::{Duration, Instant};

/// Parsed command-line options for a bench binary.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// One iteration per benchmark, no statistics: proves the bench
    /// code runs without paying measurement time.
    pub smoke: bool,
    /// Substring filter over benchmark names (first free argument).
    pub filter: Option<String>,
    /// Record a telemetry JSONL capture to this path (`--telemetry`).
    pub telemetry: Option<String>,
}

impl BenchOpts {
    /// Parse `std::env::args`, ignoring harness flags cargo forwards
    /// (e.g. `--bench`).
    pub fn from_args() -> Self {
        let mut smoke = false;
        let mut filter = None;
        let mut telemetry = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => smoke = true,
                "--telemetry" => telemetry = args.next(),
                "--bench" | "--test" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        BenchOpts { smoke, filter, telemetry }
    }

    /// Install the file recorder when `--telemetry <path>` was given.
    /// Call [`BenchOpts::finish`] at the end of the bench to flush it.
    pub fn install_telemetry(&self) {
        if let Some(path) = &self.telemetry {
            if let Err(e) = mars_telemetry::install_file(path) {
                eprintln!("cannot open telemetry sink '{path}': {e}");
            }
        }
    }

    /// Flush and close the telemetry recorder, if one was installed.
    pub fn finish(&self) {
        if let Some(path) = &self.telemetry {
            if mars_telemetry::uninstall() {
                println!("(telemetry written to {path})");
            }
        }
    }

    /// Whether `name` passes the filter.
    pub fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// Timing summary of one benchmark.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// 10th-percentile per-iteration time.
    pub p10: Duration,
    /// 90th-percentile per-iteration time.
    pub p90: Duration,
}

impl Sample {
    /// JSON record for the machine-readable sample log.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.as_str().into()),
            ("iters", (self.iters as f64).into()),
            ("median_ns", (self.median.as_nanos() as f64).into()),
            ("mean_ns", (self.mean.as_nanos() as f64).into()),
            ("p10_ns", (self.p10.as_nanos() as f64).into()),
            ("p90_ns", (self.p90.as_nanos() as f64).into()),
        ])
    }
}

/// Write a `BENCH_*.json` perf baseline at the repository root: one
/// record per benchmark (median + p10/p90 nanoseconds), plus optional
/// free-form `extra` fields (e.g. an end-to-end speedup factor). These
/// files are the trajectory future PRs compare against; `basename`
/// must be the bare file name, e.g. `"BENCH_kernels.json"`.
pub fn write_baseline(basename: &str, samples: &[Sample], extra: &[(&str, Json)]) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut fields: Vec<(&str, Json)> =
        vec![("benchmarks", Json::arr(samples.iter().map(Sample::to_json)))];
    fields.extend(extra.iter().cloned());
    let path = root.join(basename);
    match std::fs::write(&path, format!("{}\n", Json::obj(fields))) {
        Ok(()) => println!("(baseline written to {basename})"),
        Err(e) => eprintln!("cannot write '{}': {e}", path.display()),
    }
}

/// Append one sample to `target/experiments/bench_samples.jsonl` so
/// runs accumulate a machine-readable history next to the table JSON.
fn append_sample_jsonl(sample: &Sample) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    if let Ok(mut f) =
        std::fs::OpenOptions::new().create(true).append(true).open(dir.join("bench_samples.jsonl"))
    {
        let _ = writeln!(f, "{}", sample.to_json());
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Time `f`, printing a one-line summary. In smoke mode runs a single
/// iteration. Returns `None` when filtered out or in smoke mode.
pub fn bench<F: FnMut()>(opts: &BenchOpts, name: &str, mut f: F) -> Option<Sample> {
    if !opts.selected(name) {
        return None;
    }
    if opts.smoke {
        let t0 = Instant::now();
        f();
        println!("{name:<44} smoke ok ({})", fmt_duration(t0.elapsed()));
        return None;
    }

    // Warm-up for ~300 ms, measuring a rough per-iter cost.
    let warmup = Duration::from_millis(300);
    let t0 = Instant::now();
    let mut warm_iters = 0u32;
    while t0.elapsed() < warmup {
        f();
        warm_iters += 1;
    }
    let rough = t0.elapsed() / warm_iters.max(1);

    // Aim for ~2 s of measurement across up to 60 samples.
    let target = Duration::from_secs(2);
    let iters = ((target.as_nanos() / rough.as_nanos().max(1)) as u32).clamp(5, 10_000);
    let mut times: Vec<Duration> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / iters;
    let p10 = times[times.len() / 10];
    let p90 = times[(times.len() * 9 / 10).min(times.len() - 1)];
    println!(
        "{name:<44} median {:>12}   mean {:>12}   ({iters} iters)",
        fmt_duration(median),
        fmt_duration(mean)
    );
    let sample = Sample { name: name.to_string(), iters, median, mean, p10, p90 };
    append_sample_jsonl(&sample);
    Some(sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let opts = BenchOpts { smoke: true, filter: None, telemetry: None };
        let mut count = 0;
        let r = bench(&opts, "noop", || count += 1);
        assert!(r.is_none());
        assert_eq!(count, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let opts = BenchOpts { smoke: true, filter: Some("matmul".into()), telemetry: None };
        let mut ran = false;
        bench(&opts, "simulate_step", || ran = true);
        assert!(!ran);
        assert!(opts.selected("matmul/128"));
    }

    #[test]
    fn measured_mode_reports_stats() {
        let opts = BenchOpts { smoke: false, filter: None, telemetry: None };
        // A cheap body: the harness clamps iteration counts, so this
        // stays fast even with the 300 ms warm-up.
        let sample = bench(&opts, "spin", || {
            std::hint::black_box(2u64.pow(10));
        })
        .expect("sample");
        assert!(sample.iters >= 5);
        assert!(sample.median <= sample.mean * 10);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(50)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).ends_with(" s"));
    }
}
