//! Matrix-multiplication kernels.
//!
//! The hot loops of Mars are `X·W` products in the GCN/LSTM layers and
//! their gradient counterparts `Aᵀ·B` / `A·Bᵀ`. We provide all three
//! transpose variants as dedicated kernels so the autograd backward
//! pass never has to materialize a transposed copy.
//!
//! Each kernel uses a cache-friendly i-k-j loop order and switches to a
//! row partition parallelized on the in-repo thread pool
//! ([`crate::pool`]) once the output is large enough for the fork/join
//! overhead to pay off. Large products additionally take a blocked
//! (GEBP-style) path: `B` is packed into contiguous column panels of
//! [`PANEL_W`] floats that stay resident in cache while a block of
//! [`BLOCK_ROWS`] output rows is swept, and `matmul_tn` packs `Aᵀ` so
//! the backward hot path reads both operands contiguously.
//!
//! **Bit-exactness contract.** Every tiled/packed path performs, for
//! each output element, the *same sequence of f32 operations* as the
//! naive kernel: accumulation strictly ascends over the contraction
//! index and the `a == 0.0` skip is preserved. Tiling here reorders
//! only *which element* is updated next, never the order of adds within
//! an element, so packed results are bit-identical to the naive loops
//! (asserted by the `*_bit_identical_*` tests below) and the numerics
//! tests keep exact equality rather than relaxing to epsilon bounds.
//!
//! The row-sweep inner loops route through [`crate::simd::axpy`], which
//! vectorizes across output columns (lanes = different elements) with
//! two-rounding `mul` + `add` — bit-identical to the scalar loop on
//! every backend, so the contract holds under SIMD dispatch too (see
//! `crates/tensor/tests/simd_parity.rs`).

use crate::simd::{self, AlignedBuf};
use crate::{pool, Matrix};
use std::sync::Arc;

/// Minimum number of multiply-accumulate operations before a kernel
/// parallelizes across rows. Below this the sequential loop wins.
const PAR_FLOP_THRESHOLD: usize = 64 * 64 * 64;

/// Width (in f32 columns) of one packed `B` panel: 64 floats = 256
/// bytes = 4 cache lines per packed row.
const PANEL_W: usize = 64;

/// Output rows swept per parallel task in the blocked path; one block
/// reuses each resident packed panel `BLOCK_ROWS` times.
const BLOCK_ROWS: usize = 32;

/// Minimum `m` before packing `B` pays for its `O(k·n)` copy: the pack
/// is amortized over `m` row sweeps, so single-row products (LSTM
/// steps) stay on the unpacked path.
const PACK_MIN_ROWS: usize = 8;

#[inline]
fn inner_nn(out_row: &mut [f32], a_row: &[f32], b: &Matrix) {
    // out_row += a_row · B, with k-outer loop so B is streamed
    // row-wise; the sweep keeps the output accumulators in registers
    // across k on SIMD backends.
    simd::strided_sweep(out_row, a_row, b.as_slice(), b.cols());
}

/// `B` repacked into contiguous column panels: panel `p` holds columns
/// `p·PANEL_W .. min((p+1)·PANEL_W, n)` as `k` consecutive rows of the
/// panel's width, so the inner kernel streams both operands linearly.
struct PackedB {
    /// Cache-line aligned panel storage: panel loads never straddle an
    /// extra line regardless of allocator behavior.
    data: AlignedBuf,
    /// Start offset of each panel in `data` (one trailing sentinel).
    offsets: Vec<usize>,
    /// Column range `(j0, width)` of each panel.
    panels: Vec<(usize, usize)>,
}

fn pack_b(b: &Matrix) -> PackedB {
    let (k, n) = b.shape();
    let num_panels = n.div_ceil(PANEL_W);
    let mut data = AlignedBuf::zeroed(k * n);
    let mut offsets = Vec::with_capacity(num_panels + 1);
    let mut panels = Vec::with_capacity(num_panels);
    let mut off = 0;
    for p in 0..num_panels {
        let j0 = p * PANEL_W;
        let w = PANEL_W.min(n - j0);
        offsets.push(off);
        panels.push((j0, w));
        for t in 0..k {
            let src = &b.row(t)[j0..j0 + w];
            data[off + t * w..off + t * w + w].copy_from_slice(src);
        }
        off += k * w;
    }
    offsets.push(off);
    PackedB { data, offsets, panels }
}

/// Blocked row sweep: accumulate `rows` output rows starting at global
/// row `i0` against every packed panel. Per element the adds ascend in
/// `t` with the zero skip, exactly like [`inner_nn`].
fn packed_block(out_blk: &mut [f32], a: &Matrix, bp: &PackedB, i0: usize, n: usize) {
    let rows = out_blk.len() / n;
    for (p, &(j0, w)) in bp.panels.iter().enumerate() {
        let panel = &bp.data[bp.offsets[p]..bp.offsets[p + 1]];
        for r in 0..rows {
            let a_row = a.row(i0 + r);
            let out_seg = &mut out_blk[r * n + j0..r * n + j0 + w];
            simd::strided_sweep(out_seg, a_row, panel, w);
        }
    }
}

/// `C = A · B` where `A: m×k`, `B: k×n`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out);
    out
}

/// `C = A · B` written into a caller-provided `m×n` matrix (zeroed
/// here first) — the allocation-free entry point that [`matmul`]
/// wraps. Identical kernels and per-element op order, so the result is
/// bit-identical to [`matmul`] regardless of what the output buffer
/// previously held; the inference tape's pooled activation buffers
/// route through this.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let _span = mars_telemetry::span("tensor.ops.matmul");
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(out.shape(), (m, n), "matmul_into: out shape {:?} != ({m}, {n})", out.shape());
    out.as_mut_slice().fill(0.0);
    if m * n * k >= PAR_FLOP_THRESHOLD && m >= PACK_MIN_ROWS {
        // Blocked/packed path: pack B once, sweep BLOCK_ROWS-row blocks
        // in parallel with the packed panels shared read-only.
        let bp = pack_b(b);
        pool::par_chunks_mut(out.as_mut_slice(), BLOCK_ROWS * n.max(1), |blk, out_blk| {
            packed_block(out_blk, a, &bp, blk * BLOCK_ROWS, n)
        });
    } else if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
        let cols = n.max(1);
        pool::par_chunks_mut(out.as_mut_slice(), cols, |i, out_row| inner_nn(out_row, a.row(i), b));
    } else {
        for i in 0..m {
            let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            inner_nn(row, a.row(i), b);
        }
    }
}

/// `C = Aᵀ · B` where `A: k×m`, `B: k×n` (result `m×n`).
///
/// This is the gradient-w.r.t.-weights kernel: for `Y = X·W`,
/// `dW = Xᵀ·dY`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    matmul_tn_into(a, b, &mut out);
    out
}

/// `C = Aᵀ · B` written into a caller-provided `m×n` matrix (zeroed
/// here first) — the allocation-free entry point that [`matmul_tn`]
/// wraps, used by the training arena's pooled gradient buffers. Same
/// kernels and per-element op order as [`matmul_tn`].
pub fn matmul_tn_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let _span = mars_telemetry::span("tensor.ops.matmul_tn");
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: leading dimensions differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    assert_eq!(out.shape(), (m, n), "matmul_tn_into: out shape {:?} != ({m}, {n})", out.shape());
    out.as_mut_slice().fill(0.0);
    if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
        // Packed path: transpose A once so each output row reads one
        // contiguous k-slice, then sweep rows in parallel. Per element
        // the adds ascend in t with the zero skip — bit-identical to
        // the rank-1 accumulation below.
        let mut at = AlignedBuf::zeroed(m * k);
        for t in 0..k {
            for (i, &av) in a.row(t).iter().enumerate() {
                at[i * k + t] = av;
            }
        }
        pool::par_chunks_mut(out.as_mut_slice(), n.max(1), |i, out_row| {
            simd::strided_sweep(out_row, &at[i * k..(i + 1) * k], b.as_slice(), n);
        });
        return;
    }
    // Accumulate rank-1 updates; row-major friendly for both inputs.
    for t in 0..k {
        let a_row = a.row(t);
        let b_row = b.row(t);
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            simd::axpy(&mut out.as_mut_slice()[i * n..(i + 1) * n], av, b_row);
        }
    }
}

/// `C = A · Bᵀ` where `A: m×k`, `B: n×k` (result `m×n`).
///
/// This is the gradient-w.r.t.-input kernel: for `Y = X·W`,
/// `dX = dY·Wᵀ`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    matmul_nt_into(a, b, &mut out);
    out
}

/// `C = A · Bᵀ` written into a caller-provided `m×n` matrix — the
/// allocation-free entry point that [`matmul_nt`] wraps, used by the
/// training arena's pooled gradient buffers. Every element is fully
/// overwritten (each dot product assigns, never accumulates into prior
/// contents), so results are independent of what `out` previously held.
pub fn matmul_nt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let _span = mars_telemetry::span("tensor.ops.matmul_nt");
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: trailing dimensions differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    assert_eq!(out.shape(), (m, n), "matmul_nt_into: out shape {:?} != ({m}, {n})", out.shape());
    // Four output columns at a time: a_row stays in registers across
    // four dot products. Each accumulator still ascends in t, so the
    // result is bit-identical to the single-column loop. This kernel
    // stays scalar in the default tier: its contraction runs along the
    // contiguous axis of both operands, so vectorizing would reorder
    // the adds *within* an element (a lane-sum tree), unlike the axpy
    // kernels where lanes are independent output elements.
    let compute_row = |i: usize, out_row: &mut [f32]| {
        let a_row = a.row(i);
        let mut j = 0;
        while j + 4 <= n {
            let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            let (mut c0, mut c1, mut c2, mut c3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for t in 0..k {
                let av = a_row[t];
                c0 += av * b0[t];
                c1 += av * b1[t];
                c2 += av * b2[t];
                c3 += av * b3[t];
            }
            out_row[j] = c0;
            out_row[j + 1] = c1;
            out_row[j + 2] = c2;
            out_row[j + 3] = c3;
            j += 4;
        }
        for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
            let b_row = b.row(jj);
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += a_row[t] * b_row[t];
            }
            *o = acc;
        }
    };
    if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
        pool::par_chunks_mut(out.as_mut_slice(), n.max(1), |i, out_row| compute_row(i, out_row));
    } else {
        for i in 0..m {
            let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            compute_row(i, row);
        }
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Outer product `a · bᵀ` of two vectors (`m×1` result from slices).
pub fn outer(a: &[f32], b: &[f32]) -> Matrix {
    let mut out = Matrix::zeros(a.len(), b.len());
    for (i, &av) in a.iter().enumerate() {
        for (j, &bv) in b.iter().enumerate() {
            out.set(i, j, av * bv);
        }
    }
    out
}

/// Sparse matrix in compressed-sparse-row form.
///
/// Used for the (constant) normalized adjacency matrix of computational
/// graphs: `spmm` implements `Â · X` without densifying `Â`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array, length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, length nnz.
    indices: Vec<usize>,
    /// Non-zero values, length nnz.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from (row, col, value) triplets. Duplicate entries are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f32)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of {rows}x{cols}");
            per_row[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(c, _)| c);
            let mut last: Option<usize> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    *values.last_mut().expect("non-empty") += v;
                } else {
                    indices.push(c);
                    values.push(v);
                    last = Some(c);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix { rows, cols, indptr, indices, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over `(col, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse × dense product `self · x`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_into(x, &mut out);
        out
    }

    /// [`CsrMatrix::spmm`] written into a caller-provided matrix
    /// (zeroed here first) — the allocation-free entry point used by
    /// the training arena's pooled buffers. Same kernels and
    /// per-element op order as [`CsrMatrix::spmm`].
    pub fn spmm_into(&self, x: &Matrix, out: &mut Matrix) {
        let _span = mars_telemetry::span("tensor.ops.spmm");
        assert_eq!(self.cols, x.rows(), "spmm: {}x{} · {:?}", self.rows, self.cols, x.shape());
        let n = x.cols();
        assert_eq!(out.shape(), (self.rows, n), "spmm_into: out shape mismatch");
        out.as_mut_slice().fill(0.0);
        let rows_big = self.nnz() * n >= PAR_FLOP_THRESHOLD;
        let compute = |r: usize, out_row: &mut [f32]| {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            for t in lo..hi {
                simd::axpy(out_row, self.values[t], x.row(self.indices[t]));
            }
        };
        if rows_big && self.rows > 1 {
            pool::par_chunks_mut(out.as_mut_slice(), n.max(1), |r, out_row| compute(r, out_row));
        } else {
            for r in 0..self.rows {
                let row = &mut out.as_mut_slice()[r * n..(r + 1) * n];
                compute(r, row);
            }
        }
    }

    /// Transposed sparse × dense product `selfᵀ · x` (for backprop).
    pub fn spmm_t(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, x.cols());
        self.spmm_t_into(x, &mut out);
        out
    }

    /// [`CsrMatrix::spmm_t`] written into a caller-provided matrix
    /// (zeroed here first) — allocation-free for pooled gradient
    /// buffers, same scatter order as [`CsrMatrix::spmm_t`].
    pub fn spmm_t_into(&self, x: &Matrix, out: &mut Matrix) {
        let _span = mars_telemetry::span("tensor.ops.spmm_t");
        assert_eq!(self.rows, x.rows(), "spmm_t: ({}x{})ᵀ · {:?}", self.rows, self.cols, x.shape());
        let n = x.cols();
        assert_eq!(out.shape(), (self.cols, n), "spmm_t_into: out shape mismatch");
        out.as_mut_slice().fill(0.0);
        for r in 0..self.rows {
            let x_row = x.row(r);
            for (c, v) in self.row_iter(r) {
                simd::axpy(&mut out.as_mut_slice()[c * n..(c + 1) * n], v, x_row);
            }
        }
    }

    /// Densify (for tests and small problems).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c, out.get(r, c) + v);
            }
        }
        out
    }
}

/// `N` sparse adjacencies packed as one block-diagonal CSR operand.
///
/// Block `b` occupies rows `row_offsets[b]..row_offsets[b+1]` and
/// columns `col_offsets[b]..col_offsets[b+1]` of the concatenated
/// matrix; no storage is copied — the blocks stay shared behind their
/// `Arc`s and only the offset tables are materialized. This is the
/// sparse side of corpus-batched GCN encoding: one [`BlockDiagCsr::spmm`]
/// sweep replaces `N` per-graph [`CsrMatrix::spmm`] calls.
///
/// **Bit-exactness.** Each output row belongs to exactly one block and
/// accumulates its non-zeros in the same ascending order (through the
/// same dispatched [`simd::axpy`]) as the per-graph kernel, with column
/// indices shifted by the block's offset. Parallelism only reorders
/// *which row* is computed next, so `spmm`/`spmm_t` here are
/// bit-identical to looping the per-graph kernels over the blocks
/// (pinned by the `blockdiag_*` tests and
/// `crates/tensor/tests/properties.rs`).
#[derive(Clone, Debug)]
pub struct BlockDiagCsr {
    blocks: Vec<Arc<CsrMatrix>>,
    /// Row offset of each block in the concatenated matrix (one
    /// trailing sentinel = total rows).
    row_offsets: Vec<usize>,
    /// Column offset of each block (one trailing sentinel = total cols).
    col_offsets: Vec<usize>,
    /// Block index owning each concatenated row (for the parallel
    /// row sweep).
    row_block: Vec<usize>,
    nnz: usize,
}

impl BlockDiagCsr {
    /// Pack `blocks` along the diagonal. Empty (0-row) blocks are
    /// allowed and contribute nothing.
    pub fn new(blocks: Vec<Arc<CsrMatrix>>) -> Self {
        let mut row_offsets = Vec::with_capacity(blocks.len() + 1);
        let mut col_offsets = Vec::with_capacity(blocks.len() + 1);
        row_offsets.push(0);
        col_offsets.push(0);
        let mut row_block = Vec::new();
        let mut nnz = 0;
        for (bi, b) in blocks.iter().enumerate() {
            nnz += b.nnz();
            row_offsets.push(row_offsets[bi] + b.rows());
            col_offsets.push(col_offsets[bi] + b.cols());
            row_block.extend(std::iter::repeat(bi).take(b.rows()));
        }
        BlockDiagCsr { blocks, row_offsets, col_offsets, row_block, nnz }
    }

    /// Total rows of the concatenated matrix.
    pub fn rows(&self) -> usize {
        *self.row_offsets.last().expect("offsets non-empty")
    }

    /// Total columns of the concatenated matrix.
    pub fn cols(&self) -> usize {
        *self.col_offsets.last().expect("offsets non-empty")
    }

    /// Total stored non-zeros across all blocks.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of packed blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The `b`-th block.
    pub fn block(&self, b: usize) -> &Arc<CsrMatrix> {
        &self.blocks[b]
    }

    /// Row offset of block `b` (index `num_blocks()` gives total rows).
    pub fn row_offset(&self, b: usize) -> usize {
        self.row_offsets[b]
    }

    /// Block-diagonal sparse × dense product `self · x` — the
    /// `spmm_blockdiag` kernel. One sweep over all concatenated rows,
    /// parallelized like [`CsrMatrix::spmm`] once the whole batch is
    /// large enough (so small per-graph products that would each stay
    /// sequential can still fan out across the pool together).
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), x.cols());
        self.spmm_into(x, &mut out);
        out
    }

    /// [`BlockDiagCsr::spmm`] written into a caller-provided matrix
    /// (zeroed here first) for pooled buffers.
    pub fn spmm_into(&self, x: &Matrix, out: &mut Matrix) {
        let _span = mars_telemetry::span("tensor.ops.spmm_blockdiag");
        assert_eq!(
            self.cols(),
            x.rows(),
            "spmm_blockdiag: {}x{} · {:?}",
            self.rows(),
            self.cols(),
            x.shape()
        );
        let n = x.cols();
        assert_eq!(out.shape(), (self.rows(), n), "spmm_blockdiag: out shape mismatch");
        out.as_mut_slice().fill(0.0);
        let compute = |r: usize, out_row: &mut [f32]| {
            let b = self.row_block[r];
            let blk = &self.blocks[b];
            let lr = r - self.row_offsets[b];
            let co = self.col_offsets[b];
            let lo = blk.indptr[lr];
            let hi = blk.indptr[lr + 1];
            for t in lo..hi {
                simd::axpy(out_row, blk.values[t], x.row(co + blk.indices[t]));
            }
        };
        if self.nnz * n >= PAR_FLOP_THRESHOLD && self.rows() > 1 {
            pool::par_chunks_mut(out.as_mut_slice(), n.max(1), |r, out_row| compute(r, out_row));
        } else {
            for r in 0..self.rows() {
                let row = &mut out.as_mut_slice()[r * n..(r + 1) * n];
                compute(r, row);
            }
        }
    }

    /// Transposed block-diagonal product `selfᵀ · x` (backward of
    /// [`BlockDiagCsr::spmm`]). Serial per-block scatter in ascending
    /// block order — exactly the per-graph [`CsrMatrix::spmm_t`] loop
    /// with offset rows, so results are bit-identical to it.
    pub fn spmm_t(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols(), x.cols());
        self.spmm_t_into(x, &mut out);
        out
    }

    /// [`BlockDiagCsr::spmm_t`] written into a caller-provided matrix
    /// (zeroed here first) for pooled buffers.
    pub fn spmm_t_into(&self, x: &Matrix, out: &mut Matrix) {
        let _span = mars_telemetry::span("tensor.ops.spmm_blockdiag_t");
        assert_eq!(
            self.rows(),
            x.rows(),
            "spmm_blockdiag_t: ({}x{})ᵀ · {:?}",
            self.rows(),
            self.cols(),
            x.shape()
        );
        let n = x.cols();
        assert_eq!(out.shape(), (self.cols(), n), "spmm_blockdiag_t: out shape mismatch");
        out.as_mut_slice().fill(0.0);
        for (bi, blk) in self.blocks.iter().enumerate() {
            let ro = self.row_offsets[bi];
            let co = self.col_offsets[bi];
            for r in 0..blk.rows() {
                let x_row = x.row(ro + r);
                for (c, v) in blk.row_iter(r) {
                    let cc = co + c;
                    simd::axpy(&mut out.as_mut_slice()[cc * n..(cc + 1) * n], v, x_row);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for t in 0..a.cols() {
                    acc += a.get(i, t) * b.get(t, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::eye(4);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Matrix::from_fn(5, 7, |r, c| ((r * 7 + c) as f32).sin());
        let b = Matrix::from_fn(7, 3, |r, c| ((r * 3 + c) as f32).cos());
        let c = matmul(&a, &b);
        let c_tn = matmul_tn(&a.transpose(), &b);
        let c_nt = matmul_nt(&a, &b.transpose());
        assert!(c.max_abs_diff(&c_tn) < 1e-5);
        assert!(c.max_abs_diff(&c_nt) < 1e-5);
    }

    #[test]
    fn large_parallel_path_matches_sequential() {
        let a = Matrix::from_fn(70, 70, |r, c| ((r + 2 * c) as f32 * 0.01).sin());
        let b = Matrix::from_fn(70, 70, |r, c| ((3 * r + c) as f32 * 0.02).cos());
        let fast = matmul(&a, &b);
        let slow = seq_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn parallel_path_is_bit_identical_to_sequential_kernel() {
        // 70³ MACs exceed PAR_FLOP_THRESHOLD, so matmul takes the pool
        // path. Per-row arithmetic is the same `inner_nn` either way,
        // so the results must match exactly — not just within tolerance.
        let a = Matrix::from_fn(70, 70, |r, c| ((r + 2 * c) as f32 * 0.01).sin());
        let b = Matrix::from_fn(70, 70, |r, c| ((3 * r + c) as f32 * 0.02).cos());
        const { assert!(70 * 70 * 70 >= PAR_FLOP_THRESHOLD) }
        let fast = matmul(&a, &b);
        let mut seq = Matrix::zeros(70, 70);
        for i in 0..70 {
            inner_nn(&mut seq.as_mut_slice()[i * 70..(i + 1) * 70], a.row(i), &b);
        }
        assert_eq!(fast, seq);
    }

    #[test]
    fn threshold_switch_small_stays_sequential_and_agrees() {
        // Below the cutoff (8³ MACs) matmul uses the plain loop; the
        // same operands pushed through the parallel entry point via a
        // larger embedding must agree exactly on the shared block.
        let a = Matrix::from_fn(8, 8, |r, c| (r * 8 + c) as f32 * 0.5);
        let b = Matrix::from_fn(8, 8, |r, c| ((r + c) as f32).cos());
        const { assert!(8 * 8 * 8 < PAR_FLOP_THRESHOLD) }
        let small = matmul(&a, &b);
        let slow = seq_matmul(&a, &b);
        assert!(small.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn packed_matmul_bit_identical_on_ragged_shapes() {
        // Shapes that hit the packed path with a ragged last panel
        // (n % PANEL_W ≠ 0) and a ragged last row block
        // (m % BLOCK_ROWS ≠ 0). The packed result must equal the naive
        // inner_nn rows bit for bit — same per-element add sequence.
        for (m, k, n) in [(70, 70, 70), (33, 100, 90), (41, 128, 130), (8, 300, 200)] {
            assert!(m * n * k >= PAR_FLOP_THRESHOLD && m >= 8, "({m},{k},{n}) misses path");
            let a = Matrix::from_fn(m, k, |r, c| ((r * 3 + c) as f32 * 0.013).sin());
            let b = Matrix::from_fn(k, n, |r, c| ((r + 5 * c) as f32 * 0.007).cos());
            let fast = matmul(&a, &b);
            let mut seq = Matrix::zeros(m, n);
            for i in 0..m {
                inner_nn(&mut seq.as_mut_slice()[i * n..(i + 1) * n], a.row(i), &b);
            }
            assert_eq!(fast, seq, "({m},{k},{n})");
        }
    }

    #[test]
    fn packed_matmul_preserves_zero_skip_semantics() {
        let mut a = Matrix::from_fn(40, 80, |r, c| ((r + c) as f32 * 0.02).sin());
        for i in 0..40 {
            // Zero out a stripe so the skip branch is exercised.
            let row = &mut a.as_mut_slice()[i * 80..i * 80 + 80];
            row[i..80].iter_mut().step_by(3).for_each(|v| *v = 0.0);
        }
        let b = Matrix::from_fn(80, 96, |r, c| ((2 * r + c) as f32 * 0.011).cos());
        const { assert!(40 * 80 * 96 >= PAR_FLOP_THRESHOLD) }
        let fast = matmul(&a, &b);
        let mut seq = Matrix::zeros(40, 96);
        for i in 0..40 {
            inner_nn(&mut seq.as_mut_slice()[i * 96..(i + 1) * 96], a.row(i), &b);
        }
        assert_eq!(fast, seq);
    }

    #[test]
    fn matmul_tn_packed_bit_identical_to_rank1() {
        // (k, m, n) hitting the packed-Aᵀ path; reference is the serial
        // rank-1 accumulation (the small-size code path).
        let (k, m, n) = (90, 70, 70);
        assert!(m * n * k >= PAR_FLOP_THRESHOLD);
        let a = Matrix::from_fn(k, m, |r, c| ((r * 7 + c) as f32 * 0.017).sin());
        let b = Matrix::from_fn(k, n, |r, c| ((r + 11 * c) as f32 * 0.019).cos());
        let fast = matmul_tn(&a, &b);
        let mut seq = Matrix::zeros(m, n);
        for t in 0..k {
            let a_row = a.row(t);
            let b_row = b.row(t);
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut seq.as_mut_slice()[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        assert_eq!(fast, seq);
    }

    #[test]
    fn matmul_nt_column_blocking_bit_identical() {
        // n not a multiple of 4 exercises the remainder loop; compare
        // against the plain one-column-at-a-time dot products.
        let (m, k, n) = (70, 80, 67);
        assert!(m * n * k >= PAR_FLOP_THRESHOLD);
        let a = Matrix::from_fn(m, k, |r, c| ((r + 2 * c) as f32 * 0.01).sin());
        let b = Matrix::from_fn(n, k, |r, c| ((3 * r + c) as f32 * 0.02).cos());
        let fast = matmul_nt(&a, &b);
        let mut seq = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for t in 0..k {
                    acc += a.row(i)[t] * b.row(j)[t];
                }
                seq.set(i, j, acc);
            }
        }
        assert_eq!(fast, seq);
    }

    #[test]
    fn dot_and_outer() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        let o = outer(&[1., 2.], &[3., 4., 5.]);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o.row(1), &[6., 8., 10.]);
    }

    #[test]
    fn csr_roundtrip_and_spmm() {
        let triplets = [(0usize, 1usize, 2.0f32), (1, 0, 3.0), (1, 2, 4.0), (2, 2, 5.0)];
        let a = CsrMatrix::from_triplets(3, 3, &triplets);
        assert_eq!(a.nnz(), 4);
        let x = Matrix::from_vec(3, 2, vec![1., 10., 2., 20., 3., 30.]);
        let y = a.spmm(&x);
        let y_dense = matmul(&a.to_dense(), &x);
        assert!(y.max_abs_diff(&y_dense) < 1e-6);
        let yt = a.spmm_t(&x);
        let yt_dense = matmul(&a.to_dense().transpose(), &x);
        assert!(yt.max_abs_diff(&yt_dense) < 1e-6);
    }

    #[test]
    fn csr_duplicate_triplets_sum() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.to_dense().get(0, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }

    /// A pseudo-random sparse square adjacency with self-loops, sized
    /// to mimic normalized workload graphs.
    fn rand_adj(n: usize, seed: usize) -> Arc<CsrMatrix> {
        let mut triplets = Vec::new();
        for r in 0..n {
            triplets.push((r, r, 0.5));
            for c in 0..n {
                if (r * 31 + c * 17 + seed * 7) % 5 == 0 && r != c {
                    triplets.push((r, c, ((r + c + seed) as f32 * 0.07).sin()));
                }
            }
        }
        Arc::new(CsrMatrix::from_triplets(n, n, &triplets))
    }

    fn rand_feats(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * 13 + c * 5 + seed) as f32 * 0.011).sin())
    }

    /// Vertically concatenate per-block feature matrices.
    fn vcat_all(parts: &[Matrix]) -> Matrix {
        let mut it = parts.iter();
        let mut acc = it.next().expect("non-empty").clone();
        for p in it {
            acc = acc.vcat(p);
        }
        acc
    }

    #[test]
    fn blockdiag_spmm_bit_identical_to_per_graph_loop() {
        // Mixed block sizes, including widths off the SIMD lane
        // boundaries; the packed sweep must equal running each block's
        // spmm separately, bit for bit.
        let sizes = [5usize, 1, 9, 16];
        let cols = 13; // ragged width exercises the axpy remainder tail
        let blocks: Vec<Arc<CsrMatrix>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| rand_adj(n, i))
            .collect();
        let feats: Vec<Matrix> =
            sizes.iter().enumerate().map(|(i, &n)| rand_feats(n, cols, i)).collect();
        let bd = BlockDiagCsr::new(blocks.clone());
        assert_eq!(bd.rows(), sizes.iter().sum::<usize>());
        let x = vcat_all(&feats);
        let batched = bd.spmm(&x);
        let per_graph = vcat_all(
            &blocks.iter().zip(&feats).map(|(b, f)| b.spmm(f)).collect::<Vec<_>>(),
        );
        assert_eq!(batched, per_graph);
    }

    #[test]
    fn blockdiag_spmm_t_bit_identical_to_per_graph_loop() {
        let sizes = [7usize, 3, 12];
        let cols = 9;
        let blocks: Vec<Arc<CsrMatrix>> =
            sizes.iter().enumerate().map(|(i, &n)| rand_adj(n, i + 10)).collect();
        let feats: Vec<Matrix> =
            sizes.iter().enumerate().map(|(i, &n)| rand_feats(n, cols, i + 10)).collect();
        let bd = BlockDiagCsr::new(blocks.clone());
        let x = vcat_all(&feats);
        let batched = bd.spmm_t(&x);
        let per_graph = vcat_all(
            &blocks.iter().zip(&feats).map(|(b, f)| b.spmm_t(f)).collect::<Vec<_>>(),
        );
        assert_eq!(batched, per_graph);
    }

    #[test]
    fn blockdiag_parallel_path_bit_identical() {
        // Big enough that nnz · n crosses the parallel threshold: the
        // pooled row sweep must still equal the per-block serial loop.
        let sizes = [160usize, 140, 150];
        let cols = 96;
        let blocks: Vec<Arc<CsrMatrix>> =
            sizes.iter().enumerate().map(|(i, &n)| rand_adj(n, i + 3)).collect();
        let feats: Vec<Matrix> =
            sizes.iter().enumerate().map(|(i, &n)| rand_feats(n, cols, i + 3)).collect();
        let bd = BlockDiagCsr::new(blocks.clone());
        assert!(bd.nnz() * cols >= PAR_FLOP_THRESHOLD, "nnz {} too small", bd.nnz());
        let x = vcat_all(&feats);
        let batched = bd.spmm(&x);
        let per_graph = vcat_all(
            &blocks.iter().zip(&feats).map(|(b, f)| b.spmm(f)).collect::<Vec<_>>(),
        );
        assert_eq!(batched, per_graph);
    }

    #[test]
    fn blockdiag_handles_empty_and_single_node_blocks() {
        let blocks = vec![
            Arc::new(CsrMatrix::from_triplets(0, 0, &[])),
            Arc::new(CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)])),
            rand_adj(4, 0),
        ];
        let bd = BlockDiagCsr::new(blocks.clone());
        assert_eq!(bd.rows(), 5);
        assert_eq!(bd.num_blocks(), 3);
        let x = rand_feats(5, 6, 0);
        let y = bd.spmm(&x);
        assert_eq!(y.shape(), (5, 6));
        // Row 0 of x belongs to the 1×1 identity block.
        assert_eq!(y.row(0), x.row(0));
        let yt = bd.spmm_t(&x);
        assert_eq!(yt.shape(), (5, 6));
        assert_eq!(yt.row(0), x.row(0));
    }

    #[test]
    fn into_variants_overwrite_dirty_buffers() {
        let a = rand_feats(6, 5, 1);
        let b = rand_feats(6, 4, 2); // for tn: a 6×5, b 6×4 → 5×4
        let want_tn = matmul_tn(&a, &b);
        let mut dirty = Matrix::full(5, 4, f32::NAN);
        matmul_tn_into(&a, &b, &mut dirty);
        assert_eq!(dirty, want_tn);

        let c = rand_feats(4, 5, 3); // for nt: a 6×5, c 4×5 → 6×4
        let want_nt = matmul_nt(&a, &c);
        let mut dirty = Matrix::full(6, 4, f32::NAN);
        matmul_nt_into(&a, &c, &mut dirty);
        assert_eq!(dirty, want_nt);

        let adj = rand_adj(6, 4);
        let want_s = adj.spmm(&a);
        let mut dirty = Matrix::full(6, 5, f32::NAN);
        adj.spmm_into(&a, &mut dirty);
        assert_eq!(dirty, want_s);
        let want_st = adj.spmm_t(&a);
        let mut dirty = Matrix::full(6, 5, f32::NAN);
        adj.spmm_t_into(&a, &mut dirty);
        assert_eq!(dirty, want_st);
    }
}
