//! Matrix-multiplication kernels.
//!
//! The hot loops of Mars are `X·W` products in the GCN/LSTM layers and
//! their gradient counterparts `Aᵀ·B` / `A·Bᵀ`. We provide all three
//! transpose variants as dedicated kernels so the autograd backward
//! pass never has to materialize a transposed copy.
//!
//! Each kernel uses a cache-friendly i-k-j loop order and switches to a
//! row partition parallelized on the in-repo thread pool
//! ([`crate::pool`]) once the output is large enough for the fork/join
//! overhead to pay off.

use crate::{pool, Matrix};

/// Minimum number of multiply-accumulate operations before a kernel
/// parallelizes across rows. Below this the sequential loop wins.
const PAR_FLOP_THRESHOLD: usize = 64 * 64 * 64;

#[inline]
fn inner_nn(out_row: &mut [f32], a_row: &[f32], b: &Matrix) {
    // out_row += a_row · B, with k-outer loop so B is streamed row-wise.
    for (k, &a) in a_row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row = b.row(k);
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += a * bv;
        }
    }
}

/// `C = A · B` where `A: m×k`, `B: k×n`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let _span = mars_telemetry::span("tensor.ops.matmul");
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
        let cols = n.max(1);
        pool::par_chunks_mut(out.as_mut_slice(), cols, |i, out_row| {
            inner_nn(out_row, a.row(i), b)
        });
    } else {
        for i in 0..m {
            let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            inner_nn(row, a.row(i), b);
        }
    }
    out
}

/// `C = Aᵀ · B` where `A: k×m`, `B: k×n` (result `m×n`).
///
/// This is the gradient-w.r.t.-weights kernel: for `Y = X·W`,
/// `dW = Xᵀ·dY`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let _span = mars_telemetry::span("tensor.ops.matmul_tn");
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: leading dimensions differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    // Accumulate rank-1 updates; row-major friendly for both inputs.
    for t in 0..k {
        let a_row = a.row(t);
        let b_row = b.row(t);
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    let _ = m;
    out
}

/// `C = A · Bᵀ` where `A: m×k`, `B: n×k` (result `m×n`).
///
/// This is the gradient-w.r.t.-input kernel: for `Y = X·W`,
/// `dX = dY·Wᵀ`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let _span = mars_telemetry::span("tensor.ops.matmul_nt");
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: trailing dimensions differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    let compute_row = |i: usize, out_row: &mut [f32]| {
        let a_row = a.row(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += a_row[t] * b_row[t];
            }
            *o = acc;
        }
    };
    if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
        pool::par_chunks_mut(out.as_mut_slice(), n.max(1), |i, out_row| {
            compute_row(i, out_row)
        });
    } else {
        for i in 0..m {
            let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            compute_row(i, row);
        }
    }
    out
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Outer product `a · bᵀ` of two vectors (`m×1` result from slices).
pub fn outer(a: &[f32], b: &[f32]) -> Matrix {
    let mut out = Matrix::zeros(a.len(), b.len());
    for (i, &av) in a.iter().enumerate() {
        for (j, &bv) in b.iter().enumerate() {
            out.set(i, j, av * bv);
        }
    }
    out
}

/// Sparse matrix in compressed-sparse-row form.
///
/// Used for the (constant) normalized adjacency matrix of computational
/// graphs: `spmm` implements `Â · X` without densifying `Â`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array, length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, length nnz.
    indices: Vec<usize>,
    /// Non-zero values, length nnz.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from (row, col, value) triplets. Duplicate entries are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f32)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of {rows}x{cols}");
            per_row[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(c, _)| c);
            let mut last: Option<usize> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    *values.last_mut().expect("non-empty") += v;
                } else {
                    indices.push(c);
                    values.push(v);
                    last = Some(c);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix { rows, cols, indptr, indices, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over `(col, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse × dense product `self · x`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        let _span = mars_telemetry::span("tensor.ops.spmm");
        assert_eq!(self.cols, x.rows(), "spmm: {}x{} · {:?}", self.rows, self.cols, x.shape());
        let n = x.cols();
        let mut out = Matrix::zeros(self.rows, n);
        let rows_big = self.nnz() * n >= PAR_FLOP_THRESHOLD;
        let compute = |r: usize, out_row: &mut [f32]| {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            for t in lo..hi {
                let c = self.indices[t];
                let v = self.values[t];
                let x_row = x.row(c);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        };
        if rows_big && self.rows > 1 {
            pool::par_chunks_mut(out.as_mut_slice(), n.max(1), |r, out_row| {
                compute(r, out_row)
            });
        } else {
            for r in 0..self.rows {
                let row = &mut out.as_mut_slice()[r * n..(r + 1) * n];
                compute(r, row);
            }
        }
        out
    }

    /// Transposed sparse × dense product `selfᵀ · x` (for backprop).
    pub fn spmm_t(&self, x: &Matrix) -> Matrix {
        let _span = mars_telemetry::span("tensor.ops.spmm_t");
        assert_eq!(self.rows, x.rows(), "spmm_t: ({}x{})ᵀ · {:?}", self.rows, self.cols, x.shape());
        let n = x.cols();
        let mut out = Matrix::zeros(self.cols, n);
        for r in 0..self.rows {
            let x_row = x.row(r);
            for (c, v) in self.row_iter(r) {
                let out_row = &mut out.as_mut_slice()[c * n..(c + 1) * n];
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Densify (for tests and small problems).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c, out.get(r, c) + v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for t in 0..a.cols() {
                    acc += a.get(i, t) * b.get(t, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::eye(4);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Matrix::from_fn(5, 7, |r, c| ((r * 7 + c) as f32).sin());
        let b = Matrix::from_fn(7, 3, |r, c| ((r * 3 + c) as f32).cos());
        let c = matmul(&a, &b);
        let c_tn = matmul_tn(&a.transpose(), &b);
        let c_nt = matmul_nt(&a, &b.transpose());
        assert!(c.max_abs_diff(&c_tn) < 1e-5);
        assert!(c.max_abs_diff(&c_nt) < 1e-5);
    }

    #[test]
    fn large_parallel_path_matches_sequential() {
        let a = Matrix::from_fn(70, 70, |r, c| ((r + 2 * c) as f32 * 0.01).sin());
        let b = Matrix::from_fn(70, 70, |r, c| ((3 * r + c) as f32 * 0.02).cos());
        let fast = matmul(&a, &b);
        let slow = seq_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn parallel_path_is_bit_identical_to_sequential_kernel() {
        // 70³ MACs exceed PAR_FLOP_THRESHOLD, so matmul takes the pool
        // path. Per-row arithmetic is the same `inner_nn` either way,
        // so the results must match exactly — not just within tolerance.
        let a = Matrix::from_fn(70, 70, |r, c| ((r + 2 * c) as f32 * 0.01).sin());
        let b = Matrix::from_fn(70, 70, |r, c| ((3 * r + c) as f32 * 0.02).cos());
        assert!(70 * 70 * 70 >= PAR_FLOP_THRESHOLD);
        let fast = matmul(&a, &b);
        let mut seq = Matrix::zeros(70, 70);
        for i in 0..70 {
            inner_nn(&mut seq.as_mut_slice()[i * 70..(i + 1) * 70], a.row(i), &b);
        }
        assert_eq!(fast, seq);
    }

    #[test]
    fn threshold_switch_small_stays_sequential_and_agrees() {
        // Below the cutoff (8³ MACs) matmul uses the plain loop; the
        // same operands pushed through the parallel entry point via a
        // larger embedding must agree exactly on the shared block.
        let a = Matrix::from_fn(8, 8, |r, c| (r * 8 + c) as f32 * 0.5);
        let b = Matrix::from_fn(8, 8, |r, c| ((r + c) as f32).cos());
        assert!(8 * 8 * 8 < PAR_FLOP_THRESHOLD);
        let small = matmul(&a, &b);
        let slow = seq_matmul(&a, &b);
        assert!(small.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn dot_and_outer() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        let o = outer(&[1., 2.], &[3., 4., 5.]);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o.row(1), &[6., 8., 10.]);
    }

    #[test]
    fn csr_roundtrip_and_spmm() {
        let triplets = [(0usize, 1usize, 2.0f32), (1, 0, 3.0), (1, 2, 4.0), (2, 2, 5.0)];
        let a = CsrMatrix::from_triplets(3, 3, &triplets);
        assert_eq!(a.nnz(), 4);
        let x = Matrix::from_vec(3, 2, vec![1., 10., 2., 20., 3., 30.]);
        let y = a.spmm(&x);
        let y_dense = matmul(&a.to_dense(), &x);
        assert!(y.max_abs_diff(&y_dense) < 1e-6);
        let yt = a.spmm_t(&x);
        let yt_dense = matmul(&a.to_dense().transpose(), &x);
        assert!(yt.max_abs_diff(&yt_dense) < 1e-6);
    }

    #[test]
    fn csr_duplicate_triplets_sum() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.to_dense().get(0, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
