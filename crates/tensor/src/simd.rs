//! SIMD microkernels behind the [`crate::kernel`] dispatch seam.
//!
//! **Lane layout vs. accumulation order.** Every matmul variant in this
//! crate accumulates each output element by ascending contraction index
//! `t` (with the `a == 0.0` skip). The vector kernels here keep that
//! order *per element* by vectorizing **across output columns**: one
//! `axpy` lane holds a different output element, and each element still
//! receives its adds one `t` at a time, in the same order, with the same
//! two-rounding `mul` + `add` arithmetic as the scalar loop. FMA (one
//! rounding) would change the bits, so the default tier never uses it —
//! AVX2 issues `vmulps` + `vaddps`, NEON `fmul` + `fadd`. That makes
//! SIMD results bit-identical to the scalar kernels by construction,
//! pinned by `tests/simd_parity.rs` across ragged shapes, subnormals
//! and NaN.
//!
//! The remainder tail (< one lane width) runs the scalar loop, which is
//! the same arithmetic, so ragged widths stay exact too.
//!
//! [`fast_exp`] is the opt-in approximate tier (`--fast-math`): a
//! degree-7 polynomial `exp` with ~1e-7 relative error, used by
//! softmax/sigmoid only when [`crate::kernel::fast_math`] is on.

use crate::kernel::{self, Backend};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

/// `out[i] += a * b[i]` — the axpy at the heart of every matmul/spmm
/// inner loop. Bit-identical to the scalar loop on every backend.
///
/// # Panics
/// If the slices differ in length.
#[inline]
pub fn axpy(out: &mut [f32], a: f32, b: &[f32]) {
    assert_eq!(out.len(), b.len(), "axpy: length mismatch");
    match kernel::backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { axpy_avx2(out, a, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { axpy_neon(out, a, b) },
        _ => axpy_scalar(out, a, b),
    }
}

#[inline]
fn axpy_scalar(out: &mut [f32], a: f32, b: &[f32]) {
    for (o, &bv) in out.iter_mut().zip(b) {
        *o += a * bv;
    }
}

/// AVX2 axpy. Deliberately `mul` + `add` (two roundings, like the
/// scalar `*o += a * bv`), **not** FMA: contracting to one rounding
/// would break bit-identity with the scalar tier.
///
/// # Safety
/// Caller must ensure the host supports AVX2 (guaranteed by the
/// [`kernel::backend`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(out: &mut [f32], a: f32, b: &[f32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let po = out.as_mut_ptr();
    let pb = b.as_ptr();
    let va = _mm256_set1_ps(a);
    let mut i = 0;
    // 4×8-lane unroll keeps two load ports busy.
    while i + 32 <= n {
        unsafe {
            let o0 = _mm256_loadu_ps(po.add(i));
            let o1 = _mm256_loadu_ps(po.add(i + 8));
            let o2 = _mm256_loadu_ps(po.add(i + 16));
            let o3 = _mm256_loadu_ps(po.add(i + 24));
            let b0 = _mm256_loadu_ps(pb.add(i));
            let b1 = _mm256_loadu_ps(pb.add(i + 8));
            let b2 = _mm256_loadu_ps(pb.add(i + 16));
            let b3 = _mm256_loadu_ps(pb.add(i + 24));
            _mm256_storeu_ps(po.add(i), _mm256_add_ps(o0, _mm256_mul_ps(va, b0)));
            _mm256_storeu_ps(po.add(i + 8), _mm256_add_ps(o1, _mm256_mul_ps(va, b1)));
            _mm256_storeu_ps(po.add(i + 16), _mm256_add_ps(o2, _mm256_mul_ps(va, b2)));
            _mm256_storeu_ps(po.add(i + 24), _mm256_add_ps(o3, _mm256_mul_ps(va, b3)));
        }
        i += 32;
    }
    while i + 8 <= n {
        unsafe {
            let o0 = _mm256_loadu_ps(po.add(i));
            let b0 = _mm256_loadu_ps(pb.add(i));
            _mm256_storeu_ps(po.add(i), _mm256_add_ps(o0, _mm256_mul_ps(va, b0)));
        }
        i += 8;
    }
    axpy_scalar(&mut out[i..], a, &b[i..]);
}

/// NEON axpy. `fmul` + `fadd` (two roundings), **not** `vfmaq`: same
/// bit-identity argument as the AVX2 kernel.
///
/// # Safety
/// Caller must ensure the host supports NEON (guaranteed by the
/// [`kernel::backend`] dispatch).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn axpy_neon(out: &mut [f32], a: f32, b: &[f32]) {
    use std::arch::aarch64::*;
    let n = out.len();
    let po = out.as_mut_ptr();
    let pb = b.as_ptr();
    let va = vdupq_n_f32(a);
    let mut i = 0;
    while i + 16 <= n {
        unsafe {
            let o0 = vld1q_f32(po.add(i));
            let o1 = vld1q_f32(po.add(i + 4));
            let o2 = vld1q_f32(po.add(i + 8));
            let o3 = vld1q_f32(po.add(i + 12));
            let b0 = vld1q_f32(pb.add(i));
            let b1 = vld1q_f32(pb.add(i + 4));
            let b2 = vld1q_f32(pb.add(i + 8));
            let b3 = vld1q_f32(pb.add(i + 12));
            vst1q_f32(po.add(i), vaddq_f32(o0, vmulq_f32(va, b0)));
            vst1q_f32(po.add(i + 4), vaddq_f32(o1, vmulq_f32(va, b1)));
            vst1q_f32(po.add(i + 8), vaddq_f32(o2, vmulq_f32(va, b2)));
            vst1q_f32(po.add(i + 12), vaddq_f32(o3, vmulq_f32(va, b3)));
        }
        i += 16;
    }
    while i + 4 <= n {
        unsafe {
            let o0 = vld1q_f32(po.add(i));
            let b0 = vld1q_f32(pb.add(i));
            vst1q_f32(po.add(i), vaddq_f32(o0, vmulq_f32(va, b0)));
        }
        i += 4;
    }
    axpy_scalar(&mut out[i..], a, &b[i..]);
}

/// `out[j] += Σ_t coeffs[t] · src[t·stride + j]` for `j < out.len()`,
/// skipping zero coefficients — the k-outer row sweep shared by the
/// matmul kernels (`stride` = packed-panel width or dense row width).
///
/// Unlike per-`t` [`axpy`], the SIMD paths keep the output accumulators
/// **in registers across the whole `t` loop** (one load + mul + add per
/// lane group per `t`, stores only at the end), which roughly halves
/// memory traffic on the hot panels. Per element the adds still ascend
/// `t` with the `== 0.0` skip and two-rounding mul + add, so the result
/// stays bit-identical to the scalar loop.
///
/// # Panics
/// If `src` is too short for `coeffs.len()` rows of the given stride
/// and width.
#[inline]
pub fn strided_sweep(out: &mut [f32], coeffs: &[f32], src: &[f32], stride: usize) {
    let w = out.len();
    if w == 0 {
        return;
    }
    assert!(
        coeffs.is_empty() || (coeffs.len() - 1) * stride + w <= src.len(),
        "strided_sweep: src too short ({} rows × stride {stride}, width {w}, len {})",
        coeffs.len(),
        src.len()
    );
    match kernel::backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { strided_sweep_avx2(out, coeffs, src, stride) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { strided_sweep_neon(out, coeffs, src, stride) },
        _ => strided_sweep_scalar(out, coeffs, src, stride),
    }
}

#[inline]
fn strided_sweep_scalar(out: &mut [f32], coeffs: &[f32], src: &[f32], stride: usize) {
    let w = out.len();
    for (t, &a) in coeffs.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        axpy_scalar(out, a, &src[t * stride..t * stride + w]);
    }
}

/// Register-blocked AVX2 sweep: 32-column strips hold four ymm
/// accumulators across the whole `t` loop. Mul + add (two roundings),
/// never FMA — same bit-identity argument as [`axpy_avx2`].
///
/// # Safety
/// Caller must ensure AVX2 support and that `src` covers
/// `coeffs.len()` rows of `stride` floats (checked by the dispatching
/// wrapper).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn strided_sweep_avx2(out: &mut [f32], coeffs: &[f32], src: &[f32], stride: usize) {
    use std::arch::x86_64::*;
    let w = out.len();
    let ps = src.as_ptr();
    let mut j = 0;
    while j + 32 <= w {
        unsafe {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = _mm256_loadu_ps(po);
            let mut a1 = _mm256_loadu_ps(po.add(8));
            let mut a2 = _mm256_loadu_ps(po.add(16));
            let mut a3 = _mm256_loadu_ps(po.add(24));
            for (t, &av) in coeffs.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                let p = ps.add(t * stride + j);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(va, _mm256_loadu_ps(p)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(va, _mm256_loadu_ps(p.add(8))));
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(va, _mm256_loadu_ps(p.add(16))));
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(va, _mm256_loadu_ps(p.add(24))));
            }
            _mm256_storeu_ps(po, a0);
            _mm256_storeu_ps(po.add(8), a1);
            _mm256_storeu_ps(po.add(16), a2);
            _mm256_storeu_ps(po.add(24), a3);
        }
        j += 32;
    }
    while j + 8 <= w {
        unsafe {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = _mm256_loadu_ps(po);
            for (t, &av) in coeffs.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(va, _mm256_loadu_ps(ps.add(t * stride + j))));
            }
            _mm256_storeu_ps(po, a0);
        }
        j += 8;
    }
    if j < w {
        for (t, &av) in coeffs.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            axpy_scalar(&mut out[j..], av, &src[t * stride + j..t * stride + w]);
        }
    }
}

/// Register-blocked NEON sweep: 16-column strips hold four q
/// accumulators. `fmul` + `fadd`, never `vfmaq` (bit-identity).
///
/// # Safety
/// Caller must ensure NEON support and that `src` covers
/// `coeffs.len()` rows of `stride` floats (checked by the dispatching
/// wrapper).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn strided_sweep_neon(out: &mut [f32], coeffs: &[f32], src: &[f32], stride: usize) {
    use std::arch::aarch64::*;
    let w = out.len();
    let ps = src.as_ptr();
    let mut j = 0;
    while j + 16 <= w {
        unsafe {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = vld1q_f32(po);
            let mut a1 = vld1q_f32(po.add(4));
            let mut a2 = vld1q_f32(po.add(8));
            let mut a3 = vld1q_f32(po.add(12));
            for (t, &av) in coeffs.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = vdupq_n_f32(av);
                let p = ps.add(t * stride + j);
                a0 = vaddq_f32(a0, vmulq_f32(va, vld1q_f32(p)));
                a1 = vaddq_f32(a1, vmulq_f32(va, vld1q_f32(p.add(4))));
                a2 = vaddq_f32(a2, vmulq_f32(va, vld1q_f32(p.add(8))));
                a3 = vaddq_f32(a3, vmulq_f32(va, vld1q_f32(p.add(12))));
            }
            vst1q_f32(po, a0);
            vst1q_f32(po.add(4), a1);
            vst1q_f32(po.add(8), a2);
            vst1q_f32(po.add(12), a3);
        }
        j += 16;
    }
    while j + 4 <= w {
        unsafe {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = vld1q_f32(po);
            for (t, &av) in coeffs.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = vdupq_n_f32(av);
                a0 = vaddq_f32(a0, vmulq_f32(va, vld1q_f32(ps.add(t * stride + j))));
            }
            vst1q_f32(po, a0);
        }
        j += 4;
    }
    if j < w {
        for (t, &av) in coeffs.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            axpy_scalar(&mut out[j..], av, &src[t * stride + j..t * stride + w]);
        }
    }
}

// ------------------------------------------------------------------
// tanh
// ------------------------------------------------------------------

// Coefficients of the classic odd rational minimax fit
// `tanh(x) ≈ x·P(x²) / Q(x²)` on `[-7.905, 7.905]` (degree 13 over
// degree 6), the approximation used across mainstream ML runtimes.
// Beyond the clamp bound f32 `tanh` is within one ulp of ±1 anyway.
const TANH_CLAMP: f32 = 7.905_311_5;
const TANH_P: [f32; 7] = [
    4.893_524_6e-3,   // x¹
    6.372_619_3e-4,   // x³
    1.485_722_4e-5,   // x⁵
    5.122_297_1e-8,   // x⁷
    -8.604_672e-11,   // x⁹
    2.000_188e-13,    // x¹¹
    -2.760_768_5e-16, // x¹³
];
const TANH_Q: [f32; 4] = [
    4.893_525e-3,   // x⁰
    2.268_434_6e-3, // x²
    1.185_347_1e-4, // x⁴
    1.198_258_4e-6, // x⁶
];

/// Deterministic `tanh` used by every kernel tier and backend.
///
/// A branch-free rational approximation (max error ≈ 3.9e-7, ~3 ulp)
/// that is ~3× faster than libm `tanhf` — and, unlike libm, under our
/// control: the SIMD batch path ([`tanh_inplace`]) performs the exact
/// same clamp → Horner (mul + add, never FMA) → divide sequence per
/// lane, so scalar and SIMD tiers agree **bitwise**. `tanh` dominates
/// the decoder hot path (one `T × A` activation block per attention
/// read, two activations per LSTM cell lane), which is why it gets a
/// hand kernel while cheaper transcendentals stay on libm.
///
/// Edge behavior: NaN → the same NaN, ±0 → ±0, subnormals pass
/// through (`tanh(x) ≈ x`), and |x| ≥ 7.905 saturates to ±0.999_999_76
/// (one ulp below ±1; exact ±1.0 is never reached).
#[inline]
pub fn tanh(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let z = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let z2 = z * z;
    let mut p = TANH_P[6];
    p = TANH_P[5] + z2 * p;
    p = TANH_P[4] + z2 * p;
    p = TANH_P[3] + z2 * p;
    p = TANH_P[2] + z2 * p;
    p = TANH_P[1] + z2 * p;
    p = TANH_P[0] + z2 * p;
    let p = z * p;
    let mut q = TANH_Q[3];
    q = TANH_Q[2] + z2 * q;
    q = TANH_Q[1] + z2 * q;
    q = TANH_Q[0] + z2 * q;
    p / q
}

/// `tanh` over a slice in place, dispatched like the matmul kernels.
/// Bit-identical to mapping [`tanh`] over the slice on every backend.
pub fn tanh_inplace(xs: &mut [f32]) {
    match kernel::backend() {
        #[cfg(target_arch = "x86_64")]
        kernel::Backend::Avx2 => unsafe { tanh_avx2(xs) },
        #[cfg(target_arch = "aarch64")]
        kernel::Backend::Neon => unsafe { tanh_neon(xs) },
        _ => {
            for x in xs {
                *x = tanh(*x);
            }
        }
    }
}

/// AVX2 batch tanh: the scalar clamp/Horner/divide sequence per lane
/// (mul + add, never FMA), with NaN lanes restored from the input via
/// a blend so payloads pass through exactly like the scalar early
/// return.
///
/// # Safety
/// Caller must ensure the host supports AVX2 (guaranteed by the
/// [`kernel::backend`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tanh_avx2(xs: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let ptr = xs.as_mut_ptr();
    let hi = _mm256_set1_ps(TANH_CLAMP);
    let lo = _mm256_set1_ps(-TANH_CLAMP);
    let mut i = 0;
    while i + 8 <= n {
        let x = _mm256_loadu_ps(ptr.add(i));
        // min/max put the clamp bound in NaN lanes; the final blend
        // overwrites those lanes with the original input anyway.
        let z = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
        let z2 = _mm256_mul_ps(z, z);
        let mut p = _mm256_set1_ps(TANH_P[6]);
        p = _mm256_add_ps(_mm256_set1_ps(TANH_P[5]), _mm256_mul_ps(z2, p));
        p = _mm256_add_ps(_mm256_set1_ps(TANH_P[4]), _mm256_mul_ps(z2, p));
        p = _mm256_add_ps(_mm256_set1_ps(TANH_P[3]), _mm256_mul_ps(z2, p));
        p = _mm256_add_ps(_mm256_set1_ps(TANH_P[2]), _mm256_mul_ps(z2, p));
        p = _mm256_add_ps(_mm256_set1_ps(TANH_P[1]), _mm256_mul_ps(z2, p));
        p = _mm256_add_ps(_mm256_set1_ps(TANH_P[0]), _mm256_mul_ps(z2, p));
        let p = _mm256_mul_ps(z, p);
        let mut q = _mm256_set1_ps(TANH_Q[3]);
        q = _mm256_add_ps(_mm256_set1_ps(TANH_Q[2]), _mm256_mul_ps(z2, q));
        q = _mm256_add_ps(_mm256_set1_ps(TANH_Q[1]), _mm256_mul_ps(z2, q));
        q = _mm256_add_ps(_mm256_set1_ps(TANH_Q[0]), _mm256_mul_ps(z2, q));
        let r = _mm256_div_ps(p, q);
        let nan_mask = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
        let r = _mm256_blendv_ps(r, x, nan_mask);
        _mm256_storeu_ps(ptr.add(i), r);
        i += 8;
    }
    for x in &mut xs[i..] {
        *x = tanh(*x);
    }
}

/// NEON batch tanh: same per-lane sequence as [`tanh_avx2`]
/// (`fmul` + `fadd`, never `vfmaq`), NaN lanes restored via `vbslq`.
///
/// # Safety
/// Caller must ensure the host supports NEON (guaranteed by the
/// [`kernel::backend`] dispatch).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn tanh_neon(xs: &mut [f32]) {
    use std::arch::aarch64::*;
    let n = xs.len();
    let ptr = xs.as_mut_ptr();
    let hi = vdupq_n_f32(TANH_CLAMP);
    let lo = vdupq_n_f32(-TANH_CLAMP);
    let mut i = 0;
    while i + 4 <= n {
        let x = vld1q_f32(ptr.add(i));
        let z = vminq_f32(vmaxq_f32(x, lo), hi);
        let z2 = vmulq_f32(z, z);
        let mut p = vdupq_n_f32(TANH_P[6]);
        p = vaddq_f32(vdupq_n_f32(TANH_P[5]), vmulq_f32(z2, p));
        p = vaddq_f32(vdupq_n_f32(TANH_P[4]), vmulq_f32(z2, p));
        p = vaddq_f32(vdupq_n_f32(TANH_P[3]), vmulq_f32(z2, p));
        p = vaddq_f32(vdupq_n_f32(TANH_P[2]), vmulq_f32(z2, p));
        p = vaddq_f32(vdupq_n_f32(TANH_P[1]), vmulq_f32(z2, p));
        p = vaddq_f32(vdupq_n_f32(TANH_P[0]), vmulq_f32(z2, p));
        let p = vmulq_f32(z, p);
        let mut q = vdupq_n_f32(TANH_Q[3]);
        q = vaddq_f32(vdupq_n_f32(TANH_Q[2]), vmulq_f32(z2, q));
        q = vaddq_f32(vdupq_n_f32(TANH_Q[1]), vmulq_f32(z2, q));
        q = vaddq_f32(vdupq_n_f32(TANH_Q[0]), vmulq_f32(z2, q));
        let r = vdivq_f32(p, q);
        // Lanes where x == x is false are NaN: keep the input there.
        let not_nan = vceqq_f32(x, x);
        let r = vbslq_f32(not_nan, r, x);
        vst1q_f32(ptr.add(i), r);
        i += 4;
    }
    for x in &mut xs[i..] {
        *x = tanh(*x);
    }
}

/// `exp(x)` routed through the active tier: `f32::exp` by default,
/// [`fast_exp`] when `--fast-math` is on.
#[inline]
pub fn exp(x: f32) -> f32 {
    if kernel::fast_math() {
        fast_exp(x)
    } else {
        x.exp()
    }
}

/// Approximate `e^x` for f32: split `x·log2(e) = n + f` with
/// `f ∈ [-0.5, 0.5]`, evaluate `2^f = e^(f·ln 2)` by a degree-7 Taylor
/// polynomial (relative error ≲ 4e-9 before rounding; ≈1 ulp observed),
/// and apply `2^n` exactly via the exponent bits.
///
/// Edge behavior matches `exp` where it matters for softmax/sigmoid:
/// NaN → NaN, +∞/overflow → +∞, large negative → 0 (flushing the
/// subnormal tail of `exp` to zero below ≈ -87.3).
pub fn fast_exp(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    if x.is_nan() {
        return f32::NAN;
    }
    // exp overflows f32 above ~88.72 (2^127.5); underflows the normal
    // range below ~-87.3 (we flush the subnormal tail to 0).
    if x > 88.7 {
        return f32::INFINITY;
    }
    if x < -87.3 {
        return 0.0;
    }
    let n = (x * LOG2E).round_ties_even();
    // Cody–Waite reduction: w = x − n·ln2 with ln2 split so n·LN2_HI is
    // exact (LN2_HI has 16 significant bits, |n| ≤ 128), keeping the
    // reduction error ~1 ulp instead of the ~5e-6 a direct
    // (x·log2e − n)·ln2 would pick up from the x·log2e rounding.
    // 355/512: exactly representable, so `x - k·LN2_HI` is error-free.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let w = (x - n * LN2_HI) - n * LN2_LO; // |w| ≤ 0.5·ln2 ≈ 0.3466
                                           // Horner degree-7 Taylor for e^w.
    let p = 1.0
        + w * (1.0
            + w * (0.5
                + w * (1.0 / 6.0
                    + w * (1.0 / 24.0
                        + w * (1.0 / 120.0 + w * (1.0 / 720.0 + w * (1.0 / 5040.0)))))));
    // n ∈ [-126, 127] after the range checks above, so the biased
    // exponent stays in the normal range.
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    p * scale
}

/// A 64-byte (cache-line) aligned, zero-initialized f32 buffer for
/// packed-panel scratch: panel loads never straddle an extra line and
/// the alignment is stable across allocator choices.
pub struct AlignedBuf {
    ptr: NonNull<f32>,
    len: usize,
    layout: Option<Layout>,
}

// Plain f32 storage with unique ownership: safe to move across and
// share between pool threads.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocate `len` zeroed f32s aligned to 64 bytes.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedBuf { ptr: NonNull::dangling(), len: 0, layout: None };
        }
        let layout = Layout::from_size_align(len * size_of::<f32>(), 64)
            .expect("AlignedBuf: layout overflow");
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f32>()) else {
            handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len, layout: Some(layout) }
    }

    /// Number of f32 elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a shared slice.
    pub fn as_slice(&self) -> &[f32] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if let Some(layout) = self.layout {
            unsafe { dealloc(self.ptr.as_ptr().cast(), layout) };
        }
    }
}

impl std::ops::Deref for AlignedBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar_bitwise_on_all_lengths() {
        // Covers every remainder class around the 8-lane and 32-unroll
        // boundaries, plus subnormals and negative zero.
        for n in [0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100] {
            let b: Vec<f32> = (0..n)
                .map(|i| ((i as f32 * 0.37).sin() * 1e3) + if i % 7 == 0 { 1e-41 } else { 0.0 })
                .collect();
            let mut out_simd: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
            let mut out_scalar = out_simd.clone();
            let a = -1.2345e-3f32;
            axpy(&mut out_simd, a, &b);
            axpy_scalar(&mut out_scalar, a, &b);
            for (x, y) in out_simd.iter().zip(&out_scalar) {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn axpy_propagates_nan_like_scalar() {
        let mut out = vec![0.0f32; 9];
        let mut b = vec![1.0f32; 9];
        b[4] = f32::NAN;
        axpy(&mut out, 2.0, &b);
        assert!(out[4].is_nan());
        assert_eq!(out[3], 2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        axpy(&mut [0.0; 3], 1.0, &[0.0; 4]);
    }

    #[test]
    fn tanh_accuracy_and_edges() {
        let mut max_abs = 0.0f64;
        let mut x = -12.0f32;
        while x < 12.0 {
            max_abs = max_abs.max((tanh(x) as f64 - (x as f64).tanh()).abs());
            x += 0.00137;
        }
        assert!(max_abs < 5e-7, "tanh abs error {max_abs}");
        assert_eq!(tanh(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(tanh(-0.0).to_bits(), (-0.0f32).to_bits());
        assert!(tanh(f32::NAN).is_nan());
        assert!(tanh(f32::INFINITY) > 0.999_999);
        assert!(tanh(f32::NEG_INFINITY) < -0.999_999);
        // tanh(x) ≈ x for tiny/subnormal inputs.
        let tiny = tanh(1e-41f32);
        assert!(tiny > 0.0 && (tiny as f64 - 1e-41).abs() < 1e-43);
    }

    #[test]
    fn tanh_inplace_matches_scalar_bitwise() {
        // Every remainder class around the 8-lane boundary, with
        // saturating, tiny, subnormal, negative-zero, and NaN inputs.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 100] {
            let mut xs: Vec<f32> = (0..n)
                .map(|i| match i % 9 {
                    0 => (i as f32 * 0.61).sin() * 10.0,
                    1 => -0.0,
                    2 => 1e-41,
                    3 => f32::NAN,
                    4 => 42.0,
                    5 => -42.0,
                    _ => (i as f32 * 0.31).cos() * 2.0,
                })
                .collect();
            let expect: Vec<f32> = xs.iter().map(|&x| tanh(x)).collect();
            tanh_inplace(&mut xs);
            for (i, (got, want)) in xs.iter().zip(&expect).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn fast_exp_accuracy_and_edges() {
        let mut max_rel = 0.0f64;
        let mut x = -87.0f32;
        while x < 88.0 {
            let approx = fast_exp(x) as f64;
            let exact = (x as f64).exp();
            max_rel = max_rel.max(((approx - exact) / exact).abs());
            x += 0.0173;
        }
        assert!(max_rel < 1e-6, "fast_exp relative error {max_rel}");
        assert_eq!(fast_exp(0.0), 1.0);
        assert!(fast_exp(f32::NAN).is_nan());
        assert_eq!(fast_exp(1000.0), f32::INFINITY);
        assert_eq!(fast_exp(-1000.0), 0.0);
        assert_eq!(fast_exp(f32::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn exp_router_is_exact_by_default() {
        assert!(!crate::kernel::fast_math());
        for x in [-3.7f32, -0.1, 0.0, 0.5, 11.0] {
            assert_eq!(exp(x).to_bits(), x.exp().to_bits());
        }
    }

    #[test]
    fn aligned_buf_is_cache_aligned_and_zeroed() {
        for len in [1usize, 7, 64, 1000] {
            let mut buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.as_slice().as_ptr() as usize % 64, 0);
            assert_eq!(buf.len(), len);
            assert!(buf.iter().all(|&v| v == 0.0));
            buf.as_mut_slice()[len - 1] = 3.0;
            assert_eq!(buf[len - 1], 3.0);
        }
        let empty = AlignedBuf::zeroed(0);
        assert!(empty.is_empty());
        assert_eq!(empty.as_slice(), &[] as &[f32]);
    }
}
