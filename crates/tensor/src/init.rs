//! Deterministic, seedable weight initializers.
//!
//! All initializers take an explicit `&mut impl Rng` so that every
//! experiment in the repository is reproducible from a single `u64`
//! seed.

use crate::Matrix;
use mars_rng::Rng;

/// Uniform initialization in `[-bound, bound]`.
pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

/// Xavier/Glorot uniform initialization for a `fan_in × fan_out` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, bound, rng)
}

/// Standard-normal sample via the Box–Muller transform (avoids a
/// dependency on `rand_distr`).
pub fn randn_scalar(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Gaussian-initialized matrix with the given standard deviation.
pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| randn_scalar(rng) * std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_bound_respected() {
        let m = xavier_uniform(100, 100, &mut StdRng::seed_from_u64(1));
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(m.as_slice().iter().all(|x| x.abs() <= bound + 1e-6));
    }

    #[test]
    fn randn_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = randn(100, 100, 1.0, &mut rng);
        let mean = m.mean();
        let var =
            m.as_slice().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
