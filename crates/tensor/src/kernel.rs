//! Runtime kernel dispatch: which SIMD backend the hot loops use.
//!
//! The decision is made **once** per process (first kernel call) from
//! CPU feature detection, overridable by the `MARS_KERNEL` environment
//! variable:
//!
//! * `MARS_KERNEL=scalar` — force the portable scalar loops.
//! * `MARS_KERNEL=simd`   — require a SIMD backend; panic loudly if the
//!   host has none (so CI jobs that *mean* to test SIMD can't silently
//!   fall back).
//! * `MARS_KERNEL=auto` (or unset) — pick the best available backend.
//!
//! The backend only changes *how many elements one instruction touches*,
//! never the per-element operation sequence: the default tier is
//! bit-identical across backends (see [`crate::simd`] for the lane
//! argument). The env var therefore exists for A/B timing and for
//! keeping the scalar fallback honest in CI, not for correctness.
//!
//! Orthogonally, [`set_fast_math`] enables the *approximate* tier:
//! polynomial `exp` in softmax/sigmoid (and FMA-style reassociation
//! where a kernel opts in). Off by default; bit-exactness is the house
//! invariant and fast-math runs are by explicit opt-in (`--fast-math`).

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// A kernel backend. All variants exist on every target so tests and
/// diagnostics can name them; [`backend`] only ever returns one that is
/// usable on the running host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar loops — the reference semantics.
    Scalar,
    /// x86_64 AVX2 (256-bit, 8 × f32 lanes).
    Avx2,
    /// aarch64 NEON (128-bit, 4 × f32 lanes).
    Neon,
}

impl Backend {
    /// Human-readable name (stable; printed by diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

const CODE_UNSET: u8 = 0;
const CODE_SCALAR: u8 = 1;
const CODE_AVX2: u8 = 2;
const CODE_NEON: u8 = 3;

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => CODE_SCALAR,
        Backend::Avx2 => CODE_AVX2,
        Backend::Neon => CODE_NEON,
    }
}

fn decode(c: u8) -> Backend {
    match c {
        CODE_SCALAR => Backend::Scalar,
        CODE_AVX2 => Backend::Avx2,
        CODE_NEON => Backend::Neon,
        _ => unreachable!("invalid backend code {c}"),
    }
}

/// Backend resolved from the environment + CPU, cached after first use.
static DETECTED: AtomicU8 = AtomicU8::new(CODE_UNSET);
/// In-process override (tests / A/B harnesses); takes priority.
static OVERRIDE: AtomicU8 = AtomicU8::new(CODE_UNSET);
/// Approximate-math tier toggle (`--fast-math`).
static FAST_MATH: AtomicBool = AtomicBool::new(false);

/// Best SIMD backend the running host supports, if any.
pub fn detected_simd() -> Option<Backend> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(Backend::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Some(Backend::Neon);
        }
    }
    None
}

fn resolve_from_env() -> Backend {
    match std::env::var("MARS_KERNEL") {
        Ok(v) => match v.as_str() {
            "scalar" => Backend::Scalar,
            "simd" => detected_simd().unwrap_or_else(|| {
                panic!(
                    "MARS_KERNEL=simd but this host has no supported SIMD backend \
                     (need x86_64 with AVX2 or aarch64 with NEON)"
                )
            }),
            "auto" | "" => detected_simd().unwrap_or(Backend::Scalar),
            other => panic!("MARS_KERNEL: unknown value {other:?} (expected scalar|simd|auto)"),
        },
        Err(_) => detected_simd().unwrap_or(Backend::Scalar),
    }
}

/// The active kernel backend. Resolved once (env + CPU detection) and
/// cached; an in-process [`set_backend_override`] takes priority.
#[inline]
pub fn backend() -> Backend {
    let ov = OVERRIDE.load(Ordering::Relaxed);
    if ov != CODE_UNSET {
        return decode(ov);
    }
    let d = DETECTED.load(Ordering::Relaxed);
    if d != CODE_UNSET {
        return decode(d);
    }
    let b = resolve_from_env();
    // A racing first call resolves to the same value, so last-write-wins
    // is fine.
    DETECTED.store(encode(b), Ordering::Relaxed);
    b
}

/// Force a backend for this process (A/B tests; `None` restores the
/// detected one). Panics if the requested backend is unusable on this
/// host so a parity test can never silently compare scalar to scalar.
pub fn set_backend_override(b: Option<Backend>) {
    if let Some(b) = b {
        let usable = match b {
            Backend::Scalar => true,
            Backend::Avx2 | Backend::Neon => detected_simd() == Some(b),
        };
        assert!(usable, "backend override {:?} is not usable on this host", b);
        OVERRIDE.store(encode(b), Ordering::Relaxed);
    } else {
        OVERRIDE.store(CODE_UNSET, Ordering::Relaxed);
    }
}

/// Whether the approximate (`--fast-math`) tier is active.
#[inline]
pub fn fast_math() -> bool {
    FAST_MATH.load(Ordering::Relaxed)
}

/// Toggle the approximate tier. Default-off: bit-exact transcendentals.
pub fn set_fast_math(on: bool) {
    FAST_MATH.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_is_stable_and_usable() {
        let b = backend();
        assert_eq!(b, backend(), "backend must be cached, not re-detected");
        match b {
            Backend::Scalar => {}
            simd => assert_eq!(detected_simd(), Some(simd)),
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
        assert_eq!(Backend::Neon.name(), "neon");
    }

    #[test]
    fn fast_math_defaults_off() {
        assert!(!fast_math());
    }
}
