//! Numerically-stable statistical kernels used by the policy networks.
//!
//! The `exp` calls in softmax / logsumexp / sigmoid route through
//! [`crate::simd::exp`]: exact `f32::exp` by default, the polynomial
//! [`crate::simd::fast_exp`] when the opt-in `--fast-math` tier is on.

use crate::{simd, Matrix};

/// Stable log-sum-exp of a slice.
pub fn logsumexp(xs: &[f32]) -> f32 {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !m.is_finite() {
        return m;
    }
    let s: f32 = xs.iter().map(|&x| simd::exp(x - m)).sum();
    m + s.ln()
}

/// In-place stable softmax of a slice.
pub fn softmax_inplace(xs: &mut [f32]) {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = simd::exp(*x - m);
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// Row-wise softmax of a matrix.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        softmax_inplace(out.row_mut(r));
    }
    out
}

/// Row-wise log-softmax of a matrix.
pub fn log_softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let lse = logsumexp(out.row(r));
        for x in out.row_mut(r) {
            *x -= lse;
        }
    }
    out
}

/// Index of the maximum element of a slice (first on ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &x) in xs.iter().enumerate() {
        if x > best_v {
            best_v = x;
            best = i;
        }
    }
    best
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + simd::exp(-x))
    } else {
        let e = simd::exp(x);
        e / (1.0 + e)
    }
}

/// Sample mean of a slice (0 when empty).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Sample (population) variance of a slice.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Entropy (nats) of a probability row vector. Zero-probability entries
/// contribute nothing.
pub fn entropy(probs: &[f32]) -> f32 {
    probs.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_shift_invariant() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![1001.0, 1002.0, 1003.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn logsumexp_stable() {
        // Without max-shift this would overflow.
        let v = [1000.0f32, 1000.0];
        let lse = logsumexp(&v);
        assert!((lse - (1000.0 + 2f32.ln())).abs() < 1e-3);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let m = Matrix::from_vec(2, 3, vec![0.1, -0.5, 2.0, 1.0, 1.0, 1.0]);
        let p = softmax_rows(&m);
        let lp = log_softmax_rows(&m);
        for r in 0..2 {
            for c in 0..3 {
                assert!((p.get(r, c).ln() - lp.get(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn argmax_ties_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let p = [0.25f32; 4];
        assert!((entropy(&p) - 4f32.ln()).abs() < 1e-6);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn mean_variance() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
    }
}
