#![warn(missing_docs)]
//! Dense f32 tensor kernels for the Mars device-placement reproduction.
//!
//! This crate provides the numerical substrate that everything else
//! (autograd, neural-network layers, the RL agent) is built on. It is a
//! deliberately small, fully self-contained BLAS-like layer:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with shape checking.
//! * [`ops`] — matrix multiplication in all transpose variants, with a
//!   blocked kernel that switches to parallel execution on the in-repo
//!   thread pool above a size threshold.
//! * [`pool`] — a small persistent thread pool (`std::thread` +
//!   channels) backing the parallel kernels; no external crates.
//! * [`stats`] — numerically-stable softmax / log-softmax / logsumexp
//!   and reduction helpers used by the policy networks.
//! * [`init`] — deterministic, seedable weight initializers
//!   (Xavier/Glorot, uniform, Gaussian via Box–Muller).
//! * [`kernel`] / [`simd`] — runtime-dispatched SIMD microkernels
//!   (AVX2 / NEON / scalar) whose default tier is bit-identical to the
//!   scalar loops, plus the opt-in `--fast-math` approximate tier.
//!
//! All randomness is injected through [`mars_rng::Rng`] so callers
//! control determinism; nothing in this crate reads ambient entropy.

pub mod init;
pub mod kernel;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod simd;
pub mod stats;

pub use matrix::Matrix;
