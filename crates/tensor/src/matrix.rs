//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the single value type threaded through the whole Mars
//! stack: node-feature tables, LSTM hidden states, policy logits and
//! gradients are all matrices. Vectors are represented as `1 × n` or
//! `n × 1` matrices so that every kernel has one code path.

use std::fmt;

/// A dense, row-major `f32` matrix.
///
/// Shape errors are programming errors in this codebase, so all shape
/// mismatches panic (with the offending dimensions in the message)
/// rather than returning `Result`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Build a matrix by stacking row slices. All rows must have equal length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has length {} != {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// A `n × 1` column vector.
    pub fn col_vector(values: &[f32]) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of {:?}", self.shape());
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of {:?}", self.shape());
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        debug_assert!(c < self.cols);
        self.col_iter(c).collect()
    }

    /// Strided, non-allocating iterator over column `c` — use this (or
    /// [`Self::copy_col_into`]) instead of [`Self::col`] on hot paths:
    /// `col` allocates a fresh `Vec` per call.
    #[inline]
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f32> + '_ {
        debug_assert!(c < self.cols);
        self.data.iter().skip(c).step_by(self.cols.max(1)).copied()
    }

    /// Copy column `c` into a caller-owned scratch slice of length
    /// [`Self::rows`], avoiding the per-call allocation of
    /// [`Self::col`].
    pub fn copy_col_into(&self, c: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.rows, "copy_col_into: scratch length != rows");
        for (o, v) in out.iter_mut().zip(self.col_iter(c)) {
            *o = v;
        }
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Apply `f` elementwise, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Apply `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two equally-shaped matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += s * other` in place (axpy).
    pub fn axpy(&mut self, s: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Fill with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Add a `1 × cols` row vector to every row (broadcast).
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            for (x, &b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// `1 × cols` vector of column sums.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// `1 × cols` vector of column means.
    pub fn mean_rows(&self) -> Matrix {
        if self.rows == 0 {
            return Matrix::zeros(1, self.cols);
        }
        self.sum_rows().scale(1.0 / self.rows as f32)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertical concatenation (self stacked on top of other).
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat col mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Copy of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows [{start},{end}) out of {} rows",
            self.rows
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gather the given rows into a new matrix (used for permutations and
    /// embedding lookups).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather_rows: index {idx} out of {} rows", self.rows);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference with another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            let cols = self.cols.min(8);
            let row: Vec<String> = self.row(r)[..cols].iter().map(|x| format!("{x:+.4}")).collect();
            writeln!(f, "  [{}{}]", row.join(", "), if self.cols > 8 { ", ..." } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.col(1), vec![2., 5.]);
        assert_eq!(m.col_iter(2).collect::<Vec<_>>(), vec![3., 6.]);
        let mut scratch = [0.0f32; 2];
        m.copy_col_into(0, &mut scratch);
        assert_eq!(scratch, [1., 4.]);
    }

    #[test]
    #[should_panic(expected = "scratch length != rows")]
    fn copy_col_into_wrong_length_panics() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        m.copy_col_into(0, &mut [0.0; 3]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![10., 20., 30., 40.]);
        assert_eq!(a.add(&b).as_slice(), &[11., 22., 33., 44.]);
        assert_eq!(b.sub(&a).as_slice(), &[9., 18., 27., 36.]);
        assert_eq!(a.hadamard(&b).as_slice(), &[10., 40., 90., 160.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn broadcast_bias() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::row_vector(&[1.0, -1.0]);
        let out = a.add_row_broadcast(&b);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.sum_rows().as_slice(), &[4., 6.]);
        assert_eq!(m.mean_rows().as_slice(), &[2., 3.]);
        assert!((m.frobenius_norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn concat_and_slice() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 1, vec![9., 8.]);
        let h = a.hcat(&b);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(0), &[1., 2., 9.]);
        let v = a.vcat(&a);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.slice_rows(2, 4), a);
    }

    #[test]
    fn gather_rows_permutation() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let g = m.gather_rows(&[3, 1, 0, 2]);
        assert_eq!(g.col(0), vec![3., 1., 0., 2.]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn bad_shape_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[7., 7., 7., 7.]);
    }

    #[test]
    fn eye_identity() {
        let i = Matrix::eye(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.sum(), 3.0);
    }
}
