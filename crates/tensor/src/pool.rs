//! A small persistent thread pool for data-parallel kernels (the
//! workspace's `rayon` replacement).
//!
//! Two parallel shapes are provided:
//!
//! * [`par_chunks_mut`] — split a mutable output buffer into fixed-size
//!   chunks and run the same closure on each (the kernel shape). Work
//!   is distributed by an atomic chunk counter; the calling thread
//!   participates, so on a single-core machine (or when
//!   `MARS_THREADS=1`) execution is exactly the sequential loop. Pool
//!   threads are spawned once on first use and live for the process
//!   lifetime, parked on a shared job channel.
//! * [`par_tasks`] — run `f(i)` for independent coarse task indices on
//!   scoped threads sized by the caller (the rollout-evaluation shape).
//!
//! Panics inside the closure are caught on each worker, forwarded to
//! the caller, and re-raised there after every helper has finished —
//! the borrow of the caller's stack never outlives the call.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: Sender<Job>,
    /// Helper threads beyond the caller.
    helpers: usize,
}

fn helper_count() -> usize {
    let hw = std::env::var("MARS_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    hw.saturating_sub(1)
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let helpers = helper_count();
        let (tx, rx) = channel::<Job>();
        let rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(rx));
        for w in 0..helpers {
            let rx = Arc::clone(&rx);
            thread::Builder::new()
                .name(format!("mars-pool-{w}"))
                .spawn(move || loop {
                    let job = {
                        let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // channel closed: process exit
                    }
                })
                .expect("spawn pool worker");
        }
        Pool { tx, helpers }
    })
}

/// Everything a work-stealing participant needs, shared by address and
/// fully type-erased so pool jobs (which must be `'static`) never name
/// the caller's closure type. `data` chunks are disjoint because each
/// index is claimed exactly once through the atomic counter.
struct Shared {
    data: *mut f32,
    len: usize,
    chunk_len: usize,
    chunks: usize,
    next: AtomicUsize,
    /// Address of the caller's `F` closure.
    f: *const (),
    /// Monomorphized trampoline that downcasts `f` back to `&F`.
    call: unsafe fn(*const (), usize, &mut [f32]),
}

unsafe impl Sync for Shared {}

impl Shared {
    /// # Safety
    /// `self.f`/`self.data` must still be live, i.e. the owning
    /// `par_chunks_mut` call must not have returned.
    unsafe fn run(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                break;
            }
            let start = i * self.chunk_len;
            let end = (start + self.chunk_len).min(self.len);
            let chunk = std::slice::from_raw_parts_mut(self.data.add(start), end - start);
            (self.call)(self.f, i, chunk);
        }
    }
}

unsafe fn call_closure<F: Fn(usize, &mut [f32])>(f: *const (), i: usize, chunk: &mut [f32]) {
    (*(f as *const F))(i, chunk)
}

/// Run `f(chunk_index, chunk)` over `data` split into `chunk_len`-sized
/// pieces (last piece may be shorter), distributing chunks across the
/// pool. Equivalent to
/// `data.chunks_mut(chunk_len).enumerate().for_each(...)` — including
/// observable panics — but parallel when the machine has spare cores.
pub fn par_chunks_mut<F>(data: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let chunks = data.len().div_ceil(chunk_len);
    let p = pool();
    let helpers = p.helpers.min(chunks.saturating_sub(1));
    if helpers == 0 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    // Only the parallel dispatch is spanned; the sequential fallback
    // above is attributed to the calling kernel's own span.
    let _span = mars_telemetry::span("tensor.pool.par_chunks_mut");
    let shared = Shared {
        data: data.as_mut_ptr(),
        len: data.len(),
        chunk_len,
        chunks,
        next: AtomicUsize::new(0),
        f: &f as *const F as *const (),
        call: call_closure::<F>,
    };
    let (done_tx, done_rx) = channel();
    for _ in 0..helpers {
        // Lifetime erasure: ship the address of the stack-held `shared`
        // to pool threads. Sound because this function does not return
        // (or unwind) until every helper has reported done below.
        let addr = &shared as *const Shared as usize;
        let tx = done_tx.clone();
        let job: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| unsafe {
                (*(addr as *const Shared)).run();
            }));
            let _ = tx.send(result);
        });
        p.tx.send(job).expect("pool job channel closed");
    }

    let mut first_panic = catch_unwind(AssertUnwindSafe(|| unsafe { shared.run() })).err();
    for _ in 0..helpers {
        match done_rx.recv().expect("pool worker vanished mid-job") {
            Ok(()) => {}
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
}

/// Run `f(i)` for every task index `0..tasks` on up to `max_workers`
/// threads (the calling thread included), claiming indices through an
/// atomic counter.
///
/// Unlike [`par_chunks_mut`], which sizes itself from the persistent
/// kernel pool (`MARS_THREADS`), this entry point spawns *scoped*
/// helper threads per call and follows the caller's `max_workers`
/// request. It exists for coarse tasks — placement evaluations take
/// milliseconds each, so the ~10 µs spawn cost is noise, and rollout
/// concurrency (`--eval-threads`) must be tunable independently of the
/// kernel pool's sizing. With `max_workers <= 1` (or a single task)
/// this is exactly the sequential loop; a panic in any task propagates
/// to the caller after all threads have joined (scope semantics).
///
/// `f` must be safe to call concurrently for distinct indices; each
/// index is claimed exactly once.
pub fn par_tasks<F>(tasks: usize, max_workers: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let helpers = max_workers.saturating_sub(1).min(tasks.saturating_sub(1));
    if helpers == 0 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    let _span = mars_telemetry::span("tensor.pool.par_tasks");
    let next = AtomicUsize::new(0);
    let run = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= tasks {
            break;
        }
        f(i);
    };
    thread::scope(|scope| {
        for w in 0..helpers {
            thread::Builder::new()
                .name(format!("mars-eval-{w}"))
                .spawn_scoped(scope, run)
                .expect("spawn scoped eval worker");
        }
        run();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_chunk_exactly_once() {
        let mut data = vec![0.0f32; 1003]; // non-multiple of chunk_len
        par_chunks_mut(&mut data, 10, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += 1.0 + i as f32;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, 1.0 + (k / 10) as f32, "element {k}");
        }
    }

    #[test]
    fn matches_sequential_loop() {
        let n = 64;
        let mut par = vec![0.0f32; n * n];
        let mut seq = vec![0.0f32; n * n];
        let fill = |i: usize, chunk: &mut [f32]| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = ((i * 31 + j) as f32 * 0.01).sin();
            }
        };
        par_chunks_mut(&mut par, n, fill);
        for (i, chunk) in seq.chunks_mut(n).enumerate() {
            fill(i, chunk);
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single_chunk_inputs() {
        let mut empty: Vec<f32> = vec![];
        par_chunks_mut(&mut empty, 8, |_, _| panic!("must not be called"));
        let mut one = vec![1.0f32; 4];
        par_chunks_mut(&mut one, 8, |i, chunk| {
            assert_eq!(i, 0);
            assert_eq!(chunk.len(), 4);
            chunk[0] = 9.0;
        });
        assert_eq!(one[0], 9.0);
    }

    #[test]
    fn par_tasks_runs_every_index_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
        par_tasks(97, 4, |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn par_tasks_single_worker_is_sequential_in_order() {
        let order = Mutex::new(Vec::new());
        par_tasks(10, 1, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn par_tasks_zero_tasks_is_a_noop() {
        par_tasks(0, 8, |_| panic!("must not be called"));
    }

    #[test]
    fn par_tasks_propagates_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_tasks(20, 3, |i| {
                if i == 13 {
                    panic!("deliberate task panic");
                }
            });
        }));
        assert!(result.is_err(), "panic inside a task must reach the caller");
    }

    #[test]
    fn propagates_worker_panics() {
        let mut data = vec![0.0f32; 100];
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_chunks_mut(&mut data, 1, |i, _| {
                if i == 57 {
                    panic!("deliberate kernel panic");
                }
            });
        }));
        assert!(result.is_err(), "panic inside the closure must reach the caller");
        // The pool must still be usable afterwards.
        par_chunks_mut(&mut data, 1, |_, chunk| chunk[0] = 1.0);
        assert!(data.iter().all(|&v| v == 1.0));
    }
}
