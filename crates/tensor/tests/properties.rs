//! Property-based tests of the tensor kernels.

use mars_tensor::ops::{matmul, matmul_nt, matmul_tn, CsrMatrix};
use mars_tensor::stats::{entropy, logsumexp, softmax_rows};
use mars_tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn arb_matmul_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d));
        let b = proptest::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d));
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transpose_is_involutive(m in arb_matrix(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition((a, b) in arb_matmul_pair(8), scale in -2.0f32..2.0) {
        // A·(B + sB) == A·B + s(A·B) up to f32 error.
        let b2 = b.scale(scale);
        let lhs = matmul(&a, &b.add(&b2));
        let ab = matmul(&a, &b);
        let rhs = ab.add(&matmul(&a, &b2));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn transpose_variants_consistent((a, b) in arb_matmul_pair(8)) {
        let c = matmul(&a, &b);
        prop_assert!(c.max_abs_diff(&matmul_tn(&a.transpose(), &b)) < 1e-3);
        prop_assert!(c.max_abs_diff(&matmul_nt(&a, &b.transpose())) < 1e-3);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in arb_matmul_pair(8)) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(m in arb_matrix(10)) {
        let p = softmax_rows(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
            // Entropy bounded by ln(n).
            let e = entropy(p.row(r));
            prop_assert!(e <= (p.cols() as f32).ln() + 1e-4);
        }
    }

    #[test]
    fn logsumexp_bounds(v in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let lse = logsumexp(&v);
        let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(lse >= max - 1e-5);
        prop_assert!(lse <= max + (v.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn csr_spmm_matches_dense(
        (rows, cols) in (1usize..10, 1usize..10),
        entries in proptest::collection::vec((0usize..10, 0usize..10, -5.0f32..5.0), 0..30),
        xcols in 1usize..6,
    ) {
        let triplets: Vec<(usize, usize, f32)> = entries
            .into_iter()
            .map(|(r, c, v)| (r % rows, c % cols, v))
            .collect();
        let sp = CsrMatrix::from_triplets(rows, cols, &triplets);
        let x = Matrix::from_fn(cols, xcols, |r, c| ((r * 7 + c * 3) as f32 * 0.1).sin());
        let dense = sp.to_dense();
        prop_assert!(sp.spmm(&x).max_abs_diff(&matmul(&dense, &x)) < 1e-3);
        let y = Matrix::from_fn(rows, xcols, |r, c| ((r + c) as f32 * 0.2).cos());
        prop_assert!(sp.spmm_t(&y).max_abs_diff(&matmul(&dense.transpose(), &y)) < 1e-3);
    }

    #[test]
    fn gather_rows_preserves_content(m in arb_matrix(10), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..m.rows()).collect();
        perm.shuffle(&mut rng);
        let g = m.gather_rows(&perm);
        for (new_r, &old_r) in perm.iter().enumerate() {
            prop_assert_eq!(g.row(new_r), m.row(old_r));
        }
    }

    #[test]
    fn hcat_vcat_shapes(m in arb_matrix(8)) {
        let h = m.hcat(&m);
        prop_assert_eq!(h.shape(), (m.rows(), m.cols() * 2));
        let v = m.vcat(&m);
        prop_assert_eq!(v.shape(), (m.rows() * 2, m.cols()));
        prop_assert_eq!(v.slice_rows(0, m.rows()), m.clone());
        prop_assert_eq!(v.slice_rows(m.rows(), 2 * m.rows()), m);
    }

    #[test]
    fn frobenius_triangle_inequality(a in arb_matrix(6)) {
        let b = a.scale(-0.5);
        let sum = a.add(&b);
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-4);
    }
}
