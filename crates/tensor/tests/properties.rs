//! Property-based tests of the tensor kernels, on the in-repo seeded
//! harness (`mars_rng::props!`).

use mars_rng::rngs::StdRng;
use mars_rng::{props, Rng};
use mars_tensor::ops::{matmul, matmul_nt, matmul_tn, CsrMatrix};
use mars_tensor::stats::{entropy, logsumexp, softmax_rows};
use mars_tensor::Matrix;

fn arb_matrix(rng: &mut StdRng, max_dim: usize) -> Matrix {
    let r = rng.gen_range(1..=max_dim);
    let c = rng.gen_range(1..=max_dim);
    let data = (0..r * c).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
    Matrix::from_vec(r, c, data)
}

fn arb_matmul_pair(rng: &mut StdRng, max_dim: usize) -> (Matrix, Matrix) {
    let m = rng.gen_range(1..=max_dim);
    let k = rng.gen_range(1..=max_dim);
    let n = rng.gen_range(1..=max_dim);
    let a = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-5.0f32..5.0)).collect());
    let b = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.gen_range(-5.0f32..5.0)).collect());
    (a, b)
}

props! {
    fn transpose_is_involutive(rng, 128) {
        let m = arb_matrix(rng, 12);
        assert_eq!(m.transpose().transpose(), m);
    }

    fn matmul_distributes_over_addition(rng, 128) {
        // A·(B + sB) == A·B + s(A·B) up to f32 error.
        let (a, b) = arb_matmul_pair(rng, 8);
        let scale = rng.gen_range(-2.0f32..2.0);
        let b2 = b.scale(scale);
        let lhs = matmul(&a, &b.add(&b2));
        let ab = matmul(&a, &b);
        let rhs = ab.add(&matmul(&a, &b2));
        assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    fn transpose_variants_consistent(rng, 128) {
        let (a, b) = arb_matmul_pair(rng, 8);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&matmul_tn(&a.transpose(), &b)) < 1e-3);
        assert!(c.max_abs_diff(&matmul_nt(&a, &b.transpose())) < 1e-3);
    }

    fn matmul_transpose_identity(rng, 128) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let (a, b) = arb_matmul_pair(rng, 8);
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    fn softmax_rows_are_distributions(rng, 128) {
        let m = arb_matrix(rng, 10);
        let p = softmax_rows(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
            // Entropy bounded by ln(n).
            let e = entropy(p.row(r));
            assert!(e <= (p.cols() as f32).ln() + 1e-4);
        }
    }

    fn logsumexp_bounds(rng, 128) {
        let len = rng.gen_range(1..20usize);
        let v: Vec<f32> = (0..len).map(|_| rng.gen_range(-50.0f32..50.0)).collect();
        let lse = logsumexp(&v);
        let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(lse >= max - 1e-5);
        assert!(lse <= max + (v.len() as f32).ln() + 1e-4);
    }

    fn csr_spmm_matches_dense(rng, 128) {
        let rows = rng.gen_range(1..10usize);
        let cols = rng.gen_range(1..10usize);
        let n_entries = rng.gen_range(0..30usize);
        let triplets: Vec<(usize, usize, f32)> = (0..n_entries)
            .map(|_| {
                (
                    rng.gen_range(0..10usize) % rows,
                    rng.gen_range(0..10usize) % cols,
                    rng.gen_range(-5.0f32..5.0),
                )
            })
            .collect();
        let xcols = rng.gen_range(1..6usize);
        let sp = CsrMatrix::from_triplets(rows, cols, &triplets);
        let x = Matrix::from_fn(cols, xcols, |r, c| ((r * 7 + c * 3) as f32 * 0.1).sin());
        let dense = sp.to_dense();
        assert!(sp.spmm(&x).max_abs_diff(&matmul(&dense, &x)) < 1e-3);
        let y = Matrix::from_fn(rows, xcols, |r, c| ((r + c) as f32 * 0.2).cos());
        assert!(sp.spmm_t(&y).max_abs_diff(&matmul(&dense.transpose(), &y)) < 1e-3);
    }

    fn gather_rows_preserves_content(rng, 128) {
        use mars_rng::seq::SliceRandom;
        let m = arb_matrix(rng, 10);
        let mut perm: Vec<usize> = (0..m.rows()).collect();
        perm.shuffle(rng);
        let g = m.gather_rows(&perm);
        for (new_r, &old_r) in perm.iter().enumerate() {
            assert_eq!(g.row(new_r), m.row(old_r));
        }
    }

    fn hcat_vcat_shapes(rng, 128) {
        let m = arb_matrix(rng, 8);
        let h = m.hcat(&m);
        assert_eq!(h.shape(), (m.rows(), m.cols() * 2));
        let v = m.vcat(&m);
        assert_eq!(v.shape(), (m.rows() * 2, m.cols()));
        assert_eq!(v.slice_rows(0, m.rows()), m.clone());
        assert_eq!(v.slice_rows(m.rows(), 2 * m.rows()), m);
    }

    fn frobenius_triangle_inequality(rng, 128) {
        let a = arb_matrix(rng, 6);
        let b = a.scale(-0.5);
        let sum = a.add(&b);
        assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-4);
    }
}

// ---------------------------------------------------------------------
// Block-diagonal SpMM ≡ per-graph SpMM loop, bit for bit.
//
// The corpus-batched GCN path routes every graph of a batch through one
// `BlockDiagCsr::spmm` sweep; the house invariant requires that sweep
// to produce exactly the bits the per-graph `CsrMatrix::spmm` loop
// would have produced, for every kernel backend. The battery covers
// random graph counts and shapes, empty (0-node) graphs, single-node
// graphs, and feature widths straddling the SIMD lane/strip remainders.
//
// The backend override is process-global, so the whole sweep lives in
// one `#[test]` (same discipline as the simd_parity battery).
// ---------------------------------------------------------------------

use mars_rng::SeedableRng;
use mars_tensor::kernel::{self, Backend};
use mars_tensor::ops::BlockDiagCsr;
use std::sync::Arc;

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} differs ({x:e} vs {y:e})");
    }
}

/// Random square adjacency block with exact zeros mixed in (the spmm
/// row loop has a `== 0.0` skip that must fire identically both ways).
fn arb_block(rng: &mut StdRng, rows: usize) -> CsrMatrix {
    let mut trips = Vec::new();
    for r in 0..rows {
        for c in 0..rows {
            if rng.gen_range(0..10u32) < 4 {
                let v = if rng.gen_range(0..8u32) == 0 {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                };
                trips.push((r, c, v));
            }
        }
    }
    CsrMatrix::from_triplets(rows, rows, &trips)
}

fn row_stack(mats: &[Matrix], cols: usize) -> Matrix {
    let total: usize = mats.iter().map(Matrix::rows).sum();
    let mut data = Vec::with_capacity(total * cols);
    for m in mats {
        data.extend_from_slice(m.as_slice());
    }
    Matrix::from_vec(total, cols, data)
}

#[test]
fn spmm_blockdiag_is_bitwise_the_per_graph_loop_under_every_backend() {
    // Widths chosen to straddle the 4/8-lane and 32-strip boundaries.
    const WIDTHS: [usize; 12] = [1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 31, 33];
    let mut backends: Vec<Option<Backend>> = vec![Some(Backend::Scalar), None];
    if let Some(b) = kernel::detected_simd() {
        backends.push(Some(b));
    }
    for backend in backends {
        kernel::set_backend_override(backend);
        let mut rng = StdRng::seed_from_u64(0xB10C_D1A6);
        for case in 0..60usize {
            let nblocks = rng.gen_range(1..=6);
            let width = WIDTHS[rng.gen_range(0..WIDTHS.len())];
            let mut blocks: Vec<Arc<CsrMatrix>> = Vec::with_capacity(nblocks);
            let mut xs: Vec<Matrix> = Vec::with_capacity(nblocks);
            for _ in 0..nblocks {
                // Case 0 pins the all-empty corpus; case 1 pins the
                // all-single-node corpus; the rest mix 0..=9 rows.
                let rows = match case {
                    0 => 0,
                    1 => 1,
                    _ => rng.gen_range(0..=9),
                };
                blocks.push(Arc::new(arb_block(&mut rng, rows)));
                let data = (0..rows * width).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
                xs.push(Matrix::from_vec(rows, width, data));
            }
            let bd = BlockDiagCsr::new(blocks.clone());
            let x = row_stack(&xs, width);

            // Forward: one block-diagonal sweep vs N per-graph spmm.
            let batched = bd.spmm(&x);
            let per_graph: Vec<Matrix> =
                blocks.iter().zip(&xs).map(|(b, xb)| b.spmm(xb)).collect();
            let stacked = row_stack(&per_graph, width);
            assert_bits_eq(&batched, &stacked, &format!("spmm case {case} ({backend:?})"));

            // Transpose (backward) variant on a fresh upstream grad.
            let g_data = (0..bd.rows() * width).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
            let g = Matrix::from_vec(bd.rows(), width, g_data);
            let batched_t = bd.spmm_t(&g);
            let mut off = 0;
            let per_graph_t: Vec<Matrix> = blocks
                .iter()
                .map(|b| {
                    let gb = if b.rows() > 0 {
                        g.slice_rows(off, off + b.rows())
                    } else {
                        Matrix::from_vec(0, width, Vec::new())
                    };
                    off += b.rows();
                    b.spmm_t(&gb)
                })
                .collect();
            let stacked_t = row_stack(&per_graph_t, width);
            assert_bits_eq(&batched_t, &stacked_t, &format!("spmm_t case {case} ({backend:?})"));
        }
    }
    kernel::set_backend_override(None);
}
