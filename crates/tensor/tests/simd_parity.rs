//! SIMD ↔ scalar bit-parity battery.
//!
//! The default determinism tier claims the dispatched SIMD kernels are
//! **bit-identical** to the portable scalar loops: lanes only change how
//! many output elements one instruction touches, never the per-element
//! operation sequence. This file pins that claim over randomized shapes
//! (including degenerate `1 × N` / `N × 1` and non-lane-multiple
//! remainders), subnormal inputs, and NaN propagation.
//!
//! The backend override is process-global, so everything runs inside a
//! single `#[test]` to keep the comparison race-free.

use mars_rng::rngs::StdRng;
use mars_rng::{Rng, SeedableRng};
use mars_tensor::kernel::{self, Backend};
use mars_tensor::ops::{matmul, matmul_tn, CsrMatrix};
use mars_tensor::{simd, Matrix};

/// Random matrix whose entries include exact zeros (for the `== 0.0`
/// skip), subnormals, and ordinary values spanning many magnitudes.
fn spicy(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = match rng.gen_range(0..8u32) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0e-41,  // subnormal
            3 => -7.3e-42, // subnormal
            4 => rng.gen::<f32>() * 1.0e20,
            5 => -rng.gen::<f32>() * 1.0e-12,
            _ => (rng.gen::<f32>() - 0.5) * 8.0,
        };
    }
    m
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs between backends ({x:e} vs {y:e})"
        );
    }
}

/// Run `f` once under the forced scalar backend and once under the
/// host's detected backend, returning both results.
fn under_both<T>(f: impl Fn() -> T) -> (T, T) {
    kernel::set_backend_override(Some(Backend::Scalar));
    let scalar = f();
    kernel::set_backend_override(None);
    let auto = f();
    (scalar, auto)
}

#[test]
fn simd_kernels_are_bit_identical_to_scalar() {
    if kernel::detected_simd().is_none() {
        eprintln!("no SIMD backend on this host; parity battery is trivially scalar-vs-scalar");
    }
    let mut rng = StdRng::seed_from_u64(0xD15B_A77C);

    // Shape battery: degenerate vectors, lane-multiple and remainder
    // sizes around the 8-lane / 32-strip boundaries, plus random odd
    // shapes.
    let mut shapes: Vec<(usize, usize, usize)> = vec![
        (1, 1, 1),
        (1, 7, 1),   // 1×N · N×1
        (9, 1, 33),  // N×1 outer-product path
        (1, 16, 40), // single row
        (5, 4, 8),
        (8, 8, 8),
        (3, 17, 31), // remainders everywhere
        (32, 33, 65),
        (6, 48, 96), // LSTM-gate-like panel
    ];
    for _ in 0..6 {
        shapes.push((
            rng.gen_range(1..40usize),
            rng.gen_range(1..40usize),
            rng.gen_range(1..70usize),
        ));
    }

    for &(m, k, n) in &shapes {
        let a = spicy(m, k, &mut rng);
        let b = spicy(k, n, &mut rng);
        let (s, v) = under_both(|| matmul(&a, &b));
        assert_bits_eq(&s, &v, &format!("matmul {m}x{k}·{k}x{n}"));

        let at = spicy(k, m, &mut rng);
        let (s, v) = under_both(|| matmul_tn(&at, &b));
        assert_bits_eq(&s, &v, &format!("matmul_tn {k}x{m}ᵀ·{k}x{n}"));
    }

    // Sparse product over a random pattern.
    let (rows, cols, feat) = (23, 17, 19);
    let mut trips = Vec::new();
    for r in 0..rows {
        for _ in 0..rng.gen_range(0..4usize) {
            trips.push((r, rng.gen_range(0..cols), (rng.gen::<f32>() - 0.5) * 3.0));
        }
    }
    let sp = CsrMatrix::from_triplets(rows, cols, &trips);
    let x = spicy(cols, feat, &mut rng);
    let (s, v) = under_both(|| sp.spmm(&x));
    assert_bits_eq(&s, &v, "spmm");
    let y = spicy(rows, feat, &mut rng);
    let (s, v) = under_both(|| sp.spmm_t(&y));
    assert_bits_eq(&s, &v, "spmm_t");

    // tanh batch kernel, remainder lengths + special values.
    for n in [1usize, 5, 8, 13, 31, 64, 100] {
        let mut base: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin() * 9.0).collect();
        if n > 2 {
            base[0] = f32::NAN;
            base[1] = 1e-41;
            base[2] = -0.0;
        }
        let (s, v) = under_both(|| {
            let mut xs = base.clone();
            simd::tanh_inplace(&mut xs);
            xs
        });
        for (i, (x, y)) in s.iter().zip(&v).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "tanh n={n} i={i}");
        }
    }

    // NaN propagation: a NaN in the contraction poisons exactly the
    // outputs it reaches, identically on both backends.
    let mut a = Matrix::zeros(3, 5);
    a.set(1, 2, f32::NAN);
    a.set(1, 3, 1.0);
    let b = spicy(5, 11, &mut rng);
    let (s, v) = under_both(|| matmul(&a, &b));
    assert!(s.row(1).iter().all(|x| x.is_nan()), "NaN row must be fully poisoned");
    assert_bits_eq(&s, &v, "matmul NaN propagation");
    assert!(s.row(0).iter().all(|x| !x.is_nan()), "NaN must not leak across rows");
}
