//! The JSONL recorder under `par_tasks` contention: events emitted
//! concurrently from pool workers must land as whole lines with a
//! contiguous sequence — no torn writes, no dropped or duplicated
//! records.
//!
//! Lives in its own integration-test binary because installing the
//! process-global recorder resets the shared registries; sharing a
//! process with the counter-delta tests would race them.

use mars_json::Json;
use mars_tensor::pool::par_tasks;

#[test]
fn events_from_pool_workers_are_whole_lines_with_exact_seqs() {
    const TASKS: usize = 1_500;
    let sink = mars_telemetry::install_memory();

    par_tasks(TASKS, 8, |i| {
        mars_telemetry::event("test.pool.event", &[("task", (i as f64).into())]);
    });

    mars_telemetry::uninstall();
    let lines = sink.lock().expect("sink");
    let events: Vec<Json> = lines
        .iter()
        .map(|l| Json::parse(l).expect("every recorded line is complete JSON"))
        .filter(|j| j.get("kind").and_then(Json::as_str) == Some("event"))
        .collect();
    assert_eq!(events.len(), TASKS, "one line per event");

    let mut seqs: Vec<u64> =
        events.iter().map(|j| j.get("seq").and_then(Json::as_u64).expect("seq")).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (1..=TASKS as u64).collect::<Vec<_>>(), "seqs are a contiguous permutation");

    let mut tasks: Vec<u64> =
        events.iter().map(|j| j.get("task").and_then(Json::as_u64).expect("task")).collect();
    tasks.sort_unstable();
    assert_eq!(tasks, (0..TASKS as u64).collect::<Vec<_>>(), "every task recorded exactly once");
}
