//! Telemetry counters bumped from inside the tensor thread pool: the
//! atomic counter must see every increment exactly once, no matter how
//! the chunks are distributed across pool workers.

use mars_tensor::pool::par_chunks_mut;

#[test]
fn counter_increments_from_pool_workers_are_exact() {
    let counter = mars_telemetry::counter("test.pool.chunks");
    let before = counter.get();

    let chunk_len = 7;
    let mut data = vec![0.0f32; 10_007]; // non-multiple of chunk_len
    let chunks = data.len().div_ceil(chunk_len) as u64;
    par_chunks_mut(&mut data, chunk_len, |_, chunk| {
        mars_telemetry::counter("test.pool.chunks").inc();
        mars_telemetry::counter("test.pool.elems").add(chunk.len() as u64);
    });

    assert_eq!(counter.get() - before, chunks);
}

#[test]
fn element_counts_from_pool_workers_are_exact() {
    let counter = mars_telemetry::counter("test.pool.elems_exact");
    let before = counter.get();

    let mut data = vec![0.0f32; 4_099];
    let total = data.len() as u64;
    par_chunks_mut(&mut data, 13, |_, chunk| {
        mars_telemetry::counter("test.pool.elems_exact").add(chunk.len() as u64);
    });

    assert_eq!(counter.get() - before, total);
}
