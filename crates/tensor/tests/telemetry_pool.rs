//! Telemetry counters bumped from inside the tensor thread pool: the
//! atomic counter must see every increment exactly once, no matter how
//! the chunks are distributed across pool workers.

use mars_tensor::pool::{par_chunks_mut, par_tasks};

#[test]
fn counter_increments_from_pool_workers_are_exact() {
    let counter = mars_telemetry::counter("test.pool.chunks");
    let before = counter.get();

    let chunk_len = 7;
    let mut data = vec![0.0f32; 10_007]; // non-multiple of chunk_len
    let chunks = data.len().div_ceil(chunk_len) as u64;
    par_chunks_mut(&mut data, chunk_len, |_, chunk| {
        mars_telemetry::counter("test.pool.chunks").inc();
        mars_telemetry::counter("test.pool.elems").add(chunk.len() as u64);
    });

    assert_eq!(counter.get() - before, chunks);
}

#[test]
fn element_counts_from_pool_workers_are_exact() {
    let counter = mars_telemetry::counter("test.pool.elems_exact");
    let before = counter.get();

    let mut data = vec![0.0f32; 4_099];
    let total = data.len() as u64;
    par_chunks_mut(&mut data, 13, |_, chunk| {
        mars_telemetry::counter("test.pool.elems_exact").add(chunk.len() as u64);
    });

    assert_eq!(counter.get() - before, total);
}

/// Histogram observations under `par_tasks` contention: the
/// CAS-summed `sum` and the per-bucket atomics must account for every
/// observation exactly, with each value in its own bucket.
#[test]
fn histogram_observations_under_par_tasks_are_exact() {
    const TASKS: usize = 1_000;
    let edges = [10.0, 100.0, 1_000.0];
    let hist = mars_telemetry::histogram("test.pool.tasks_hist", &edges);
    let (count0, buckets0, sum0) = (hist.count(), hist.bucket_counts(), hist.sum());

    // Task i observes i as f64: 0..=10 land in bucket 0, 11..=100 in
    // bucket 1, 101..=1000 in bucket 2. Integer-valued partial sums
    // stay below 2^53, so every CAS addition is exact in any order
    // and the total must come out to exactly Σ i.
    par_tasks(TASKS + 1, 8, |i| {
        mars_telemetry::histogram("test.pool.tasks_hist", &edges).observe(i as f64);
    });

    assert_eq!(hist.count() - count0, (TASKS + 1) as u64);
    let delta: Vec<u64> =
        hist.bucket_counts().iter().zip(&buckets0).map(|(b, b0)| b - b0).collect();
    assert_eq!(delta, vec![11, 90, 900, 0], "bucket totals under contention");
    let expected: f64 = (0..=TASKS).map(|i| i as f64).sum();
    assert_eq!((hist.sum() - sum0).to_bits(), expected.to_bits(), "summed total is lossless");
}
