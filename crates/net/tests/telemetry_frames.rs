//! Worker telemetry frame path, end to end over an in-process pair.
//!
//! These tests drive the learner side of the protocol by hand so they
//! can pin the exact frame sequence: when the `Welcome` carries
//! `telemetry: true` and the serving process has no recorder of its
//! own, every `Results` frame is preceded by one `Telemetry` frame
//! with cumulative span/counter snapshots and the events drained
//! since the previous frame.
//!
//! They live in their own integration-test binary because the worker
//! installs (and uninstalls) the process-global memory recorder;
//! sharing a process with other recorder-using tests would race.

use mars_net::msg::{EnvSetup, Msg, PROTOCOL_VERSION};
use mars_net::transport::{recv_msg, send_msg, Conn};
use mars_net::worker::serve;
use mars_sim::Environment;
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests: both flip process-global recorder state.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn setup() -> EnvSetup {
    EnvSetup {
        workload: "inception_v3".into(),
        profile: "reduced".into(),
        seed: 42,
        fault_plan: String::new(),
        bad_cutoff_s: 20.0,
        invalid_penalty_s: 100.0,
        noise_sigma: 0.03,
        steps_per_eval: 15,
        warmup_steps: 5,
    }
}

/// Placements of the right length for the reduced inception graph.
fn placements(count: usize) -> Vec<Vec<usize>> {
    let n = setup().build_env().expect("env").graph().num_nodes();
    (0..count).map(|k| (0..n).map(|i| (i + k) % 5).collect()).collect()
}

fn handshake(learner: &mut Conn, telemetry: bool) {
    let hello = recv_msg(learner).expect("recv hello").expect("hello frame");
    assert!(matches!(hello, Msg::Hello { version: PROTOCOL_VERSION }), "{hello:?}");
    send_msg(
        learner,
        &Msg::Welcome { version: PROTOCOL_VERSION, worker_id: 7, telemetry, setup: setup() },
    )
    .expect("send welcome");
}

#[test]
fn telemetry_frames_precede_results_and_snapshots_are_cumulative() {
    let _guard = lock();
    let (mut learner, worker_end) = Conn::pair().expect("pair");
    let t = std::thread::spawn(move || serve(worker_end, None));
    handshake(&mut learner, true);

    let span_count = |stats: &mars_net::msg::WorkerTelemetry, path: &str| {
        stats.spans.iter().find(|s| s.path == path).map(|s| s.count)
    };
    let counter = |stats: &mars_net::msg::WorkerTelemetry, name: &str| {
        stats.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    };

    // Unit 1, two placements.
    send_msg(
        &mut learner,
        &Msg::Work { unit: 1, failed_devices: vec![], placements: placements(2) },
    )
    .expect("send work");
    let Some(Msg::Telemetry { worker_id: 7, stats }) = recv_msg(&mut learner).expect("recv") else {
        panic!("first frame after work must be telemetry");
    };
    assert_eq!((stats.unit, stats.units_served, stats.shard), (1, 1, 2));
    assert_eq!(span_count(&stats, "net.worker.unit"), Some(1));
    assert_eq!(span_count(&stats, "net.worker.unit/sim.measure.compute"), Some(2));
    assert_eq!(counter(&stats, "net.worker.units_served"), Some(1));
    assert_eq!(counter(&stats, "net.worker.placements_computed"), Some(2));
    assert_eq!(stats.events.len(), 1, "{:?}", stats.events);
    assert_eq!(
        stats.events[0].get("name").and_then(mars_json::Json::as_str),
        Some("net.worker.unit")
    );
    let Some(Msg::Results { unit: 1, comps }) = recv_msg(&mut learner).expect("recv") else {
        panic!("results must follow telemetry");
    };
    assert_eq!(comps.len(), 2);

    // Unit 2, three placements: snapshots grow, events are only the new ones.
    send_msg(
        &mut learner,
        &Msg::Work { unit: 2, failed_devices: vec![], placements: placements(3) },
    )
    .expect("send work");
    let Some(Msg::Telemetry { stats, .. }) = recv_msg(&mut learner).expect("recv") else {
        panic!("second unit must ship telemetry too");
    };
    assert_eq!((stats.unit, stats.units_served, stats.shard), (2, 2, 3));
    assert_eq!(span_count(&stats, "net.worker.unit"), Some(2), "spans are cumulative");
    assert_eq!(span_count(&stats, "net.worker.unit/sim.measure.compute"), Some(5));
    assert_eq!(counter(&stats, "net.worker.placements_computed"), Some(5));
    assert_eq!(stats.events.len(), 1, "events ship incrementally: {:?}", stats.events);
    assert!(stats.wall_s >= stats.compute_s, "wall clock includes compute");
    let Some(Msg::Results { unit: 2, .. }) = recv_msg(&mut learner).expect("recv") else {
        panic!("results must follow telemetry");
    };

    send_msg(&mut learner, &Msg::Shutdown).expect("send shutdown");
    t.join().expect("worker thread").expect("worker exits cleanly");
    assert!(!mars_telemetry::active(), "worker must uninstall its recorder on exit");
}

/// A worker sharing its process with an active recorder (in-process
/// worker threads during instrumented runs) must not install its own
/// — that would reset the learner's registries — and therefore ships
/// no frames.
#[test]
fn worker_in_a_recording_process_stays_silent() {
    let _guard = lock();
    let _sink = mars_telemetry::install_memory();
    let (mut learner, worker_end) = Conn::pair().expect("pair");
    let t = std::thread::spawn(move || serve(worker_end, None));
    handshake(&mut learner, true);
    send_msg(
        &mut learner,
        &Msg::Work { unit: 1, failed_devices: vec![], placements: placements(1) },
    )
    .expect("send work");
    let first = recv_msg(&mut learner).expect("recv").expect("frame");
    assert!(matches!(first, Msg::Results { unit: 1, .. }), "expected bare results, got {first:?}");
    send_msg(&mut learner, &Msg::Shutdown).expect("send shutdown");
    t.join().expect("worker thread").expect("worker exits cleanly");
    assert!(mars_telemetry::active(), "the test's recorder must survive the worker");
    mars_telemetry::uninstall();
}

/// With `telemetry: false` in the welcome the worker ships nothing,
/// whatever its process state.
#[test]
fn telemetry_off_means_no_frames() {
    let _guard = lock();
    let (mut learner, worker_end) = Conn::pair().expect("pair");
    let t = std::thread::spawn(move || serve(worker_end, None));
    handshake(&mut learner, false);
    send_msg(
        &mut learner,
        &Msg::Work { unit: 1, failed_devices: vec![], placements: placements(1) },
    )
    .expect("send work");
    let first = recv_msg(&mut learner).expect("recv").expect("frame");
    assert!(matches!(first, Msg::Results { unit: 1, .. }), "expected bare results, got {first:?}");
    send_msg(&mut learner, &Msg::Shutdown).expect("send shutdown");
    t.join().expect("worker thread").expect("worker exits cleanly");
}
