//! Property tests for the fleet frame codec (`mars_net::frame`).
//!
//! The codec guards every fleet connection, so it gets the adversarial
//! treatment: arbitrary payload sizes (empty through past-64KiB),
//! arbitrary stream chunkings, truncation at every offset, and random
//! single-byte corruption. The invariant under attack is always the
//! same — a typed [`FrameError`], never a panic, never a wrong payload.

use mars_net::frame::{self, FrameError, HEADER_LEN, MAX_PAYLOAD};
use mars_rng::{props, Rng, RngCore};
use std::io::Cursor;

/// A payload with an adversarial size distribution: mostly small, but
/// regularly empty, exactly-one-chunk, and >64 KiB (multi-read) sizes.
fn arb_payload(rng: &mut mars_rng::rngs::StdRng) -> Vec<u8> {
    let len = match rng.gen_range(0..6u32) {
        0 => 0,
        1 => rng.gen_range(1..64),
        2 => rng.gen_range(64..4096),
        3 => 65_536,
        4 => rng.gen_range(65_537..(1 << 18)),
        _ => rng.gen_range(1..1024),
    };
    let mut p = vec![0u8; len];
    rng.fill_bytes(&mut p);
    p
}

props! {
    /// Every payload roundtrips bit-exactly through the blocking
    /// reader, whatever its size.
    fn roundtrip_read_frame(rng, 64) {
        let payload = arb_payload(rng);
        let frame = frame::encode(&payload).expect("encode");
        assert_eq!(frame.len(), HEADER_LEN + payload.len());
        let got = frame::read_frame(&mut Cursor::new(&frame))
            .expect("valid frame reads")
            .expect("one frame present");
        assert_eq!(got, payload);
    }

    /// The incremental decoder reassembles a multi-frame stream
    /// identically under every random chunking, with nothing left
    /// buffered at the end.
    fn roundtrip_decoder_any_chunking(rng, 48) {
        let payloads: Vec<Vec<u8>> =
            (0..rng.gen_range(1..5usize)).map(|_| arb_payload(rng)).collect();
        let stream: Vec<u8> = payloads
            .iter()
            .flat_map(|p| frame::encode(p).expect("encode"))
            .collect();
        let mut dec = frame::Decoder::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut at = 0;
        while at < stream.len() {
            let take = rng.gen_range(1..=(stream.len() - at).min(8192));
            dec.push(&stream[at..at + take]);
            at += take;
            while let Some(p) = dec.next_frame().expect("clean stream never errors") {
                got.push(p);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(dec.buffered(), 0, "no bytes may linger after the last frame");
    }

    /// A stream cut at any offset is a clean EOF (cut before byte one)
    /// or `Truncated` — never a panic, never a phantom payload.
    fn truncation_is_detected_at_every_offset(rng, 64) {
        let payload = arb_payload(rng);
        let frame = frame::encode(&payload).expect("encode");
        let cut = rng.gen_range(0..frame.len());
        match frame::read_frame(&mut Cursor::new(&frame[..cut])) {
            Ok(None) => assert_eq!(cut, 0, "EOF is only clean before the first byte"),
            Err(FrameError::Truncated) => assert!(cut > 0),
            other => panic!("cut at {cut}/{}: expected Truncated, got {other:?}", frame.len()),
        }
        // The incremental decoder must simply wait for more bytes:
        // a prefix of a valid frame is pending, not corrupt.
        let mut dec = frame::Decoder::new();
        dec.push(&frame[..cut]);
        assert!(dec.next_frame().expect("prefix is not corrupt").is_none());
    }

    /// Flipping any single bit of a frame yields a typed error from
    /// one of the reads — or, if the length field shrank, a short
    /// valid-looking read that still never reports the original
    /// payload as intact.
    fn single_bit_corruption_never_passes_silently(rng, 96) {
        let payload = arb_payload(rng);
        let mut frame = frame::encode(&payload).expect("encode");
        let at = rng.gen_range(0..frame.len());
        let bit = 1u8 << rng.gen_range(0..8u32);
        frame[at] ^= bit;
        let mut cur = Cursor::new(&frame);
        loop {
            match frame::read_frame(&mut cur) {
                Err(_) => break, // typed error: corruption caught
                Ok(None) => panic!("corrupt frame read as a clean empty stream"),
                Ok(Some(got)) => {
                    // Only reachable when the flipped bit grew/shrank the
                    // length field into another self-consistent frame; the
                    // payload must then differ from the original.
                    assert_ne!(
                        got, payload,
                        "flipped bit {bit:#04x} at byte {at} went undetected"
                    );
                    if got.len() >= payload.len() {
                        break; // consumed everything; detected via mismatch
                    }
                }
            }
        }
    }

    /// A length field pointing past the 64 MiB ceiling is rejected as
    /// `Oversized` before any allocation, by both decode paths.
    fn oversized_lengths_are_rejected_up_front(rng, 64) {
        let payload = arb_payload(rng);
        let mut frame = frame::encode(&payload).expect("encode");
        let bogus = rng.gen_range((MAX_PAYLOAD as u32 + 1)..=u32::MAX);
        frame[4..8].copy_from_slice(&bogus.to_le_bytes());
        match frame::read_frame(&mut Cursor::new(&frame)) {
            Err(FrameError::Oversized(len)) => assert_eq!(len, bogus),
            other => panic!("expected Oversized({bogus}), got {other:?}"),
        }
        let mut dec = frame::Decoder::new();
        dec.push(&frame);
        assert!(matches!(dec.next_frame(), Err(FrameError::Oversized(len)) if len == bogus));
    }

    /// Garbage that does not start with the magic is `BadMagic` from
    /// both decode paths (framing errors are connection-fatal; there
    /// is no resync scan).
    fn garbage_magic_is_rejected(rng, 64) {
        let mut junk = vec![0u8; rng.gen_range(HEADER_LEN..256)];
        rng.fill_bytes(&mut junk);
        junk[0] = junk[0].wrapping_add(1) | 0x80; // guarantee magic mismatch
        assert!(matches!(
            frame::read_frame(&mut Cursor::new(&junk)),
            Err(FrameError::BadMagic(_))
        ));
        let mut dec = frame::Decoder::new();
        dec.push(&junk);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadMagic(_))));
    }
}
