#![warn(missing_docs)]
//! Distributed actor–learner fleet with a bit-deterministic wire
//! protocol (std-only; see DESIGN.md §"Fleet wire protocol").
//!
//! Layers, bottom up:
//!
//! * [`frame`] — length-prefixed frames: a 16-byte header (magic,
//!   payload length, FNV-1a checksum) in front of an opaque payload.
//!   Truncated, oversized, and corrupt frames are rejected as typed
//!   errors, never panics.
//! * [`msg`] — the message vocabulary (`Hello`/`Welcome`/`Work`/
//!   `Results`/`Telemetry`/`Shutdown`/`Error`) as mars-json payloads.
//!   Every float and 64-bit integer crosses the wire as the hex
//!   string of its raw bits, so results decode bit-exactly —
//!   including NaN payloads.
//! * [`transport`] — one address grammar (`host:port` or
//!   `unix:<path>`), with [`transport::Conn`] unifying TCP and Unix
//!   streams and `send_msg`/`recv_msg` bumping the `net.*` telemetry
//!   counters.
//! * [`worker`] — the pure evaluation server a
//!   `train … --connect ADDR` process runs. When the learner records
//!   telemetry, the worker ships span/counter snapshots, events, and
//!   a health heartbeat ahead of each `Results` frame.
//! * [`learner`] — [`learner::FleetBackend`], the
//!   [`mars_sim::EvalBackend`] that shards compute across workers
//!   while all sampling, caching, fault firing, and commits stay
//!   local and serial. Worker count is invisible in the trace. Worker
//!   telemetry frames are merged into the learner's single run JSONL,
//!   tagged by worker id.

pub mod frame;
pub mod learner;
pub mod msg;
pub mod transport;
pub mod worker;

pub use frame::{Decoder, FrameError, HEADER_LEN, MAX_PAYLOAD};
pub use learner::FleetBackend;
pub use msg::{EnvSetup, Msg, PROTOCOL_VERSION};
pub use transport::{recv_msg, send_msg, Addr, Conn, Listener};
