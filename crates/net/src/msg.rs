//! Fleet protocol messages: typed views over mars-json payloads.
//!
//! # Bit-exact floats on the wire
//!
//! mars-json prints finite `f64`s with shortest-roundtrip precision
//! but maps NaN/Inf to `null` — and evaluation results legitimately
//! carry NaN (`makespan_s`/`comm_s` of an OOM placement). Every float
//! and every 64-bit integer on the wire is therefore encoded as a
//! 16-digit hex string of its raw bits (`f64::to_bits`), making the
//! protocol bit-transparent by construction: what the worker computed
//! is what the learner commits, NaN payloads included.
//!
//! # Message flow
//!
//! ```text
//! worker                      learner
//!   | -- Hello{version} -------> |
//!   | <- Welcome{id, setup} ---- |   (env built from EnvSetup)
//!   | <- Work{unit, failed, ps}- |   (repeated)
//!   | -- Telemetry{stats} -----> |   (only when the learner records)
//!   | -- Results{unit, comps} -> |
//!   | <- Shutdown -------------- |
//! ```
//!
//! Telemetry frames are advisory: a worker sends one immediately
//! before each `Results` frame when (and only when) the `Welcome`
//! carried `telemetry: true`. They ship the worker's cumulative span
//! and counter snapshots, a health heartbeat (wall/compute/idle
//! time, queue depth), and any structured events recorded since the
//! previous frame — everything the learner needs to merge the whole
//! fleet into one run JSONL. Results framing is unchanged, so
//! telemetry can never perturb the training trace.

use mars_json::Json;
use mars_sim::{Cluster, EvalComputation, EvalOutcome, OomError};

/// Protocol version; bumped on any wire-visible change. A learner and
/// worker with different versions refuse to pair.
/// v2: `Welcome.telemetry` flag + the `Telemetry` message.
/// v3: `PlaceRequest`/`PlaceResponse` serving messages (additive:
/// `PlaceRequest.top_k` decodes as 1 when absent).
pub const PROTOCOL_VERSION: u32 = 3;

/// Encode an `f64` as its raw bits in hex (bit-exact, NaN-safe).
pub fn f64_to_wire(x: f64) -> Json {
    Json::from(format!("{:016x}", x.to_bits()))
}

/// Decode an `f64` from its hex bit pattern.
pub fn f64_from_wire(j: Option<&Json>, field: &str) -> Result<f64, String> {
    u64_from_wire(j, field).map(f64::from_bits)
}

/// Encode a `u64` as a hex string (JSON numbers are f64s and cannot
/// carry all 64 bits).
pub fn u64_to_wire(x: u64) -> Json {
    Json::from(format!("{x:016x}"))
}

/// Decode a `u64` from its hex string.
pub fn u64_from_wire(j: Option<&Json>, field: &str) -> Result<u64, String> {
    let s =
        j.and_then(Json::as_str).ok_or_else(|| format!("missing or non-string '{field}' field"))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("malformed hex bits '{s}' in '{field}'"))
}

fn usize_field(j: &Json, field: &str) -> Result<usize, String> {
    j.get(field)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("missing or non-numeric '{field}' field"))
}

/// Everything a worker needs to rebuild the learner's environment so
/// that its pure `SimEnv::compute` is bit-identical to the learner's:
/// workload + profile (graph), seed (measurement noise), fault plan
/// (validated, never fired worker-side — commit faults are applied at
/// the learner's commit point), and the measurement-protocol knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct EnvSetup {
    /// Canonical workload name (`mars_graph::generators::Workload::name`).
    pub workload: String,
    /// Graph profile: `"paper"` or `"reduced"`.
    pub profile: String,
    /// Environment seed (noise streams derive from it).
    pub seed: u64,
    /// Fault-plan spec string (empty = no plan).
    pub fault_plan: String,
    /// Per-step cutoff marking placements bad.
    pub bad_cutoff_s: f64,
    /// Reading assigned to invalid (OOM) placements.
    pub invalid_penalty_s: f64,
    /// Relative measurement-noise standard deviation.
    pub noise_sigma: f64,
    /// Steps per evaluation (warm-up included).
    pub steps_per_eval: usize,
    /// Warm-up steps discarded.
    pub warmup_steps: usize,
}

impl EnvSetup {
    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.as_str())),
            ("profile", Json::from(self.profile.as_str())),
            ("seed", u64_to_wire(self.seed)),
            ("fault_plan", Json::from(self.fault_plan.as_str())),
            ("bad_cutoff_s", f64_to_wire(self.bad_cutoff_s)),
            ("invalid_penalty_s", f64_to_wire(self.invalid_penalty_s)),
            ("noise_sigma", f64_to_wire(self.noise_sigma)),
            ("steps_per_eval", Json::from(self.steps_per_eval as f64)),
            ("warmup_steps", Json::from(self.warmup_steps as f64)),
        ])
    }

    /// Decode from JSON.
    pub fn from_json(j: &Json) -> Result<EnvSetup, String> {
        let text = |field: &str| -> Result<String, String> {
            j.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string '{field}' field"))
        };
        Ok(EnvSetup {
            workload: text("workload")?,
            profile: text("profile")?,
            seed: u64_from_wire(j.get("seed"), "seed")?,
            fault_plan: text("fault_plan")?,
            bad_cutoff_s: f64_from_wire(j.get("bad_cutoff_s"), "bad_cutoff_s")?,
            invalid_penalty_s: f64_from_wire(j.get("invalid_penalty_s"), "invalid_penalty_s")?,
            noise_sigma: f64_from_wire(j.get("noise_sigma"), "noise_sigma")?,
            steps_per_eval: usize_field(j, "steps_per_eval")?,
            warmup_steps: usize_field(j, "warmup_steps")?,
        })
    }
}

/// One aggregated span path in a worker's shipped snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSpan {
    /// `/`-joined call path.
    pub path: String,
    /// Times entered.
    pub count: u64,
    /// Wall nanoseconds, children included.
    pub total_ns: u64,
    /// Wall nanoseconds minus child-span time.
    pub self_ns: u64,
}

/// A worker's telemetry payload: cumulative span/counter snapshots, a
/// health heartbeat, and the events recorded since the last frame.
/// Snapshots are cumulative so frames are idempotent — the learner
/// keeps the latest per worker, and a lost frame only costs
/// granularity, never correctness.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerTelemetry {
    /// The work unit this frame rode along with (span context).
    pub unit: u64,
    /// Work units served so far.
    pub units_served: u64,
    /// Placements in the unit just computed (queue depth at dispatch).
    pub shard: usize,
    /// Wall-clock seconds since the worker started serving.
    pub wall_s: f64,
    /// Cumulative pure-compute seconds across all units.
    pub compute_s: f64,
    /// Cumulative seconds spent waiting for work.
    pub idle_s: f64,
    /// Cumulative span snapshot (sorted by path).
    pub spans: Vec<WireSpan>,
    /// Cumulative counter snapshot (sorted by name).
    pub counters: Vec<(String, u64)>,
    /// Event records (already JSONL objects) drained since the last
    /// frame. Telemetry-only values, so plain JSON numbers are fine
    /// here — no raw-bits encoding needed.
    pub events: Vec<Json>,
}

impl WorkerTelemetry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit", u64_to_wire(self.unit)),
            ("units_served", u64_to_wire(self.units_served)),
            ("shard", Json::from(self.shard as f64)),
            ("wall_s", f64_to_wire(self.wall_s)),
            ("compute_s", f64_to_wire(self.compute_s)),
            ("idle_s", f64_to_wire(self.idle_s)),
            (
                "spans",
                Json::arr(self.spans.iter().map(|s| {
                    Json::obj([
                        ("path", Json::from(s.path.as_str())),
                        ("count", u64_to_wire(s.count)),
                        ("total_ns", u64_to_wire(s.total_ns)),
                        ("self_ns", u64_to_wire(s.self_ns)),
                    ])
                })),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters.iter().map(|(k, v)| (k.clone(), u64_to_wire(*v))).collect(),
                ),
            ),
            ("events", Json::arr(self.events.iter().cloned())),
        ])
    }

    fn from_json(j: &Json) -> Result<WorkerTelemetry, String> {
        let spans = j
            .get("spans")
            .and_then(Json::as_array)
            .ok_or("telemetry has no 'spans' array")?
            .iter()
            .map(|s| {
                Ok(WireSpan {
                    path: s
                        .get("path")
                        .and_then(Json::as_str)
                        .ok_or("span row has no 'path'")?
                        .to_string(),
                    count: u64_from_wire(s.get("count"), "count")?,
                    total_ns: u64_from_wire(s.get("total_ns"), "total_ns")?,
                    self_ns: u64_from_wire(s.get("self_ns"), "self_ns")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let counters = j
            .get("counters")
            .and_then(Json::as_object)
            .ok_or("telemetry has no 'counters' object")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), u64_from_wire(Some(v), k)?)))
            .collect::<Result<_, String>>()?;
        Ok(WorkerTelemetry {
            unit: u64_from_wire(j.get("unit"), "unit")?,
            units_served: u64_from_wire(j.get("units_served"), "units_served")?,
            shard: usize_field(j, "shard")?,
            wall_s: f64_from_wire(j.get("wall_s"), "wall_s")?,
            compute_s: f64_from_wire(j.get("compute_s"), "compute_s")?,
            idle_s: f64_from_wire(j.get("idle_s"), "idle_s")?,
            spans,
            counters,
            events: j.get("events").and_then(Json::as_array).cloned().unwrap_or_default(),
        })
    }
}

fn outcome_to_json(o: &EvalOutcome) -> Json {
    match o {
        EvalOutcome::Valid { per_step_s } => {
            Json::obj([("kind", Json::from("valid")), ("per_step_s", f64_to_wire(*per_step_s))])
        }
        EvalOutcome::Bad { cutoff_s } => {
            Json::obj([("kind", Json::from("bad")), ("cutoff_s", f64_to_wire(*cutoff_s))])
        }
        EvalOutcome::Invalid { oom } => Json::obj([
            ("kind", Json::from("invalid")),
            ("device", Json::from(oom.device as f64)),
            ("required_bytes", u64_to_wire(oom.required_bytes)),
            ("capacity_bytes", u64_to_wire(oom.capacity_bytes)),
        ]),
        EvalOutcome::TransientError { attempts, cutoff_s } => Json::obj([
            ("kind", Json::from("transient_error")),
            ("attempts", Json::from(*attempts as f64)),
            ("cutoff_s", f64_to_wire(*cutoff_s)),
        ]),
        EvalOutcome::Straggler { slowdown, cutoff_s } => Json::obj([
            ("kind", Json::from("straggler")),
            ("slowdown", f64_to_wire(*slowdown)),
            ("cutoff_s", f64_to_wire(*cutoff_s)),
        ]),
    }
}

fn outcome_from_json(j: &Json) -> Result<EvalOutcome, String> {
    match j.get("kind").and_then(Json::as_str) {
        Some("valid") => {
            Ok(EvalOutcome::Valid { per_step_s: f64_from_wire(j.get("per_step_s"), "per_step_s")? })
        }
        Some("bad") => {
            Ok(EvalOutcome::Bad { cutoff_s: f64_from_wire(j.get("cutoff_s"), "cutoff_s")? })
        }
        Some("invalid") => Ok(EvalOutcome::Invalid {
            oom: OomError {
                device: usize_field(j, "device")?,
                required_bytes: u64_from_wire(j.get("required_bytes"), "required_bytes")?,
                capacity_bytes: u64_from_wire(j.get("capacity_bytes"), "capacity_bytes")?,
            },
        }),
        Some("transient_error") => Ok(EvalOutcome::TransientError {
            attempts: usize_field(j, "attempts")? as u32,
            cutoff_s: f64_from_wire(j.get("cutoff_s"), "cutoff_s")?,
        }),
        Some("straggler") => Ok(EvalOutcome::Straggler {
            slowdown: f64_from_wire(j.get("slowdown"), "slowdown")?,
            cutoff_s: f64_from_wire(j.get("cutoff_s"), "cutoff_s")?,
        }),
        other => Err(format!("unknown outcome kind {other:?}")),
    }
}

/// Encode one evaluation result (computation + the worker's compute
/// wall-seconds, telemetry only).
pub fn comp_to_json(comp: &EvalComputation, wall_s: f64) -> Json {
    Json::obj([
        ("outcome", outcome_to_json(&comp.outcome)),
        ("machine_s", f64_to_wire(comp.machine_s)),
        ("makespan_s", f64_to_wire(comp.makespan_s)),
        ("comm_s", f64_to_wire(comp.comm_s)),
        ("num_transfers", Json::from(comp.num_transfers as f64)),
        ("peak_mem_utilization", f64_to_wire(comp.peak_mem_utilization)),
        ("wall_s", f64_to_wire(wall_s)),
    ])
}

/// Decode one evaluation result.
pub fn comp_from_json(j: &Json) -> Result<(EvalComputation, f64), String> {
    let outcome = outcome_from_json(j.get("outcome").ok_or("missing 'outcome' field in result")?)?;
    Ok((
        EvalComputation {
            outcome,
            machine_s: f64_from_wire(j.get("machine_s"), "machine_s")?,
            makespan_s: f64_from_wire(j.get("makespan_s"), "makespan_s")?,
            comm_s: f64_from_wire(j.get("comm_s"), "comm_s")?,
            num_transfers: usize_field(j, "num_transfers")?,
            peak_mem_utilization: f64_from_wire(
                j.get("peak_mem_utilization"),
                "peak_mem_utilization",
            )?,
        },
        f64_from_wire(j.get("wall_s"), "wall_s")?,
    ))
}

/// One fleet protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Worker → learner greeting.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Learner → worker: accepted; build this environment.
    Welcome {
        /// The learner's [`PROTOCOL_VERSION`].
        version: u32,
        /// This worker's id (telemetry labels only).
        worker_id: u32,
        /// Whether the learner is recording: `true` asks the worker to
        /// collect spans/counters/events and ship [`Msg::Telemetry`]
        /// frames alongside its results.
        telemetry: bool,
        /// Environment recipe.
        setup: EnvSetup,
    },
    /// Learner → worker: one work unit of enforced placements to
    /// compute. `failed_devices` mirrors the learner's degraded
    /// cluster so the worker's environment fingerprint stays in sync.
    Work {
        /// Monotonic unit id; echoed back in [`Msg::Results`].
        unit: u64,
        /// Devices failed on the learner's cluster so far.
        failed_devices: Vec<usize>,
        /// Compatibility-enforced, failure-remapped placements.
        placements: Vec<Vec<usize>>,
    },
    /// Worker → learner: the unit's computations, in placement order.
    Results {
        /// The unit being answered.
        unit: u64,
        /// One `(computation, compute_wall_s)` per placement.
        comps: Vec<(EvalComputation, f64)>,
    },
    /// Worker → learner: observability payload, sent immediately
    /// before each `Results` frame when the learner asked for it.
    /// Purely advisory — never touches the training trace.
    Telemetry {
        /// Sender's worker id.
        worker_id: u32,
        /// Span/counter snapshots, health stats, drained events.
        stats: WorkerTelemetry,
    },
    /// Client → serve: decode a placement for this (graph, cluster)
    /// pair (v3).
    PlaceRequest {
        /// Monotonic request id; echoed back in [`Msg::PlaceResponse`]
        /// so pipelined clients can match answers to questions.
        unit: u64,
        /// Canonical workload name
        /// (`mars_graph::generators::Workload::name`).
        workload: String,
        /// Graph profile: `"paper"` or `"reduced"`.
        profile: String,
        /// The querying cluster's full spec (devices, links, failure
        /// mask) — the server derives the cache key from it.
        cluster: Cluster,
        /// Devices to report per op, most probable first. Additive
        /// field: absent decodes as 1 (greedy placement only).
        top_k: usize,
    },
    /// Serve → client: the decoded placement (v3).
    PlaceResponse {
        /// The request being answered.
        unit: u64,
        /// Graph fingerprint the server derived (cache-key half 1).
        graph_fp: u64,
        /// Cluster fingerprint the server derived (cache-key half 2).
        cluster_fp: u64,
        /// Fingerprint of the weights that produced the ranking.
        weights_fp: u64,
        /// Per-op device ranking truncated to the request's `top_k`;
        /// `ranking[op][0]` is the greedy device for that op.
        ranking: Vec<Vec<usize>>,
    },
    /// Learner → worker: drain and exit cleanly.
    Shutdown,
    /// Either direction: fatal protocol-level failure.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Msg {
    /// JSON encoding (the frame payload).
    pub fn to_json(&self) -> Json {
        match self {
            Msg::Hello { version } => {
                Json::obj([("type", Json::from("hello")), ("version", Json::from(*version as f64))])
            }
            Msg::Welcome { version, worker_id, telemetry, setup } => Json::obj([
                ("type", Json::from("welcome")),
                ("version", Json::from(*version as f64)),
                ("worker_id", Json::from(*worker_id as f64)),
                ("telemetry", Json::from(*telemetry)),
                ("setup", setup.to_json()),
            ]),
            Msg::Work { unit, failed_devices, placements } => Json::obj([
                ("type", Json::from("work")),
                ("unit", u64_to_wire(*unit)),
                ("failed_devices", Json::arr(failed_devices.iter().map(|&d| Json::from(d as f64)))),
                (
                    "placements",
                    Json::arr(
                        placements
                            .iter()
                            .map(|p| Json::arr(p.iter().map(|&d| Json::from(d as f64)))),
                    ),
                ),
            ]),
            Msg::Results { unit, comps } => Json::obj([
                ("type", Json::from("results")),
                ("unit", u64_to_wire(*unit)),
                ("comps", Json::arr(comps.iter().map(|(c, w)| comp_to_json(c, *w)))),
            ]),
            Msg::Telemetry { worker_id, stats } => Json::obj([
                ("type", Json::from("telemetry")),
                ("worker_id", Json::from(*worker_id as f64)),
                ("stats", stats.to_json()),
            ]),
            Msg::PlaceRequest { unit, workload, profile, cluster, top_k } => Json::obj([
                ("type", Json::from("place_request")),
                ("unit", u64_to_wire(*unit)),
                ("workload", Json::from(workload.as_str())),
                ("profile", Json::from(profile.as_str())),
                ("cluster", cluster.to_json_value()),
                ("top_k", Json::from(*top_k as f64)),
            ]),
            Msg::PlaceResponse { unit, graph_fp, cluster_fp, weights_fp, ranking } => Json::obj([
                ("type", Json::from("place_response")),
                ("unit", u64_to_wire(*unit)),
                ("graph_fp", u64_to_wire(*graph_fp)),
                ("cluster_fp", u64_to_wire(*cluster_fp)),
                ("weights_fp", u64_to_wire(*weights_fp)),
                (
                    "ranking",
                    Json::arr(
                        ranking.iter().map(|p| Json::arr(p.iter().map(|&d| Json::from(d as f64)))),
                    ),
                ),
            ]),
            Msg::Shutdown => Json::obj([("type", Json::from("shutdown"))]),
            Msg::Error { message } => Json::obj([
                ("type", Json::from("error")),
                ("message", Json::from(message.as_str())),
            ]),
        }
    }

    /// Decode a frame payload.
    pub fn from_json(j: &Json) -> Result<Msg, String> {
        let usize_list = |j: &Json, field: &str| -> Result<Vec<usize>, String> {
            j.as_array()
                .ok_or_else(|| format!("'{field}' is not an array"))?
                .iter()
                .map(|d| d.as_usize().ok_or_else(|| format!("non-integer entry in '{field}'")))
                .collect()
        };
        match j.get("type").and_then(Json::as_str) {
            Some("hello") => Ok(Msg::Hello { version: usize_field(j, "version")? as u32 }),
            Some("welcome") => Ok(Msg::Welcome {
                version: usize_field(j, "version")? as u32,
                worker_id: usize_field(j, "worker_id")? as u32,
                telemetry: j.get("telemetry").and_then(Json::as_bool).unwrap_or(false),
                setup: EnvSetup::from_json(j.get("setup").ok_or("welcome has no 'setup'")?)?,
            }),
            Some("work") => Ok(Msg::Work {
                unit: u64_from_wire(j.get("unit"), "unit")?,
                failed_devices: usize_list(
                    j.get("failed_devices").ok_or("work has no 'failed_devices'")?,
                    "failed_devices",
                )?,
                placements: j
                    .get("placements")
                    .and_then(Json::as_array)
                    .ok_or("work has no 'placements' array")?
                    .iter()
                    .map(|p| usize_list(p, "placements"))
                    .collect::<Result<_, _>>()?,
            }),
            Some("results") => Ok(Msg::Results {
                unit: u64_from_wire(j.get("unit"), "unit")?,
                comps: j
                    .get("comps")
                    .and_then(Json::as_array)
                    .ok_or("results has no 'comps' array")?
                    .iter()
                    .map(comp_from_json)
                    .collect::<Result<_, _>>()?,
            }),
            Some("telemetry") => Ok(Msg::Telemetry {
                worker_id: usize_field(j, "worker_id")? as u32,
                stats: WorkerTelemetry::from_json(
                    j.get("stats").ok_or("telemetry has no 'stats'")?,
                )?,
            }),
            Some("place_request") => {
                let text = |field: &str| -> Result<String, String> {
                    j.get(field)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("missing or non-string '{field}' field"))
                };
                Ok(Msg::PlaceRequest {
                    unit: u64_from_wire(j.get("unit"), "unit")?,
                    workload: text("workload")?,
                    profile: text("profile")?,
                    cluster: Cluster::from_json_value(
                        j.get("cluster").ok_or("place_request has no 'cluster'")?,
                    )?,
                    // Additive (like Welcome.telemetry in v2): absent
                    // reads as greedy-only.
                    top_k: j.get("top_k").and_then(Json::as_usize).unwrap_or(1),
                })
            }
            Some("place_response") => Ok(Msg::PlaceResponse {
                unit: u64_from_wire(j.get("unit"), "unit")?,
                graph_fp: u64_from_wire(j.get("graph_fp"), "graph_fp")?,
                cluster_fp: u64_from_wire(j.get("cluster_fp"), "cluster_fp")?,
                weights_fp: u64_from_wire(j.get("weights_fp"), "weights_fp")?,
                ranking: j
                    .get("ranking")
                    .and_then(Json::as_array)
                    .ok_or("place_response has no 'ranking' array")?
                    .iter()
                    .map(|p| usize_list(p, "ranking"))
                    .collect::<Result<_, _>>()?,
            }),
            Some("shutdown") => Ok(Msg::Shutdown),
            Some("error") => Ok(Msg::Error {
                message: j
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("(no message)")
                    .to_string(),
            }),
            other => Err(format!("unknown message type {other:?}")),
        }
    }

    /// Serialize to the frame payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().to_string().into_bytes()
    }

    /// Parse from frame payload bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Msg, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("non-UTF-8 payload: {e}"))?;
        let json = Json::parse(text).map_err(|e| format!("malformed payload JSON: {e}"))?;
        Msg::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Msg) {
        let bytes = msg.to_bytes();
        let back = Msg::from_bytes(&bytes).expect("decodes");
        assert_eq!(msg, back);
    }

    fn setup() -> EnvSetup {
        EnvSetup {
            workload: "inception_v3".into(),
            profile: "reduced".into(),
            seed: u64::MAX - 3, // beyond f64's exact-integer range
            fault_plan: "fail:2@10, transient:0.25".into(),
            bad_cutoff_s: 20.0,
            invalid_penalty_s: 100.0,
            noise_sigma: 0.03,
            steps_per_eval: 15,
            warmup_steps: 5,
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Msg::Hello { version: PROTOCOL_VERSION });
        for telemetry in [false, true] {
            roundtrip(Msg::Welcome {
                version: PROTOCOL_VERSION,
                worker_id: 3,
                telemetry,
                setup: setup(),
            });
        }
        roundtrip(Msg::Work {
            unit: 7,
            failed_devices: vec![2],
            placements: vec![vec![0, 1, 2, 3], vec![4, 4, 4]],
        });
        roundtrip(Msg::Shutdown);
        roundtrip(Msg::Error { message: "boom".into() });
    }

    #[test]
    fn place_messages_roundtrip() {
        let mut cluster = mars_sim::Cluster::heterogeneous();
        cluster.fail_device(2);
        roundtrip(Msg::PlaceRequest {
            unit: u64::MAX - 5, // beyond f64's exact-integer range
            workload: "inception_v3".into(),
            profile: "reduced".into(),
            cluster,
            top_k: 3,
        });
        roundtrip(Msg::PlaceResponse {
            unit: u64::MAX - 5,
            graph_fp: 0xdead_beef_dead_beef,
            cluster_fp: u64::MAX,
            weights_fp: 1,
            ranking: vec![vec![0, 3, 1], vec![4, 0, 2], vec![1]],
        });
    }

    /// The v2→v3 addition is additive inside `place_request` too: a
    /// request without `top_k` (an early v3 client) decodes as a
    /// greedy-only query instead of failing.
    #[test]
    fn place_request_without_top_k_defaults_to_greedy() {
        let mut msg = Msg::PlaceRequest {
            unit: 1,
            workload: "vgg16".into(),
            profile: "paper".into(),
            cluster: mars_sim::Cluster::p100_quad(),
            top_k: 5,
        }
        .to_json();
        let Json::Obj(pairs) = &mut msg else { panic!("place_request is an object") };
        pairs.retain(|(k, _)| k != "top_k");
        let back = Msg::from_json(&msg).expect("decodes");
        let Msg::PlaceRequest { top_k, .. } = back else { panic!("wrong type") };
        assert_eq!(top_k, 1, "absent top_k must read as greedy-only");
    }

    #[test]
    fn telemetry_roundtrips_with_full_precision() {
        let stats = WorkerTelemetry {
            unit: u64::MAX - 9, // beyond f64's exact-integer range
            units_served: 12,
            shard: 20,
            wall_s: 0.1 + 0.2,
            compute_s: 1e-300,
            idle_s: 7.25,
            spans: vec![
                WireSpan {
                    path: "net.worker.unit".into(),
                    count: 12,
                    total_ns: u64::MAX - 1,
                    self_ns: 1_000,
                },
                WireSpan {
                    path: "net.worker.unit/sim.measure.compute".into(),
                    count: 240,
                    total_ns: 900,
                    self_ns: 900,
                },
            ],
            counters: vec![
                ("net.worker.placements_computed".into(), u64::MAX - 7),
                ("net.worker.units_served".into(), 12),
            ],
            events: vec![Json::obj([
                ("kind", Json::from("event")),
                ("name", Json::from("net.worker.unit")),
                ("compute_s", Json::from(0.125)),
            ])],
        };
        let msg = Msg::Telemetry { worker_id: 5, stats: stats.clone() };
        let back = Msg::from_bytes(&msg.to_bytes()).expect("decodes");
        let Msg::Telemetry { worker_id, stats: got } = back else { panic!("wrong type") };
        assert_eq!(worker_id, 5);
        assert_eq!(got.unit, u64::MAX - 9, "unit must not pass through f64");
        assert_eq!(got.wall_s.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(got.compute_s.to_bits(), 1e-300f64.to_bits());
        assert_eq!(got, stats);

        // A telemetry frame missing its snapshots is malformed.
        assert!(Msg::from_bytes(br#"{"type":"telemetry","worker_id":1,"stats":{}}"#).is_err());
    }

    /// The v1→v2 additions are additive: a v2 decoder still reads a
    /// welcome without the `telemetry` flag (defaults to off), because
    /// mixed-version pairs only discover the mismatch *after* the
    /// welcome decodes.
    #[test]
    fn welcome_without_telemetry_flag_defaults_to_off() {
        let mut msg =
            Msg::Welcome { version: 1, worker_id: 0, telemetry: true, setup: setup() }.to_json();
        let Json::Obj(pairs) = &mut msg else { panic!("welcome is an object") };
        pairs.retain(|(k, _)| k != "telemetry");
        let back = Msg::from_json(&msg).expect("decodes");
        let Msg::Welcome { telemetry, .. } = back else { panic!("wrong type") };
        assert!(!telemetry, "absent flag must read as disabled");
    }

    #[test]
    fn results_roundtrip_bit_exactly_including_nan() {
        let comps = vec![
            (
                EvalComputation {
                    outcome: EvalOutcome::Valid { per_step_s: 0.1 + 0.2 },
                    machine_s: 12.345678901234567,
                    makespan_s: 0.30000000000000004,
                    comm_s: 1e-300,
                    num_transfers: 42,
                    peak_mem_utilization: 0.9999999999999999,
                },
                0.001,
            ),
            (
                EvalComputation {
                    outcome: EvalOutcome::Invalid {
                        oom: OomError {
                            device: 1,
                            required_bytes: u64::MAX - 1,
                            capacity_bytes: 17_179_869_184,
                        },
                    },
                    machine_s: 5.0,
                    makespan_s: f64::NAN,
                    comm_s: f64::NAN,
                    num_transfers: 0,
                    peak_mem_utilization: 1.25,
                },
                0.002,
            ),
        ];
        let msg = Msg::Results { unit: 9, comps: comps.clone() };
        let back = Msg::from_bytes(&msg.to_bytes()).expect("decodes");
        let Msg::Results { unit, comps: got } = back else { panic!("wrong type") };
        assert_eq!(unit, 9);
        assert_eq!(got.len(), comps.len());
        for ((c, w), (gc, gw)) in comps.iter().zip(&got) {
            assert_eq!(c.machine_s.to_bits(), gc.machine_s.to_bits());
            assert_eq!(c.makespan_s.to_bits(), gc.makespan_s.to_bits(), "NaN must survive");
            assert_eq!(c.comm_s.to_bits(), gc.comm_s.to_bits());
            assert_eq!(c.num_transfers, gc.num_transfers);
            assert_eq!(c.peak_mem_utilization.to_bits(), gc.peak_mem_utilization.to_bits());
            assert_eq!(w.to_bits(), gw.to_bits());
            match (&c.outcome, &gc.outcome) {
                (EvalOutcome::Valid { per_step_s: a }, EvalOutcome::Valid { per_step_s: b }) => {
                    assert_eq!(a.to_bits(), b.to_bits())
                }
                (EvalOutcome::Invalid { oom: a }, EvalOutcome::Invalid { oom: b }) => {
                    assert_eq!(a, b)
                }
                (a, b) => panic!("outcome kind changed: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn setup_roundtrips_with_full_seed_precision() {
        let s = setup();
        let back = EnvSetup::from_json(&s.to_json()).expect("decodes");
        assert_eq!(s, back);
        assert_eq!(back.seed, u64::MAX - 3, "seed must not pass through f64");
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        assert!(Msg::from_bytes(b"not json").is_err());
        assert!(Msg::from_bytes(b"{\"type\":\"warp\"}").is_err());
        assert!(Msg::from_bytes(b"{\"no_type\":1}").is_err());
        assert!(Msg::from_bytes(&[0xff, 0xfe]).is_err());
    }
}
