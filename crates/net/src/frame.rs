//! Length-prefixed framing with an integrity checksum.
//!
//! Every message on a fleet connection is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "MRN1"
//! 4       4     payload length, u32 little-endian (≤ 64 MiB)
//! 8       8     FNV-1a 64 checksum of the payload, u64 little-endian
//! 16      len   payload bytes (a mars-json document in practice)
//! ```
//!
//! The codec never panics on hostile input: truncated, oversized, and
//! corrupt frames all surface as a [`FrameError`]. A corrupt stream is
//! not resynchronized — framing errors are fatal to the connection,
//! which the fleet treats as a lost worker (see `learner`).

use std::fmt;
use std::io::{Read, Write};

/// Frame magic: protocol family + version baked into every frame.
pub const MAGIC: [u8; 4] = *b"MRN1";

/// Fixed header size in bytes (magic + length + checksum).
pub const HEADER_LEN: usize = 16;

/// Hard ceiling on payload size (64 MiB). A length field beyond this
/// is rejected *before* any allocation, so a corrupt or malicious
/// length cannot make the decoder balloon.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload checksum did not match the header.
    Checksum {
        /// Checksum stored in the header.
        expected: u64,
        /// Checksum of the payload actually received.
        got: u64,
    },
    /// The stream ended mid-frame.
    Truncated,
    /// Transport-level I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?} (expected \"MRN1\")"),
            FrameError::Oversized(len) => {
                write!(f, "frame payload length {len} exceeds the {MAX_PAYLOAD}-byte ceiling")
            }
            FrameError::Checksum { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: header says {expected:#018x}, payload is {got:#018x}"
                )
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// FNV-1a 64-bit checksum of `bytes` — cheap, dependency-free, and
/// plenty to catch truncation and bit rot (this is an integrity check,
/// not an authenticity one).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode one frame (header + payload) into a fresh buffer.
pub fn encode(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::Oversized(payload.len() as u32));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Write one frame; returns the total bytes written (header included).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<usize, FrameError> {
    let frame = encode(payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Parse a header already known to be [`HEADER_LEN`] bytes; returns
/// the validated payload length and expected checksum.
fn parse_header(header: &[u8]) -> Result<(usize, u64), FrameError> {
    let magic: [u8; 4] = header[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    if len as usize > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let expected = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    Ok((len as usize, expected))
}

fn verify(payload: Vec<u8>, expected: u64) -> Result<Vec<u8>, FrameError> {
    let got = checksum(&payload);
    if got != expected {
        return Err(FrameError::Checksum { expected, got });
    }
    Ok(payload)
}

/// Blocking read of one frame. `Ok(None)` on a clean end-of-stream
/// (EOF before the first header byte); [`FrameError::Truncated`] when
/// the stream dies mid-frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let (len, expected) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    verify(payload, expected).map(Some)
}

/// Incremental frame decoder over a growable byte buffer: push bytes
/// as they arrive, pull frames as they complete. Used by the property
/// tests to exercise every chunking of a stream; the blocking paths
/// use [`read_frame`] directly.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
}

impl Decoder {
    /// Empty decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Append raw bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame's payload, `Ok(None)` when more
    /// bytes are needed. Errors are sticky in practice: a corrupt
    /// header leaves the buffer as-is and every subsequent call fails
    /// the same way (the connection is expected to be dropped).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let (len, expected) = parse_header(&self.buf[..HEADER_LEN])?;
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.buf.drain(..HEADER_LEN + len);
        verify(payload, expected).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_empty_payload() {
        let frame = encode(b"").expect("encode");
        assert_eq!(frame.len(), HEADER_LEN);
        let got = read_frame(&mut Cursor::new(frame)).expect("read").expect("frame");
        assert!(got.is_empty());
    }

    #[test]
    fn roundtrip_back_to_back_frames() {
        let mut stream = Vec::new();
        stream.extend(encode(b"alpha").expect("encode"));
        stream.extend(encode(b"").expect("encode"));
        stream.extend(encode(b"omega").expect("encode"));
        let mut cur = Cursor::new(stream);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"omega");
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = encode(b"x").expect("encode");
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut Cursor::new(frame)) {
            Err(FrameError::Oversized(len)) => assert_eq!(len, u32::MAX),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn encode_refuses_oversized_payloads() {
        let huge = vec![0u8; MAX_PAYLOAD + 1];
        assert!(matches!(encode(&huge), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut frame = encode(b"payload bytes").expect("encode");
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        assert!(matches!(read_frame(&mut Cursor::new(frame)), Err(FrameError::Checksum { .. })));
    }

    #[test]
    fn decoder_waits_for_more_bytes() {
        let frame = encode(b"split me").expect("encode");
        let mut dec = Decoder::new();
        dec.push(&frame[..7]);
        assert!(dec.next_frame().expect("partial header is not an error").is_none());
        dec.push(&frame[7..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"split me");
        assert_eq!(dec.buffered(), 0);
    }
}
