//! Address parsing and the TCP / Unix-socket transports.
//!
//! One address grammar everywhere: `unix:<path>` selects a Unix domain
//! socket, anything else must be a `host:port` pair. [`Conn`] unifies
//! the two stream types behind `Read + Write`, and the `send_msg` /
//! `recv_msg` helpers layer the frame codec and the `net.*` telemetry
//! counters on top.

use crate::frame::{self, FrameError};
use crate::msg::Msg;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// A parsed fleet address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Addr {
    /// `host:port` over TCP.
    Tcp(String),
    /// `unix:<path>` over a Unix domain socket.
    Unix(PathBuf),
}

impl Addr {
    /// Parse an address string. Accepts `unix:<path>` or `host:port`;
    /// anything else is an error describing the expected grammar.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path (expected unix:<path>)".into());
            }
            return Ok(Addr::Unix(PathBuf::from(path)));
        }
        let Some((host, port)) = s.rsplit_once(':') else {
            return Err(format!("'{s}' is not an address (expected host:port or unix:<path>)"));
        };
        if host.is_empty() {
            return Err(format!("'{s}' has an empty host (expected host:port)"));
        }
        if port.parse::<u16>().is_err() {
            return Err(format!("'{s}' has an invalid port '{port}' (expected 0-65535)"));
        }
        Ok(Addr::Tcp(s.to_string()))
    }

    /// The Unix socket path, when this is a Unix address.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        match self {
            Addr::Unix(p) => Some(p),
            Addr::Tcp(_) => None,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Tcp(hp) => write!(f, "{hp}"),
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

#[cfg(not(unix))]
fn unsupported() -> io::Error {
    io::Error::new(io::ErrorKind::Unsupported, "unix sockets are not supported on this platform")
}

/// A bound listener on either transport.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-socket listener.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    /// Bind `addr`. A stale Unix socket file from a previous run is
    /// removed first (the standard daemon idiom).
    pub fn bind(addr: &Addr) -> io::Result<Listener> {
        match addr {
            Addr::Tcp(hp) => TcpListener::bind(hp.as_str()).map(Listener::Tcp),
            Addr::Unix(path) => {
                #[cfg(unix)]
                {
                    let _ = std::fs::remove_file(path);
                    std::os::unix::net::UnixListener::bind(path).map(Listener::Unix)
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    Err(unsupported())
                }
            }
        }
    }

    /// Accept one connection, waiting at most `timeout`.
    pub fn accept_timeout(&self, timeout: Duration) -> io::Result<Conn> {
        self.set_nonblocking(true)?;
        let deadline = std::time::Instant::now() + timeout;
        let conn = loop {
            match self.try_accept() {
                Ok(conn) => break conn,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out waiting for a worker to connect",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        };
        self.set_nonblocking(false)?;
        conn.set_nonblocking(false)?;
        Ok(conn)
    }

    /// The address this listener is actually bound to — how callers
    /// discover the ephemeral port after binding `127.0.0.1:0`.
    pub fn local_addr(&self) -> io::Result<Addr> {
        match self {
            Listener::Tcp(l) => Ok(Addr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(l) => {
                let sa = l.local_addr()?;
                let path = sa
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unix listener has no pathname"))?;
                Ok(Addr::Unix(path.to_path_buf()))
            }
        }
    }

    fn try_accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // Mirror the connect side: without TCP_NODELAY, Nagle
                // delays small response frames by tens of milliseconds.
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(on),
        }
    }
}

/// One fleet connection over either transport.
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-socket stream.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    /// Connect to `addr`.
    pub fn connect(addr: &Addr) -> io::Result<Conn> {
        match addr {
            Addr::Tcp(hp) => {
                let s = TcpStream::connect(hp.as_str())?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Addr::Unix(path) => {
                #[cfg(unix)]
                {
                    std::os::unix::net::UnixStream::connect(path).map(Conn::Unix)
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    Err(unsupported())
                }
            }
        }
    }

    /// A connected in-process pair (learner end, worker end) — Unix
    /// socketpair where available, loopback TCP otherwise. Used by
    /// tests and the bench harness to run fleet workers as threads.
    pub fn pair() -> io::Result<(Conn, Conn)> {
        #[cfg(unix)]
        {
            let (a, b) = std::os::unix::net::UnixStream::pair()?;
            Ok((Conn::Unix(a), Conn::Unix(b)))
        }
        #[cfg(not(unix))]
        {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let client = TcpStream::connect(addr)?;
            let (server, _) = listener.accept()?;
            client.set_nodelay(true)?;
            server.set_nodelay(true)?;
            Ok((Conn::Tcp(server), Conn::Tcp(client)))
        }
    }

    /// Bound read timeout (`None` blocks forever).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(on),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(on),
        }
    }

    /// A second handle to the same underlying socket, so one thread
    /// can write requests while another reads responses (the pipelined
    /// serve client). Both handles share the kernel stream; closing
    /// either direction affects both.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Hard-close both directions (used to simulate a worker crash in
    /// tests; a dropped `Conn` closes implicitly).
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Frame-encode and send one message, bumping the `net.frames_tx` /
/// `net.bytes_tx` counters.
pub fn send_msg(conn: &mut Conn, msg: &Msg) -> Result<(), String> {
    let bytes =
        frame::write_frame(conn, &msg.to_bytes()).map_err(|e| format!("send failed: {e}"))?;
    mars_telemetry::counter("net.frames_tx").inc();
    mars_telemetry::counter("net.bytes_tx").add(bytes as u64);
    Ok(())
}

/// Receive one message; `Ok(None)` on a clean hang-up. Framing and
/// decoding failures are both connection-fatal errors.
pub fn recv_msg(conn: &mut Conn) -> Result<Option<Msg>, String> {
    let payload = match frame::read_frame(conn) {
        Ok(None) => return Ok(None),
        Ok(Some(p)) => p,
        Err(FrameError::Io(e)) => return Err(format!("receive failed: {e}")),
        Err(e) => return Err(format!("protocol violation: {e}")),
    };
    mars_telemetry::counter("net.frames_rx").inc();
    mars_telemetry::counter("net.bytes_rx").add((frame::HEADER_LEN + payload.len()) as u64);
    Msg::from_bytes(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tcp_and_unix_addresses() {
        assert_eq!(Addr::parse("127.0.0.1:9000"), Ok(Addr::Tcp("127.0.0.1:9000".into())));
        assert_eq!(Addr::parse("unix:/tmp/fleet.sock"), Ok(Addr::Unix("/tmp/fleet.sock".into())));
        assert_eq!(Addr::parse("localhost:0"), Ok(Addr::Tcp("localhost:0".into())));
    }

    #[test]
    fn rejects_malformed_addresses() {
        for bad in ["", "no-port", "host:", "host:-1", "host:70000", ":9000", "unix:"] {
            let err = Addr::parse(bad).expect_err(bad);
            assert!(!err.is_empty(), "'{bad}' must be rejected with a reason");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in ["10.0.0.1:4242", "unix:/run/mars.sock"] {
            let a = Addr::parse(s).expect("parses");
            assert_eq!(a.to_string(), s);
            assert_eq!(Addr::parse(&a.to_string()), Ok(a));
        }
    }

    #[test]
    fn messages_cross_a_connection_pair() {
        let (mut a, mut b) = Conn::pair().expect("socketpair");
        let msg = Msg::Hello { version: crate::msg::PROTOCOL_VERSION };
        send_msg(&mut a, &msg).expect("send");
        assert_eq!(recv_msg(&mut b).expect("recv"), Some(msg));
        drop(a);
        assert_eq!(recv_msg(&mut b).expect("clean eof"), None);
    }
}
