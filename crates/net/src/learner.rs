//! The learner side of the fleet: an [`EvalBackend`] that shards each
//! round's compute jobs across remote worker processes.
//!
//! # Commit-order discipline (why this is bit-deterministic)
//!
//! The learner keeps everything order-sensitive local: the PPO agent
//! samples every placement serially from its own RNG stream, and
//! `SimEnv` normalizes, caches, applies commit faults, and commits
//! outcomes in sample order — exactly as in-process. What ships to a
//! worker is only the *pure* compute phase, a function of
//! `(graph, cluster, env seed, placement)` with no hidden state.
//! Results are slotted back by placement index, never by arrival
//! order, so worker count, shard boundaries, scheduling, and even
//! worker restarts cannot reorder a single observable effect.
//!
//! # Failure handling
//!
//! A worker that disconnects (or corrupts a frame) mid-unit is dropped
//! from the fleet and its shard is re-dispatched to the survivors;
//! with no survivors the learner computes the remainder locally.
//! Because the computation is pure, the retry reproduces the lost
//! results bit for bit — a disconnect costs wall-clock, never trace
//! fidelity.

use crate::msg::{EnvSetup, Msg, WorkerTelemetry, PROTOCOL_VERSION};
use crate::transport::{recv_msg, send_msg, Addr, Conn, Listener};
use mars_json::Json;
use mars_sim::{Environment, EvalBackend, EvalComputation, Placement, SimEnv};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long the learner waits for a worker to finish one unit before
/// declaring it lost. Generous: a unit is at most one round's shard.
const UNIT_TIMEOUT: Duration = Duration::from_secs(600);

/// How long `spawn` waits for its own child processes to dial in.
const SPAWN_ACCEPT_TIMEOUT: Duration = Duration::from_secs(60);

/// How long `listen` waits for externally started workers.
const LISTEN_ACCEPT_TIMEOUT: Duration = Duration::from_secs(600);

struct WorkerLink {
    conn: Conn,
    id: u32,
}

/// A fleet of rollout workers behind the [`EvalBackend`] interface.
///
/// Construction: [`FleetBackend::spawn`] (fork N worker processes over
/// a private socket), [`FleetBackend::listen`] (wait for N external
/// workers on a given address), or [`FleetBackend::over_conns`]
/// (adopt already-connected transports — how tests and the bench run
/// workers as in-process threads). Dropping the backend shuts the
/// fleet down: workers get a `Shutdown` message, spawned children are
/// reaped, and a bound Unix socket file is removed.
pub struct FleetBackend {
    workers: Vec<WorkerLink>,
    next_unit: u64,
    children: Vec<Child>,
    socket_path: Option<PathBuf>,
    transport: String,
}

impl FleetBackend {
    /// Adopt pre-connected worker transports: handshake each
    /// connection (expect `Hello`, answer `Welcome` with `setup`).
    pub fn over_conns(conns: Vec<Conn>, setup: &EnvSetup) -> Result<FleetBackend, String> {
        if conns.is_empty() {
            return Err("a fleet needs at least one worker connection".into());
        }
        let mut workers = Vec::with_capacity(conns.len());
        for (i, mut conn) in conns.into_iter().enumerate() {
            let id = i as u32;
            handshake(&mut conn, id, setup).map_err(|e| format!("worker {id}: {e}"))?;
            workers.push(WorkerLink { conn, id });
        }
        mars_telemetry::counter("net.workers_connected").add(workers.len() as u64);
        Ok(FleetBackend {
            workers,
            next_unit: 0,
            children: Vec::new(),
            socket_path: None,
            transport: "adopted connections".into(),
        })
    }

    /// Spawn `n` worker processes running `program args… --connect
    /// <private address>` and adopt them. The private rendezvous is a
    /// Unix socket in the temp directory where available, loopback TCP
    /// otherwise. Children write to the learner's stderr but their
    /// stdout is discarded (the learner's stdout is the user's trace).
    pub fn spawn(
        n: usize,
        setup: &EnvSetup,
        program: &Path,
        args: &[&str],
    ) -> Result<FleetBackend, String> {
        if n == 0 {
            return Err("a fleet needs at least one worker".into());
        }
        let (listener, addr, socket_path) = private_listener()?;
        let mut children: Vec<Child> = Vec::with_capacity(n);
        let spawn_all = || -> Result<Vec<Child>, String> {
            (0..n)
                .map(|_| {
                    Command::new(program)
                        .args(args)
                        .arg("--connect")
                        .arg(addr.to_string())
                        .stdout(Stdio::null())
                        .spawn()
                        .map_err(|e| format!("cannot spawn worker '{}': {e}", program.display()))
                })
                .collect()
        };
        match spawn_all() {
            Ok(c) => children = c,
            Err(e) => {
                cleanup(&mut children, &socket_path);
                return Err(e);
            }
        }
        let fleet = accept_fleet(&listener, n, SPAWN_ACCEPT_TIMEOUT, setup);
        match fleet {
            Ok(mut fleet) => {
                fleet.children = children;
                fleet.socket_path = socket_path;
                fleet.transport = addr.to_string();
                Ok(fleet)
            }
            Err(e) => {
                cleanup(&mut children, &socket_path);
                Err(e)
            }
        }
    }

    /// Bind `addr` and wait for `n` externally started workers
    /// (`mars-cli train <workload> --connect ADDR`) to dial in.
    pub fn listen(addr: &Addr, n: usize, setup: &EnvSetup) -> Result<FleetBackend, String> {
        if n == 0 {
            return Err("a fleet needs at least one worker".into());
        }
        let listener = Listener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let mut fleet = accept_fleet(&listener, n, LISTEN_ACCEPT_TIMEOUT, setup)?;
        fleet.socket_path = addr.unix_path().cloned();
        fleet.transport = addr.to_string();
        Ok(fleet)
    }

    /// Live worker count (shrinks as workers are lost).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Human-readable transport description for status lines.
    pub fn transport(&self) -> &str {
        &self.transport
    }

    /// Split `pending` into contiguous, balanced shards — one per live
    /// worker, earlier workers taking the remainder.
    fn shards(pending: &[usize], workers: usize) -> Vec<Vec<usize>> {
        let base = pending.len() / workers;
        let extra = pending.len() % workers;
        let mut out = Vec::with_capacity(workers);
        let mut at = 0;
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            out.push(pending[at..at + take].to_vec());
            at += take;
        }
        out
    }
}

impl EvalBackend for FleetBackend {
    fn compute_batch(
        &mut self,
        env: &SimEnv,
        placements: &[&Placement],
    ) -> Vec<(EvalComputation, f64)> {
        let _span = mars_telemetry::span("net.fleet.compute_batch");
        let mut results: Vec<Option<(EvalComputation, f64)>> = vec![None; placements.len()];
        let mut pending: Vec<usize> = (0..placements.len()).collect();
        let failed = env.cluster().failed_ids();

        while !pending.is_empty() && !self.workers.is_empty() {
            let shards = Self::shards(&pending, self.workers.len());
            // Dispatch every shard before collecting any result, so
            // workers compute concurrently.
            let mut inflight: Vec<(usize, u64, Vec<usize>, Instant)> = Vec::new();
            let mut lost: Vec<usize> = Vec::new();
            let mut requeued: Vec<usize> = Vec::new();
            for (w, shard) in shards.into_iter().enumerate() {
                if shard.is_empty() {
                    continue;
                }
                let unit = self.next_unit;
                self.next_unit += 1;
                let msg = Msg::Work {
                    unit,
                    failed_devices: failed.clone(),
                    placements: shard.iter().map(|&i| placements[i].0.clone()).collect(),
                };
                match send_msg(&mut self.workers[w].conn, &msg) {
                    Ok(()) => inflight.push((w, unit, shard, Instant::now())),
                    Err(e) => {
                        report_lost(self.workers[w].id, shard.len(), &e);
                        lost.push(w);
                        requeued.extend(shard);
                    }
                }
            }
            for (w, unit, shard, t0) in inflight {
                match collect_unit(&mut self.workers[w].conn, unit, shard.len()) {
                    Ok(comps) => {
                        let latency = t0.elapsed().as_secs_f64();
                        unit_telemetry(self.workers[w].id, shard.len(), latency);
                        for (k, &i) in shard.iter().enumerate() {
                            results[i] = Some(comps[k].clone());
                        }
                    }
                    Err(e) => {
                        report_lost(self.workers[w].id, shard.len(), &e);
                        lost.push(w);
                        requeued.extend(shard);
                    }
                }
            }
            lost.sort_unstable();
            lost.dedup();
            for w in lost.into_iter().rev() {
                self.workers.remove(w);
            }
            pending = requeued;
        }

        // No workers left: the learner is its own fleet of one. The
        // computation is pure, so this fallback is bit-identical.
        for i in pending {
            let t0 = Instant::now();
            let comp = env.compute(placements[i]);
            results[i] = Some((comp, t0.elapsed().as_secs_f64()));
        }
        results.into_iter().map(|r| r.expect("every placement computed")).collect()
    }

    fn label(&self) -> String {
        format!("fleet:{}", self.workers.len())
    }
}

impl Drop for FleetBackend {
    fn drop(&mut self) {
        for w in &mut self.workers {
            let _ = send_msg(&mut w.conn, &Msg::Shutdown);
        }
        // Dropping the connections closes them; workers also exit on
        // the EOF if the Shutdown frame was lost.
        self.workers.clear();
        reap(&mut self.children);
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Expect `Hello`, verify the protocol version, answer `Welcome`.
fn handshake(conn: &mut Conn, worker_id: u32, setup: &EnvSetup) -> Result<(), String> {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(30)));
    match recv_msg(conn)? {
        Some(Msg::Hello { version }) if version == PROTOCOL_VERSION => {}
        Some(Msg::Hello { version }) => {
            let refusal =
                format!("protocol version mismatch: learner {PROTOCOL_VERSION}, worker {version}");
            let _ = send_msg(conn, &Msg::Error { message: refusal.clone() });
            return Err(refusal);
        }
        other => return Err(format!("expected hello, got {other:?}")),
    }
    send_msg(
        conn,
        &Msg::Welcome {
            version: PROTOCOL_VERSION,
            worker_id,
            // Ask workers to ship telemetry only when there is a
            // recorder to merge it into — otherwise the frames would
            // be paid for and dropped.
            telemetry: mars_telemetry::active(),
            setup: setup.clone(),
        },
    )?;
    let _ = conn.set_read_timeout(Some(UNIT_TIMEOUT));
    Ok(())
}

fn accept_fleet(
    listener: &Listener,
    n: usize,
    timeout: Duration,
    setup: &EnvSetup,
) -> Result<FleetBackend, String> {
    let deadline = Instant::now() + timeout;
    let mut conns = Vec::with_capacity(n);
    for _ in 0..n {
        let left = deadline.saturating_duration_since(Instant::now());
        let conn =
            listener.accept_timeout(left).map_err(|e| format!("worker never connected: {e}"))?;
        conns.push(conn);
    }
    FleetBackend::over_conns(conns, setup)
}

/// Read messages until `unit`'s results arrive, merging any telemetry
/// frames riding ahead of them; anything else on the wire at this
/// point is a protocol violation (the worker is lost).
fn collect_unit(
    conn: &mut Conn,
    unit: u64,
    expected: usize,
) -> Result<Vec<(EvalComputation, f64)>, String> {
    loop {
        match recv_msg(conn)? {
            Some(Msg::Telemetry { worker_id, stats }) => {
                merge_worker_telemetry(worker_id, &stats);
            }
            Some(Msg::Results { unit: got, comps }) if got == unit => {
                if comps.len() != expected {
                    return Err(format!(
                        "unit {unit}: worker returned {} results for {expected} placements",
                        comps.len()
                    ));
                }
                return Ok(comps);
            }
            Some(Msg::Results { unit: got, .. }) => {
                return Err(format!("unit {unit}: out-of-order answer for unit {got}"));
            }
            Some(Msg::Error { message }) => return Err(format!("worker error: {message}")),
            Some(other) => return Err(format!("unit {unit}: unexpected message {other:?}")),
            None => return Err(format!("unit {unit}: worker hung up")),
        }
    }
}

/// Fold one worker's telemetry frame into the learner's recorder, so a
/// single run file describes the whole fleet. Three record families:
/// the worker's events re-emitted under the learner's sequence (tagged
/// `worker=<id>`), its cumulative span/counter snapshots appended as
/// `worker_spans` / `worker_counters` records (latest per worker wins
/// at summarize time), and a `fleet.health` heartbeat derived from the
/// frame's wall/compute/idle accounting. Telemetry only — nothing here
/// feeds back into training state.
fn merge_worker_telemetry(worker_id: u32, stats: &WorkerTelemetry) {
    if !mars_telemetry::active() {
        return;
    }
    let wid = worker_id as f64;
    for ev in &stats.events {
        let Some(name) = ev.get("name").and_then(Json::as_str) else { continue };
        let mut fields: Vec<(&str, Json)> = vec![("worker", wid.into())];
        if let Some(pairs) = ev.as_object() {
            for (k, v) in pairs {
                if !matches!(k.as_str(), "kind" | "seq" | "name" | "worker") {
                    fields.push((k.as_str(), v.clone()));
                }
            }
        }
        mars_telemetry::event(name, &fields);
    }
    mars_telemetry::append_record(&Json::obj([
        ("kind", Json::from("worker_spans")),
        ("worker", Json::from(wid)),
        (
            "spans",
            Json::arr(stats.spans.iter().map(|s| {
                Json::obj([
                    ("path", Json::from(s.path.as_str())),
                    ("count", Json::from(s.count as f64)),
                    ("total_ns", Json::from(s.total_ns as f64)),
                    ("self_ns", Json::from(s.self_ns as f64)),
                ])
            })),
        ),
    ]));
    mars_telemetry::append_record(&Json::obj([
        ("kind", Json::from("worker_counters")),
        ("worker", Json::from(wid)),
        (
            "counters",
            Json::Obj(
                stats.counters.iter().map(|(k, v)| (k.clone(), Json::from(*v as f64))).collect(),
            ),
        ),
    ]));
    let placements = stats
        .counters
        .iter()
        .find(|(k, _)| k == "net.worker.placements_computed")
        .map_or(0, |(_, v)| *v);
    mars_telemetry::event(
        "fleet.health",
        &[
            ("worker", wid.into()),
            ("unit", (stats.unit as f64).into()),
            ("units", (stats.units_served as f64).into()),
            ("placements", (placements as f64).into()),
            ("shard", (stats.shard as f64).into()),
            ("wall_s", stats.wall_s.into()),
            ("compute_s", stats.compute_s.into()),
            ("idle_s", stats.idle_s.into()),
        ],
    );
}

fn report_lost(worker_id: u32, shard_len: usize, err: &str) {
    mars_telemetry::counter("net.worker_lost").inc();
    mars_telemetry::counter("net.units_retried").add(shard_len as u64);
    if mars_telemetry::active() {
        mars_telemetry::event(
            "net.worker_lost",
            &[
                ("worker", (worker_id as f64).into()),
                ("requeued", (shard_len as f64).into()),
                ("error", err.into()),
            ],
        );
    }
    eprintln!("fleet: worker {worker_id} lost ({err}); re-dispatching {shard_len} placements");
}

/// Round-trip-time histogram edges: log-spaced 1ms – 10s, upper
/// bounds inclusive, everything slower in the overflow bucket.
const RTT_EDGES: [f64; 9] = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0];

fn unit_telemetry(worker_id: u32, size: usize, latency_s: f64) {
    mars_telemetry::counter("net.units_completed").inc();
    mars_telemetry::gauge("net.unit_latency_s", latency_s);
    mars_telemetry::histogram("net.rtt_s", &RTT_EDGES).observe(latency_s);
    if mars_telemetry::active() {
        mars_telemetry::event(
            "net.unit",
            &[
                ("worker", (worker_id as f64).into()),
                ("placements", (size as f64).into()),
                ("latency_s", latency_s.into()),
            ],
        );
    }
}

/// A listener on a private rendezvous address for spawned workers:
/// a fresh Unix socket path under the temp dir where available,
/// loopback TCP (kernel-assigned port) otherwise. Returns the
/// listener, the dial address, and the socket file to unlink on drop.
fn private_listener() -> Result<(Listener, Addr, Option<PathBuf>), String> {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    #[cfg(unix)]
    {
        let nonce = NONCE.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("mars-fleet-{}-{nonce}.sock", std::process::id()));
        let addr = Addr::Unix(path.clone());
        let listener = Listener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        Ok((listener, addr, Some(path)))
    }
    #[cfg(not(unix))]
    {
        let _ = &NONCE;
        let listener = std::net::TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("cannot bind loopback: {e}"))?;
        let addr = Addr::Tcp(
            listener.local_addr().map_err(|e| format!("no local addr: {e}"))?.to_string(),
        );
        Ok((Listener::Tcp(listener), addr, None))
    }
}

fn cleanup(children: &mut Vec<Child>, socket_path: &Option<PathBuf>) {
    for c in children.iter_mut() {
        let _ = c.kill();
    }
    reap(children);
    if let Some(path) = socket_path {
        let _ = std::fs::remove_file(path);
    }
}

/// Wait for children with a deadline; anything still alive after it is
/// killed (a worker that ignores both `Shutdown` and EOF is wedged).
fn reap(children: &mut Vec<Child>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    for c in children.iter_mut() {
        loop {
            match c.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    let _ = c.kill();
                    let _ = c.wait();
                    break;
                }
            }
        }
    }
    children.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_contiguous_and_balanced() {
        let pending: Vec<usize> = (0..10).collect();
        let shards = FleetBackend::shards(&pending, 3);
        assert_eq!(shards, vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        let shards = FleetBackend::shards(&pending, 4);
        assert_eq!(shards.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 3, 2, 2]);
        let one = FleetBackend::shards(&pending[..1], 4);
        assert_eq!(one.iter().map(Vec::len).sum::<usize>(), 1);
        assert_eq!(one[0], vec![0]);
    }

    #[test]
    fn version_mismatch_is_refused() {
        let (mut learner_end, mut worker_end) = Conn::pair().expect("pair");
        let t = std::thread::spawn(move || {
            send_msg(&mut worker_end, &Msg::Hello { version: PROTOCOL_VERSION + 1 })
                .expect("send hello");
            recv_msg(&mut worker_end)
        });
        let setup = crate::worker::tests_setup();
        let err = handshake(&mut learner_end, 0, &setup).expect_err("must refuse");
        assert!(err.contains("version mismatch"), "{err}");
        let refusal = t.join().expect("worker thread").expect("recv");
        assert!(matches!(refusal, Some(Msg::Error { .. })), "{refusal:?}");
    }
}
