//! The worker side of the fleet: a pure evaluation server.
//!
//! A worker rebuilds the learner's environment from the `Welcome`
//! handshake, then answers `Work` units by computing each placement
//! with [`SimEnv::compute`] — the pure phase only. It never samples,
//! never normalizes, never touches the cache, and never fires fault
//! plans: everything order-sensitive stays at the learner, which is
//! what makes worker count invisible in the trace.

use crate::msg::{EnvSetup, Msg, WireSpan, WorkerTelemetry, PROTOCOL_VERSION};
use crate::transport::{recv_msg, send_msg, Addr, Conn};
use mars_graph::generators::{Profile, Workload};
use mars_json::Json;
use mars_sim::{Cluster, FaultPlan, Placement, SimEnv};
use std::time::Instant;

impl EnvSetup {
    /// Rebuild the learner's environment. The graph, cluster, seed,
    /// and measurement knobs fully determine `SimEnv::compute`, so a
    /// worker built from the same setup computes bit-identical
    /// results. The fault plan is installed only to validate it — the
    /// worker's copy never fires (boundary faults arrive as the
    /// `failed_devices` mask on each work unit; commit faults are
    /// applied at the learner's commit point).
    pub fn build_env(&self) -> Result<SimEnv, String> {
        let workload = Workload::parse(&self.workload)
            .ok_or_else(|| format!("unknown workload '{}'", self.workload))?;
        let profile = Profile::parse(&self.profile)
            .ok_or_else(|| format!("unknown profile '{}'", self.profile))?;
        let mut env = SimEnv::new(workload.build(profile), Cluster::p100_quad(), self.seed);
        env.bad_cutoff_s = self.bad_cutoff_s;
        env.invalid_penalty_s = self.invalid_penalty_s;
        env.noise_sigma = self.noise_sigma;
        env.steps_per_eval = self.steps_per_eval;
        env.warmup_steps = self.warmup_steps;
        if !self.fault_plan.is_empty() {
            let plan = FaultPlan::parse(&self.fault_plan)
                .map_err(|e| format!("bad fault plan '{}': {e}", self.fault_plan))?;
            env.set_fault_plan(plan)?;
        }
        Ok(env)
    }
}

/// Connect to a learner at `addr` and serve work units until it hangs
/// up or sends `Shutdown`. This is the whole lifetime of a
/// `train … --connect ADDR` process.
pub fn run(addr: &Addr) -> Result<(), String> {
    let conn = Conn::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    serve(conn, None)
}

/// Serve one learner connection. `unit_limit` is a test hook: after
/// answering that many units the worker drops the connection without
/// replying, simulating a mid-run crash (the determinism tests assert
/// the learner retries cleanly).
pub fn serve(mut conn: Conn, unit_limit: Option<u64>) -> Result<(), String> {
    send_msg(&mut conn, &Msg::Hello { version: PROTOCOL_VERSION })?;
    let (worker_id, telemetry_wanted, setup) = match recv_msg(&mut conn)? {
        Some(Msg::Welcome { version, worker_id, telemetry, setup }) => {
            if version != PROTOCOL_VERSION {
                return Err(format!(
                    "protocol version mismatch: worker {PROTOCOL_VERSION}, learner {version}"
                ));
            }
            (worker_id, telemetry, setup)
        }
        Some(Msg::Error { message }) => return Err(format!("learner refused: {message}")),
        other => return Err(format!("expected welcome, got {other:?}")),
    };
    let mut env = setup.build_env()?;
    // Collect only in a process of our own: in-process worker threads
    // (tests, benches) share the learner's global registries, and
    // installing a recorder here would reset them out from under it.
    let mut collector = (telemetry_wanted && !mars_telemetry::active()).then(Collector::install);
    let mut served: u64 = 0;
    let mut compute_s = 0.0f64;
    let mut idle_s = 0.0f64;
    loop {
        let wait0 = Instant::now();
        match recv_msg(&mut conn)? {
            None | Some(Msg::Shutdown) => return Ok(()),
            Some(Msg::Work { unit, failed_devices, placements }) => {
                idle_s += wait0.elapsed().as_secs_f64();
                if unit_limit.is_some_and(|limit| served >= limit) {
                    // Test hook: vanish mid-run without answering.
                    conn.shutdown();
                    return Ok(());
                }
                served += 1;
                let shard = placements.len();
                let unit_t0 = Instant::now();
                let comps: Vec<_> = {
                    let _span = mars_telemetry::span("net.worker.unit");
                    env.sync_failures(&failed_devices);
                    placements
                        .into_iter()
                        .map(|p| {
                            let t0 = Instant::now();
                            let comp = env.compute(&Placement(p));
                            (comp, t0.elapsed().as_secs_f64())
                        })
                        .collect()
                };
                let unit_compute_s = unit_t0.elapsed().as_secs_f64();
                compute_s += unit_compute_s;
                mars_telemetry::counter("net.worker.units_served").inc();
                mars_telemetry::counter("net.worker.placements_computed").add(comps.len() as u64);
                if let Some(c) = &mut collector {
                    mars_telemetry::event(
                        "net.worker.unit",
                        &[
                            ("unit", (unit as f64).into()),
                            ("placements", (shard as f64).into()),
                            ("compute_s", unit_compute_s.into()),
                        ],
                    );
                    let stats = c.frame(unit, served, shard, compute_s, idle_s);
                    send_msg(&mut conn, &Msg::Telemetry { worker_id, stats })?;
                }
                send_msg(&mut conn, &Msg::Results { unit, comps })?;
            }
            Some(other) => {
                let message = format!("worker {worker_id}: unexpected message {other:?}");
                let _ = send_msg(&mut conn, &Msg::Error { message: message.clone() });
                return Err(message);
            }
        }
    }
}

/// Worker-side telemetry collection: an in-memory recorder capturing
/// this process's events, drained into one [`WorkerTelemetry`] frame
/// per work unit. Span and counter snapshots are shipped cumulative
/// (idempotent — the learner keeps the latest), events incrementally.
/// RAII: dropping the collector uninstalls the recorder, so every
/// `serve` exit path (shutdown, protocol error, crash hook) cleans up.
struct Collector {
    sink: mars_telemetry::MemorySink,
    drained: usize,
    started: Instant,
}

impl Collector {
    fn install() -> Collector {
        Collector { sink: mars_telemetry::install_memory(), drained: 0, started: Instant::now() }
    }

    /// Build the telemetry frame riding along with `unit`'s results.
    fn frame(
        &mut self,
        unit: u64,
        units_served: u64,
        shard: usize,
        compute_s: f64,
        idle_s: f64,
    ) -> WorkerTelemetry {
        let lines = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        let events = lines[self.drained..]
            .iter()
            .filter_map(|l| Json::parse(l).ok())
            .filter(|j| j.get("kind").and_then(Json::as_str) == Some("event"))
            .collect();
        self.drained = lines.len();
        drop(lines);
        WorkerTelemetry {
            unit,
            units_served,
            shard,
            wall_s: self.started.elapsed().as_secs_f64(),
            compute_s,
            idle_s,
            spans: mars_telemetry::spans::snapshot()
                .into_iter()
                .map(|(path, s)| WireSpan {
                    path,
                    count: s.count,
                    total_ns: s.total_ns,
                    self_ns: s.self_ns,
                })
                .collect(),
            counters: mars_telemetry::metrics::counter_snapshot(),
            events,
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        mars_telemetry::uninstall();
    }
}

/// A small reduced-profile setup shared by this crate's tests.
#[cfg(test)]
pub(crate) fn tests_setup() -> EnvSetup {
    EnvSetup {
        workload: "inception_v3".into(),
        profile: "reduced".into(),
        seed: 42,
        fault_plan: String::new(),
        bad_cutoff_s: 20.0,
        invalid_penalty_s: 100.0,
        noise_sigma: 0.03,
        steps_per_eval: 15,
        warmup_steps: 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::FleetBackend;
    use mars_sim::{Environment, EvalBackend};

    #[test]
    fn build_env_rejects_unknown_names() {
        let mut setup = tests_setup();
        setup.workload = "alexnet".into();
        let Err(e) = setup.build_env() else { panic!("unknown workload must be rejected") };
        assert!(e.contains("alexnet"), "{e}");
        let mut setup = tests_setup();
        setup.profile = "huge".into();
        let Err(e) = setup.build_env() else { panic!("unknown profile must be rejected") };
        assert!(e.contains("huge"), "{e}");
        let mut setup = tests_setup();
        setup.fault_plan = "meteor:9".into();
        let Err(e) = setup.build_env() else { panic!("bad plan must be rejected") };
        assert!(e.contains("meteor"), "{e}");
    }

    /// End-to-end over an in-process pair: a fleet of two worker
    /// threads must return exactly what the local pure compute does.
    #[test]
    fn fleet_results_match_local_compute() {
        let setup = tests_setup();
        let env = setup.build_env().expect("env");
        let mut conns = Vec::new();
        let mut threads = Vec::new();
        for _ in 0..2 {
            let (learner_end, worker_end) = Conn::pair().expect("pair");
            conns.push(learner_end);
            threads.push(std::thread::spawn(move || serve(worker_end, None)));
        }
        let mut backend = FleetBackend::over_conns(conns, &setup).expect("fleet");
        assert_eq!(backend.num_workers(), 2);
        assert_eq!(backend.label(), "fleet:2");

        let n = env.graph().num_nodes();
        let placements: Vec<Placement> =
            (0..5).map(|k| Placement((0..n).map(|i| (i + k) % 5).collect())).collect();
        let refs: Vec<&Placement> = placements.iter().collect();
        let local: Vec<_> = refs.iter().map(|p| env.compute(p)).collect();
        let fleet = backend.compute_batch(&env, &refs);
        drop(backend); // shut workers down before joining
        for t in threads {
            t.join().expect("worker thread").expect("worker exits cleanly");
        }
        assert_eq!(fleet.len(), local.len());
        for ((got, _wall), want) in fleet.iter().zip(&local) {
            assert_eq!(got, want, "fleet result diverged from local compute");
        }
    }

    /// A worker that vanishes mid-run is retried, not trusted: the
    /// surviving worker (or the learner itself) recomputes the shard
    /// and the results still match local compute exactly.
    #[test]
    fn lost_worker_shard_is_recomputed_identically() {
        let setup = tests_setup();
        let env = setup.build_env().expect("env");
        let mut conns = Vec::new();
        let mut threads = Vec::new();
        for limit in [Some(0), None] {
            let (learner_end, worker_end) = Conn::pair().expect("pair");
            conns.push(learner_end);
            threads.push(std::thread::spawn(move || serve(worker_end, limit)));
        }
        let lost_before = mars_telemetry::counter("net.worker_lost").get();
        let mut backend = FleetBackend::over_conns(conns, &setup).expect("fleet");

        let n = env.graph().num_nodes();
        let placements: Vec<Placement> =
            (0..4).map(|k| Placement((0..n).map(|i| (i * k) % 5).collect())).collect();
        let refs: Vec<&Placement> = placements.iter().collect();
        let local: Vec<_> = refs.iter().map(|p| env.compute(p)).collect();
        let fleet = backend.compute_batch(&env, &refs);
        assert_eq!(backend.num_workers(), 1, "crashed worker must be dropped");
        assert!(
            mars_telemetry::counter("net.worker_lost").get() > lost_before,
            "loss must be counted"
        );
        drop(backend);
        for t in threads {
            t.join().expect("worker thread").expect("worker exits cleanly");
        }
        for ((got, _wall), want) in fleet.iter().zip(&local) {
            assert_eq!(got, want, "retry diverged from local compute");
        }
    }
}
