//! Generalizability evaluation (Table 3).
//!
//! §4.3: train Mars on a *training workload* until it stops improving
//! for 100 steps, then fine-tune the policy on the *unseen* workload
//! for 100 steps; compare against direct training with the same total
//! step budget.

use crate::agent::{Agent, AgentKind, TrainingLog};
use crate::config::MarsConfig;
use crate::workload_input::WorkloadInput;
use mars_graph::features::FEATURE_DIM;
use mars_graph::generators::{Profile, Workload};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use mars_sim::{Cluster, SimEnv};

/// Result of one generalization run.
pub struct GeneralizeResult {
    /// Best per-step time found on the unseen workload (seconds).
    pub best_s: Option<f64>,
    /// Samples spent on the training workload.
    pub train_samples: usize,
    /// Samples spent fine-tuning on the unseen workload.
    pub finetune_samples: usize,
}

/// Train on `train_w` until no improvement for `patience` samples (or
/// `max_train_samples`), then fine-tune on `test_w` for
/// `finetune_samples`. Returns the fine-tuned best on `test_w`.
#[allow(clippy::too_many_arguments)]
pub fn generalize(
    cfg: &MarsConfig,
    train_w: Workload,
    test_w: Workload,
    profile: Profile,
    max_train_samples: usize,
    patience: usize,
    finetune_samples: usize,
    seed: u64,
) -> GeneralizeResult {
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);

    let train_graph = train_w.build(profile);
    let train_input = WorkloadInput::from_graph(&train_graph);
    let mut agent =
        Agent::new(AgentKind::Mars, cfg.clone(), FEATURE_DIM, cluster.num_devices(), &mut rng);
    agent.pretrain(&train_input, &mut rng);

    // Phase 1: source-workload training with early stopping.
    let mut env = SimEnv::new(train_graph, cluster.clone(), seed ^ 0x5151);
    let mut log = TrainingLog::default();
    let mut last_best: Option<f64> = None;
    let mut stale_samples = 0usize;
    while log.total_samples < max_train_samples && stale_samples < patience {
        let target = log.total_samples + cfg.samples_per_update;
        agent.train(&mut env, &train_input, target.min(max_train_samples), &mut rng, &mut log);
        if log.best_reading_s == last_best {
            stale_samples += cfg.samples_per_update;
        } else {
            stale_samples = 0;
            last_best = log.best_reading_s;
        }
    }
    let train_samples = log.total_samples;

    // Phase 2: fine-tune on the unseen workload.
    let test_graph = test_w.build(profile);
    let test_input = WorkloadInput::from_graph(&test_graph);
    let mut test_env = SimEnv::new(test_graph, cluster, seed ^ 0xFEFE);
    let mut ft_log = TrainingLog::default();
    agent.train(&mut test_env, &test_input, finetune_samples, &mut rng, &mut ft_log);

    GeneralizeResult {
        best_s: ft_log.best_reading_s,
        train_samples,
        finetune_samples: ft_log.total_samples,
    }
}

/// Direct training on `test_w` with the same total budget (the Table 3
/// "Direct training" column): total = source samples + fine-tune
/// samples, all spent on the target workload.
pub fn direct(
    cfg: &MarsConfig,
    test_w: Workload,
    profile: Profile,
    total_samples: usize,
    seed: u64,
) -> Option<f64> {
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = test_w.build(profile);
    let input = WorkloadInput::from_graph(&graph);
    let mut agent =
        Agent::new(AgentKind::Mars, cfg.clone(), FEATURE_DIM, cluster.num_devices(), &mut rng);
    agent.pretrain(&input, &mut rng);
    let mut env = SimEnv::new(graph, cluster, seed ^ 0x5151);
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, total_samples, &mut rng, &mut log);
    log.best_reading_s
}

/// Train one agent over a *set* of workloads, round-robin (§4.3: "the
/// state-of-the-arts generalize the agent by training it over a set of
/// workloads"). Returns the agent plus one [`TrainingLog`] per
/// workload. The encoder is DGI-pre-trained on the first workload.
pub fn train_over_set(
    cfg: &MarsConfig,
    workloads: &[Workload],
    profile: Profile,
    samples_per_round: usize,
    rounds: usize,
    seed: u64,
) -> (Agent, Vec<TrainingLog>) {
    assert!(!workloads.is_empty());
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent =
        Agent::new(AgentKind::Mars, cfg.clone(), FEATURE_DIM, cluster.num_devices(), &mut rng);

    let inputs: Vec<WorkloadInput> =
        workloads.iter().map(|w| WorkloadInput::from_graph(&w.build(profile))).collect();
    agent.pretrain(&inputs[0], &mut rng);

    let mut envs: Vec<SimEnv> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| SimEnv::new(w.build(profile), cluster.clone(), seed ^ (i as u64 * 131)))
        .collect();
    let mut logs: Vec<TrainingLog> = workloads.iter().map(|_| TrainingLog::default()).collect();

    for _round in 0..rounds {
        for (i, input) in inputs.iter().enumerate() {
            let target = logs[i].total_samples + samples_per_round;
            agent.train(&mut envs[i], input, target, &mut rng, &mut logs[i]);
        }
    }
    (agent, logs)
}

/// Table 3's pairing: the "similar type" training workload per unseen
/// workload (VGG16 → Inception, seq2seq → GNMT, Transformer → BERT).
pub fn similar_source(test_w: Workload) -> Workload {
    match test_w {
        Workload::InceptionV3 => Workload::Vgg16,
        Workload::Gnmt4 => Workload::Seq2Seq,
        Workload::BertBase => Workload::Transformer,
        Workload::Vgg16 => Workload::InceptionV3,
        Workload::Seq2Seq => Workload::Gnmt4,
        Workload::Transformer => Workload::BertBase,
        Workload::Resnet50 => Workload::InceptionV3,
        Workload::Gpt2Small => Workload::Transformer,
    }
}

/// Table 3's pairing: the "different type" training workload
/// (GNMT-4 → Inception, Inception → GNMT, VGG16 → BERT).
pub fn different_source(test_w: Workload) -> Workload {
    match test_w {
        Workload::InceptionV3 => Workload::Gnmt4,
        Workload::Gnmt4 => Workload::InceptionV3,
        Workload::BertBase => Workload::Vgg16,
        Workload::Vgg16 => Workload::Gnmt4,
        Workload::Seq2Seq => Workload::InceptionV3,
        Workload::Transformer => Workload::Vgg16,
        Workload::Resnet50 => Workload::Seq2Seq,
        Workload::Gpt2Small => Workload::InceptionV3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_pairings_match_paper() {
        // "we choose VGG16, sequence-to-sequence and transformer as
        // training workload respectively; GNMT-4, Inception-V3 and
        // VGG16 are selected for generalizing to a different type".
        assert_eq!(similar_source(Workload::InceptionV3), Workload::Vgg16);
        assert_eq!(similar_source(Workload::Gnmt4), Workload::Seq2Seq);
        assert_eq!(similar_source(Workload::BertBase), Workload::Transformer);
        assert_eq!(different_source(Workload::InceptionV3), Workload::Gnmt4);
        assert_eq!(different_source(Workload::Gnmt4), Workload::InceptionV3);
        assert_eq!(different_source(Workload::BertBase), Workload::Vgg16);
    }

    #[test]
    fn multi_workload_training_covers_every_workload() {
        let mut cfg = MarsConfig::small();
        cfg.encoder_hidden = 16;
        cfg.placer_hidden = 16;
        cfg.attn_dim = 8;
        cfg.segment_size = 16;
        cfg.dgi_iters = 10;
        let (_agent, logs) = train_over_set(
            &cfg,
            &[Workload::Vgg16, Workload::InceptionV3],
            Profile::Reduced,
            20,
            2,
            9,
        );
        assert_eq!(logs.len(), 2);
        for (i, log) in logs.iter().enumerate() {
            assert_eq!(log.total_samples, 40, "workload {i}");
            assert!(log.best_reading_s.is_some(), "workload {i} found nothing");
        }
    }

    #[test]
    fn generalization_produces_a_valid_result_quickly() {
        let mut cfg = MarsConfig::small();
        cfg.encoder_hidden = 16;
        cfg.placer_hidden = 16;
        cfg.attn_dim = 8;
        cfg.segment_size = 16;
        cfg.dgi_iters = 10;
        let r = generalize(
            &cfg,
            Workload::Vgg16,
            Workload::InceptionV3,
            Profile::Reduced,
            40,
            40,
            40,
            3,
        );
        assert!(r.best_s.is_some(), "fine-tuning must find a valid placement");
        assert!(r.finetune_samples == 40);
    }
}
