//! A classical graph-partitioning baseline (the "Scotch" family the
//! paper's §2 discusses: "they fail to achieve satisfactory results, as
//! they require the construction of a cost model for a graph").
//!
//! This is a balanced min-edge-cut partitioner: contiguous growth along
//! the topological order balanced by compute cost, followed by
//! Kernighan–Lin-style boundary refinement minimizing cut bytes under
//! memory constraints. It optimizes the *proxy* objective (cut bytes +
//! balance), not the true makespan — which is precisely the weakness
//! the RL approach addresses. The `ablation_partitioner` bench
//! quantifies the gap.

use mars_graph::CompGraph;
use mars_sim::{check_memory, Cluster, DeviceId, Placement};

/// Partition `graph` over the cluster's GPUs into compute-balanced
/// contiguous blocks, then refine the boundaries to reduce cut bytes.
///
/// `k` limits the number of GPUs used (clamped to the available GPUs);
/// memory feasibility is enforced throughout. Returns `None` if not
/// even the initial balanced split fits.
pub fn min_cut_placement(graph: &CompGraph, cluster: &Cluster, k: usize) -> Option<Placement> {
    let gpus: Vec<DeviceId> = cluster.gpu_ids();
    let k = k.clamp(1, gpus.len());
    let order = graph.topo_order().expect("DAG");

    // 1. Contiguous compute-balanced split along the topological order.
    let total: f64 = graph.total_flops().max(1.0);
    let target = total / k as f64;
    let mut assignment = vec![gpus[0]; graph.num_nodes()];
    let mut part = 0usize;
    let mut acc = 0.0;
    for &n in &order {
        if acc >= target && part + 1 < k {
            part += 1;
            acc = 0.0;
        }
        assignment[n] = gpus[part];
        acc += graph.node(n).flops;
    }
    let mut placement = Placement(assignment);
    placement.enforce_compatibility(graph, cluster);
    check_memory(graph, &placement, cluster).ok()?;

    // 2. KL-style refinement: greedily move boundary nodes to the
    //    neighboring partition with the largest cut-byte gain, while
    //    memory stays feasible.
    let mut mem_used = vec![0u64; cluster.num_devices()];
    for (i, nd) in graph.nodes().iter().enumerate() {
        mem_used[placement.device(i)] += nd.param_bytes + nd.activation_bytes;
    }
    let in_edges = graph.in_edges();
    let out_edges = graph.out_edges();

    for _pass in 0..4 {
        let mut improved = false;
        for i in 0..graph.num_nodes() {
            if !graph.node(i).gpu_compatible {
                continue;
            }
            let cur = placement.device(i);
            // Candidate devices: those of the node's neighbors.
            let mut candidates: Vec<DeviceId> = in_edges[i]
                .iter()
                .map(|&e| placement.device(graph.edges()[e].src))
                .chain(out_edges[i].iter().map(|&e| placement.device(graph.edges()[e].dst)))
                .filter(|&d| d != cur && gpus.contains(&d))
                .collect();
            candidates.sort_unstable();
            candidates.dedup();

            let cut_with = |dev: DeviceId| -> i64 {
                let mut cut = 0i64;
                for &e in in_edges[i].iter() {
                    let edge = graph.edges()[e];
                    if placement.device(edge.src) != dev {
                        cut += edge.bytes as i64;
                    }
                }
                for &e in out_edges[i].iter() {
                    let edge = graph.edges()[e];
                    if placement.device(edge.dst) != dev {
                        cut += edge.bytes as i64;
                    }
                }
                cut
            };
            let base_cut = cut_with(cur);
            let node_mem = graph.node(i).param_bytes + graph.node(i).activation_bytes;
            let mut best: Option<(DeviceId, i64)> = None;
            for d in candidates {
                if mem_used[d] + node_mem > cluster.device(d).memory_bytes {
                    continue;
                }
                let gain = base_cut - cut_with(d);
                if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some((d, gain));
                }
            }
            if let Some((d, _)) = best {
                mem_used[cur] -= node_mem;
                mem_used[d] += node_mem;
                placement.0[i] = d;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    check_memory(graph, &placement, cluster).ok()?;
    Some(placement)
}

/// Best `min_cut_placement` over all feasible GPU counts, scored by the
/// partitioner's own proxy (cut bytes) — as a cost-model-driven solver
/// would do, *without* access to the true simulator.
pub fn best_min_cut(graph: &CompGraph, cluster: &Cluster) -> Option<Placement> {
    let mut best: Option<(Placement, u64)> = None;
    for k in 1..=cluster.gpu_ids().len() {
        if let Some(p) = min_cut_placement(graph, cluster, k) {
            let cut = p.cut_bytes(graph);
            if best.as_ref().is_none_or(|(_, c)| cut < *c) {
                best = Some((p, cut));
            }
        }
    }
    best.map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::generators::{Profile, Workload};
    use mars_sim::SimEnv;

    #[test]
    fn produces_memory_feasible_placements() {
        let c = Cluster::p100_quad();
        for w in [Workload::InceptionV3, Workload::Gnmt4, Workload::BertBase] {
            let g = w.build(Profile::Reduced);
            let p = best_min_cut(&g, &c)
                .unwrap_or_else(|| panic!("{}: partitioner found nothing", w.name()));
            assert!(check_memory(&g, &p, &c).is_ok(), "{}", w.name());
        }
    }

    #[test]
    fn refinement_reduces_cut_bytes() {
        let c = Cluster::p100_quad();
        let g = Workload::BertBase.build(Profile::Reduced);
        // Initial blocked split for comparison.
        let mut blocked = Placement::blocked(&g, &[1, 2, 3]);
        blocked.enforce_compatibility(&g, &c);
        let refined = min_cut_placement(&g, &c, 3).expect("feasible");
        assert!(
            refined.cut_bytes(&g) <= blocked.cut_bytes(&g),
            "refined {} > blocked {}",
            refined.cut_bytes(&g),
            blocked.cut_bytes(&g)
        );
    }

    #[test]
    fn partitioner_is_valid_but_not_optimal_on_gnmt() {
        // The paper's argument: cut-based partitioning runs, but its
        // proxy objective leaves makespan on the table vs. what the
        // simulator-aware search finds (round-robin pipelining).
        let c = Cluster::p100_quad();
        let g = Workload::Gnmt4.build(Profile::Reduced);
        let env = SimEnv::new(g.clone(), c.clone(), 0);
        let p = best_min_cut(&g, &c).expect("feasible");
        let t = env.true_step_time(&p).expect("valid").makespan_s;
        let mut rr = Placement::round_robin(&g, &[1, 2, 3, 4]);
        rr.enforce_compatibility(&g, &c);
        let t_rr = env.true_step_time(&rr).expect("valid").makespan_s;
        assert!(t > t_rr, "min-cut {t} should trail the pipelined placement {t_rr}");
    }
}
