//! Hyper-parameters.
//!
//! [`MarsConfig::paper`] uses the values from §4.2 of the paper
//! (256-unit GCN, 512-unit LSTMs, segment 128, 1000 DGI iterations).
//! [`MarsConfig::small`] scales widths down for CPU-only experiment
//! runs; code paths are identical.

use crate::ppo::RewardShaping;

/// All hyper-parameters of the agent and its training.
#[derive(Clone, Debug)]
pub struct MarsConfig {
    /// GCN hidden width (paper: 256).
    pub encoder_hidden: usize,
    /// Number of GCN layers (paper: 3).
    pub encoder_layers: usize,
    /// Placer LSTM hidden width (paper: 512).
    pub placer_hidden: usize,
    /// Attention scoring width.
    pub attn_dim: usize,
    /// Segment length for segment-level placers (paper: 128).
    pub segment_size: usize,
    /// Number of groups for the Grouper-Placer baseline (Hierarchical
    /// Planner uses 256 groups at paper scale).
    pub num_groups: usize,

    /// Adam learning rate (paper: 3e-4).
    pub lr: f32,
    /// PPO clip ratio ε (paper: 0.2).
    pub clip_eps: f32,
    /// Entropy bonus coefficient (paper: 0.001).
    pub entropy_coef: f32,
    /// Global gradient-norm clip (paper: 1.0).
    pub grad_clip: f32,
    /// EMA baseline decay μ (paper: 0.99).
    pub baseline_mu: f32,
    /// Reward shaping (paper: `R = −√t`, Eq. 7).
    pub reward_shaping: RewardShaping,

    /// Placements sampled per policy update (paper: 20 = 2 rounds × 10).
    pub samples_per_update: usize,
    /// Minibatches per epoch (paper: 4).
    pub minibatches: usize,
    /// PPO epochs per update (paper: 3).
    pub ppo_epochs: usize,

    /// DGI pre-training iterations (paper: 1000).
    pub dgi_iters: usize,
    /// DGI pre-training learning rate.
    pub dgi_lr: f32,
    /// Maximum graphs packed per batched encoder pass (`1` = per-graph
    /// encoding). `>= 2` routes DGI through the block-diagonal
    /// `spmm_blockdiag` corpus path when the encoder supports it —
    /// never changes results, only per-iteration overhead.
    pub encode_batch: usize,

    /// Threads used to evaluate each round's sampled placements
    /// (calling thread included). Never changes results — evaluation is
    /// pure and outcomes commit in sample order (see `mars_sim`).
    pub eval_threads: usize,
    /// Memoize placement evaluations in the environment's LRU cache.
    /// Cache hits replay the stored outcome and machine-time cost bit
    /// for bit, so this too changes wall-clock only.
    pub eval_cache: bool,

    /// Retries allowed per evaluation after an injected transient
    /// error (bounded exponential backoff; see `mars_sim::RetryPolicy`).
    pub max_eval_retries: u32,
    /// Per-evaluation machine-time budget in seconds: retries beyond
    /// this are abandoned and the evaluation reads as the cutoff.
    pub eval_timeout_s: f64,
    /// Checkpoint path used to resume through injected agent crashes.
    /// `None` keeps the checkpoint in memory (still a full
    /// save-and-reload roundtrip, so resume stays bit-exact).
    pub auto_checkpoint: Option<String>,

    /// Rollout worker processes evaluating placements over the fleet
    /// wire protocol (0 = in-process). Like `eval_threads`, this never
    /// changes results: workers run only the pure compute phase, and
    /// the learner commits outcomes serially in sample order (see
    /// `mars_net`).
    pub workers: usize,
}

impl MarsConfig {
    /// The paper's hyper-parameters (§4.2).
    pub fn paper() -> Self {
        MarsConfig {
            encoder_hidden: 256,
            encoder_layers: 3,
            placer_hidden: 512,
            attn_dim: 256,
            segment_size: 128,
            num_groups: 256,
            lr: 3e-4,
            clip_eps: 0.2,
            entropy_coef: 0.001,
            grad_clip: 1.0,
            baseline_mu: 0.99,
            reward_shaping: RewardShaping::NegSqrt,
            samples_per_update: 20,
            minibatches: 4,
            ppo_epochs: 3,
            dgi_iters: 1000,
            dgi_lr: 1e-3,
            encode_batch: 1,
            eval_threads: 1,
            eval_cache: true,
            max_eval_retries: 3,
            eval_timeout_s: 300.0,
            auto_checkpoint: None,
            workers: 0,
        }
    }

    /// Reduced widths for CPU-only experiment runs (identical code
    /// paths; see DESIGN.md §2).
    pub fn small() -> Self {
        MarsConfig {
            encoder_hidden: 48,
            encoder_layers: 3,
            placer_hidden: 48,
            attn_dim: 32,
            segment_size: 32,
            num_groups: 16,
            lr: 1e-3,
            clip_eps: 0.2,
            entropy_coef: 0.001,
            grad_clip: 1.0,
            baseline_mu: 0.99,
            reward_shaping: RewardShaping::NegSqrt,
            samples_per_update: 20,
            minibatches: 4,
            ppo_epochs: 3,
            dgi_iters: 300,
            dgi_lr: 2e-3,
            encode_batch: 1,
            eval_threads: 1,
            eval_cache: true,
            max_eval_retries: 3,
            eval_timeout_s: 300.0,
            auto_checkpoint: None,
            workers: 0,
        }
    }

    /// Resolve a profile from the `MARS_PROFILE` environment variable
    /// (`"full"`/`"paper"` → [`MarsConfig::paper`], anything else →
    /// [`MarsConfig::small`]).
    pub fn from_env() -> Self {
        match std::env::var("MARS_PROFILE").as_deref() {
            Ok("full") | Ok("paper") => Self::paper(),
            _ => Self::small(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_section_4_2() {
        let c = MarsConfig::paper();
        assert_eq!(c.encoder_hidden, 256);
        assert_eq!(c.encoder_layers, 3);
        assert_eq!(c.placer_hidden, 512);
        assert_eq!(c.segment_size, 128);
        assert_eq!(c.lr, 3e-4);
        assert_eq!(c.clip_eps, 0.2);
        assert_eq!(c.entropy_coef, 0.001);
        assert_eq!(c.baseline_mu, 0.99);
        assert_eq!(c.reward_shaping, RewardShaping::NegSqrt);
        assert_eq!(c.samples_per_update, 20);
        assert_eq!(c.minibatches, 4);
        assert_eq!(c.ppo_epochs, 3);
        assert_eq!(c.dgi_iters, 1000);
    }

    #[test]
    fn small_shares_rl_constants() {
        let p = MarsConfig::paper();
        let s = MarsConfig::small();
        assert_eq!(p.clip_eps, s.clip_eps);
        assert_eq!(p.entropy_coef, s.entropy_coef);
        assert_eq!(p.baseline_mu, s.baseline_mu);
        assert!(s.encoder_hidden < p.encoder_hidden);
    }
}
