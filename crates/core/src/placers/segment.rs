//! The Mars placer: segment-level sequence-to-sequence (§3.3, Fig. 6).
//!
//! The op sequence is split into segments of `segment_size`. Each
//! segment is encoded by a bidirectional LSTM whose forward state is
//! carried from the previous segment ("the encoded hidden state of
//! previous segment is used as the initial state of encoding new
//! segment"), then decoded by a unidirectional LSTM (also carried
//! across segments, so the placer "recalls previous decisions"). A
//! context-based input attention over the current segment's encoder
//! outputs feeds each decoding step.

use crate::placers::PlacerNet;
use mars_autograd::Var;
use mars_nn::{Attention, BiLstm, FwdCtx, Linear, LstmCell, ParamStore};
use mars_rng::Rng;

/// Segment-level seq2seq placer with attention.
pub struct SegmentSeq2Seq {
    encoder: BiLstm,
    decoder: LstmCell,
    attn: Attention,
    head: Linear,
    segment_size: usize,
    num_devices: usize,
}

impl SegmentSeq2Seq {
    /// Register parameters. `rep_dim` is the encoder-representation
    /// width, `hidden` the LSTM width (must be even: the BiLSTM halves
    /// it per direction).
    pub fn new(
        store: &mut ParamStore,
        rep_dim: usize,
        hidden: usize,
        attn_dim: usize,
        segment_size: usize,
        num_devices: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(hidden.is_multiple_of(2), "placer hidden width must be even");
        assert!(segment_size > 0);
        let encoder = BiLstm::new(store, "seg.enc", rep_dim, hidden / 2, rng);
        // Decoder input: [encoder output (hidden) ‖ attention context (hidden)].
        let decoder = LstmCell::new(store, "seg.dec", 2 * hidden, hidden, rng);
        let attn = Attention::new(store, "seg.attn", hidden, hidden, attn_dim, rng);
        let head = Linear::new(store, "seg.head", hidden, num_devices, true, rng);
        SegmentSeq2Seq { encoder, decoder, attn, head, segment_size, num_devices }
    }

    /// Segment length `s`.
    pub fn segment_size(&self) -> usize {
        self.segment_size
    }
}

impl PlacerNet for SegmentSeq2Seq {
    fn logits(&self, ctx: &mut FwdCtx<'_>, reps: Var) -> Var {
        let n = ctx.tape.value(reps).rows();
        let mut enc_state = None;
        let mut dec_state = self.decoder.zero_state(ctx);
        let mut logit_rows: Vec<Var> = Vec::with_capacity(n);

        let mut start = 0;
        while start < n {
            let end = (start + self.segment_size).min(n);
            let seg = ctx.tape.slice_rows(reps, start, end);
            // Encode the segment, carrying the forward state.
            let (enc_out, final_state) = self.encoder.run(ctx, seg, enc_state);
            enc_state = Some(final_state);
            let keys = self.attn.precompute(ctx, enc_out);
            // Decode the segment, carrying the decoder state.
            for i in 0..(end - start) {
                let row = ctx.tape.slice_rows(enc_out, i, i + 1);
                let context = self.attn.read(ctx, keys, dec_state.h);
                let dec_in = ctx.tape.concat_cols(row, context);
                dec_state = self.decoder.step(ctx, dec_in, dec_state);
                logit_rows.push(self.head.forward(ctx, dec_state.h));
            }
            start = end;
        }
        ctx.tape.stack_rows(logit_rows)
    }

    fn num_devices(&self) -> usize {
        self.num_devices
    }

    fn name(&self) -> &'static str {
        "seq2seq-segment"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;
    use mars_tensor::init;

    #[test]
    fn logits_shape_with_ragged_last_segment() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        // 10 ops, segment 4 → segments of 4, 4, 2.
        let p = SegmentSeq2Seq::new(&mut store, 6, 8, 4, 4, 5, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let reps = ctx.tape.constant(init::uniform(10, 6, 1.0, &mut rng));
        let l = p.logits(&mut ctx, reps);
        assert_eq!(ctx.tape.value(l).shape(), (10, 5));
        assert!(ctx.tape.value(l).is_finite());
    }

    #[test]
    fn sequence_shorter_than_segment() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let p = SegmentSeq2Seq::new(&mut store, 4, 6, 4, 32, 3, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let reps = ctx.tape.constant(init::uniform(5, 4, 1.0, &mut rng));
        let l = p.logits(&mut ctx, reps);
        assert_eq!(ctx.tape.value(l).shape(), (5, 3));
    }

    #[test]
    fn state_carry_makes_segments_interdependent() {
        // Changing an op in segment 1 must change logits in segment 2
        // (the carried state is the whole point of the design).
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let p = SegmentSeq2Seq::new(&mut store, 4, 8, 4, 4, 3, &mut rng);
        let base = init::uniform(8, 4, 1.0, &mut rng);
        let mut altered = base.clone();
        altered.set(1, 2, altered.get(1, 2) + 1.0); // inside segment 0

        let mut c1 = FwdCtx::new(&store);
        let r1 = c1.tape.constant(base);
        let l1 = p.logits(&mut c1, r1);
        let mut c2 = FwdCtx::new(&store);
        let r2 = c2.tape.constant(altered);
        let l2 = p.logits(&mut c2, r2);

        let seg2_a = c1.tape.value(l1).slice_rows(4, 8);
        let seg2_b = c2.tape.value(l2).slice_rows(4, 8);
        assert!(seg2_a.max_abs_diff(&seg2_b) > 1e-6, "no cross-segment influence");
    }

    #[test]
    fn gradients_flow_through_all_segments() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let p = SegmentSeq2Seq::new(&mut store, 4, 6, 4, 3, 4, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let reps = ctx.tape.constant(init::uniform(7, 4, 1.0, &mut rng));
        let l = p.logits(&mut ctx, reps);
        let loss = ctx.tape.mean_all(l);
        let grads = ctx.into_grads(loss, 1.0);
        assert!(!grads.is_empty());
        let total: f32 = grads.iter().map(|(_, g)| g.frobenius_norm()).sum();
        assert!(total > 0.0);
    }
}
