//! Full-sequence seq2seq placer with attention (Mirhoseini et al. [21],
//! Hierarchical Planner's placer [20]).
//!
//! Encodes the *entire* op sequence with one bidirectional LSTM and
//! decodes device choices with a unidirectional LSTM + attention. §3.3:
//! "As the number of operations increases, it becomes less likely for
//! the sequence-to-sequence placer to encode all of them at once
//! efficiently" — this is the architecture Table 1 shows losing on
//! every benchmark.

use crate::placers::PlacerNet;
use mars_autograd::Var;
use mars_nn::{Attention, BiLstm, FwdCtx, Linear, LstmCell, ParamStore};
use mars_rng::Rng;

/// Classic seq2seq placer over the full sequence.
pub struct FullSeq2Seq {
    encoder: BiLstm,
    decoder: LstmCell,
    attn: Attention,
    head: Linear,
    num_devices: usize,
}

impl FullSeq2Seq {
    /// Register parameters (see [`crate::placers::segment::SegmentSeq2Seq::new`]).
    pub fn new(
        store: &mut ParamStore,
        rep_dim: usize,
        hidden: usize,
        attn_dim: usize,
        num_devices: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(hidden.is_multiple_of(2), "placer hidden width must be even");
        FullSeq2Seq {
            encoder: BiLstm::new(store, "s2s.enc", rep_dim, hidden / 2, rng),
            decoder: LstmCell::new(store, "s2s.dec", 2 * hidden, hidden, rng),
            attn: Attention::new(store, "s2s.attn", hidden, hidden, attn_dim, rng),
            head: Linear::new(store, "s2s.head", hidden, num_devices, true, rng),
            num_devices,
        }
    }
}

impl PlacerNet for FullSeq2Seq {
    fn logits(&self, ctx: &mut FwdCtx<'_>, reps: Var) -> Var {
        let n = ctx.tape.value(reps).rows();
        let (enc_out, _) = self.encoder.run(ctx, reps, None);
        let keys = self.attn.precompute(ctx, enc_out);
        let mut state = self.decoder.zero_state(ctx);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let row = ctx.tape.slice_rows(enc_out, i, i + 1);
            let context = self.attn.read(ctx, keys, state.h);
            let dec_in = ctx.tape.concat_cols(row, context);
            state = self.decoder.step(ctx, dec_in, state);
            rows.push(self.head.forward(ctx, state.h));
        }
        ctx.tape.stack_rows(rows)
    }

    fn num_devices(&self) -> usize {
        self.num_devices
    }

    fn name(&self) -> &'static str {
        "seq2seq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;
    use mars_tensor::init;

    #[test]
    fn logits_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = FullSeq2Seq::new(&mut store, 5, 8, 4, 5, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let reps = ctx.tape.constant(init::uniform(9, 5, 1.0, &mut rng));
        let l = p.logits(&mut ctx, reps);
        assert_eq!(ctx.tape.value(l).shape(), (9, 5));
        assert!(ctx.tape.value(l).is_finite());
    }

    #[test]
    fn attention_sees_whole_sequence() {
        // Changing the LAST op's representation must influence the
        // FIRST op's logits (via the bidirectional encoder).
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let p = FullSeq2Seq::new(&mut store, 4, 6, 4, 3, &mut rng);
        let base = init::uniform(6, 4, 1.0, &mut rng);
        let mut altered = base.clone();
        altered.set(5, 0, altered.get(5, 0) + 1.0);

        let mut c1 = FwdCtx::new(&store);
        let r1 = c1.tape.constant(base);
        let l1 = p.logits(&mut c1, r1);
        let mut c2 = FwdCtx::new(&store);
        let r2 = c2.tape.constant(altered);
        let l2 = p.logits(&mut c2, r2);
        let first_a = mars_tensor::Matrix::row_vector(c1.tape.value(l1).row(0));
        let first_b = mars_tensor::Matrix::row_vector(c2.tape.value(l2).row(0));
        assert!(first_a.max_abs_diff(&first_b) > 1e-7);
    }
}
