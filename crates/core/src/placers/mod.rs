//! Placer networks (§3.3).
//!
//! Every placer maps per-op representations (`N × d`) to per-op device
//! logits (`N × D`). Placements are sampled per-op from the row-wise
//! categorical distribution; PPO re-evaluates the log-probability of
//! sampled actions through the same forward pass.
//!
//! Compared in Table 1:
//! * [`seq2seq::FullSeq2Seq`] — classic full-sequence seq2seq with
//!   attention (struggles on long op sequences);
//! * [`segment::SegmentSeq2Seq`] — **the Mars placer**: segment-level
//!   BiLSTM encoder + LSTM decoder with state carried across segments;
//! * [`trfxl::TrfXlPlacer`] — a Transformer-XL-style segment-recurrent
//!   attention placer (the GDP baseline's placer, "a little heavy");
//! * [`mlp::MlpPlacer`] — the two-layer MLP the paper dismisses
//!   ("easily overfits, gets stuck at a local optimum").

pub mod mlp;
pub mod segment;
pub mod seq2seq;
pub mod trfxl;

use mars_autograd::Var;
use mars_nn::FwdCtx;

/// A network producing per-op device logits.
pub trait PlacerNet {
    /// Compute `N × num_devices` logits from `N × d` representations.
    fn logits(&self, ctx: &mut FwdCtx<'_>, reps: Var) -> Var;
    /// Action-space width.
    fn num_devices(&self) -> usize;
    /// Short name for logs and tables.
    fn name(&self) -> &'static str;
}

/// Which placer architecture to instantiate (Table 1 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacerChoice {
    /// Full-sequence seq2seq.
    Seq2Seq,
    /// Segment-level seq2seq (Mars).
    Segment,
    /// Transformer-XL-style.
    TrfXl,
    /// Two-layer MLP.
    Mlp,
}

impl PlacerChoice {
    /// Canonical column label used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            PlacerChoice::Seq2Seq => "Seq2seq",
            PlacerChoice::Segment => "Seq2seq (segment)",
            PlacerChoice::TrfXl => "Trf-XL",
            PlacerChoice::Mlp => "MLP",
        }
    }
}
