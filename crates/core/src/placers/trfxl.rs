//! Transformer-XL-style placer (the GDP baseline's placer [33, 5]).
//!
//! Segment-level self-attention with a recurrence memory: each segment
//! attends over `[previous segment's hidden states ‖ current segment]`.
//! Substitution note (DESIGN.md §2): this is a single-head, two-block
//! rendering of Transformer-XL — it keeps the property the paper
//! discusses (segment recurrence, heavier than the segment seq2seq,
//! slower to converge) without the full multi-head/relative-position
//! machinery.

use crate::placers::PlacerNet;
use mars_autograd::Var;
use mars_nn::{FwdCtx, Linear, ParamStore};
use mars_rng::Rng;

struct Block {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    ff1: Linear,
    ff2: Linear,
}

impl Block {
    fn new(store: &mut ParamStore, name: &str, hidden: usize, rng: &mut impl Rng) -> Self {
        Block {
            wq: Linear::new(store, &format!("{name}.wq"), hidden, hidden, false, rng),
            wk: Linear::new(store, &format!("{name}.wk"), hidden, hidden, false, rng),
            wv: Linear::new(store, &format!("{name}.wv"), hidden, hidden, false, rng),
            ff1: Linear::new(store, &format!("{name}.ff1"), hidden, 4 * hidden, true, rng),
            ff2: Linear::new(store, &format!("{name}.ff2"), 4 * hidden, hidden, true, rng),
        }
    }

    /// One segment pass: queries from `cur`, keys/values over
    /// `[mem ‖ cur]`. Returns the block output for `cur`'s rows.
    fn forward(&self, ctx: &mut FwdCtx<'_>, cur: Var, mem: Option<Var>, inv_sqrt_d: f32) -> Var {
        let kv_src = match mem {
            Some(m) => ctx.tape.concat_rows(m, cur),
            None => cur,
        };
        let q = self.wq.forward(ctx, cur);
        let k = self.wk.forward(ctx, kv_src);
        let v = self.wv.forward(ctx, kv_src);
        let kt = ctx.tape.transpose(k);
        let scores_raw = ctx.tape.matmul(q, kt);
        let scores = ctx.tape.scale(scores_raw, inv_sqrt_d);
        let attn = ctx.tape.softmax_rows(scores);
        let mixed = ctx.tape.matmul(attn, v);
        let resid = ctx.tape.add(mixed, cur);
        let f1 = self.ff1.forward(ctx, resid);
        let act = ctx.tape.relu(f1);
        let f2 = self.ff2.forward(ctx, act);
        ctx.tape.add(f2, resid)
    }
}

/// Segment-recurrent attention placer.
pub struct TrfXlPlacer {
    in_proj: Linear,
    blocks: Vec<Block>,
    head: Linear,
    hidden: usize,
    segment_size: usize,
    num_devices: usize,
}

impl TrfXlPlacer {
    /// Register parameters; two attention blocks of width `hidden`.
    pub fn new(
        store: &mut ParamStore,
        rep_dim: usize,
        hidden: usize,
        segment_size: usize,
        num_devices: usize,
        rng: &mut impl Rng,
    ) -> Self {
        TrfXlPlacer {
            in_proj: Linear::new(store, "txl.in", rep_dim, hidden, true, rng),
            blocks: vec![
                Block::new(store, "txl.b0", hidden, rng),
                Block::new(store, "txl.b1", hidden, rng),
            ],
            head: Linear::new(store, "txl.head", hidden, num_devices, true, rng),
            hidden,
            segment_size,
            num_devices,
        }
    }
}

impl PlacerNet for TrfXlPlacer {
    fn logits(&self, ctx: &mut FwdCtx<'_>, reps: Var) -> Var {
        let n = ctx.tape.value(reps).rows();
        let inv_sqrt_d = 1.0 / (self.hidden as f32).sqrt();
        // Memory per block: previous segment's output of that block.
        let mut mems: Vec<Option<Var>> = vec![None; self.blocks.len()];
        let mut out_rows: Vec<Var> = Vec::with_capacity(n);

        let mut start = 0;
        while start < n {
            let end = (start + self.segment_size).min(n);
            let seg = ctx.tape.slice_rows(reps, start, end);
            let mut h = self.in_proj.forward(ctx, seg);
            h = ctx.tape.tanh(h);
            for (bi, block) in self.blocks.iter().enumerate() {
                let out = block.forward(ctx, h, mems[bi], inv_sqrt_d);
                mems[bi] = Some(out);
                h = out;
            }
            let logits = self.head.forward(ctx, h);
            for i in 0..(end - start) {
                out_rows.push(ctx.tape.slice_rows(logits, i, i + 1));
            }
            start = end;
        }
        ctx.tape.stack_rows(out_rows)
    }

    fn num_devices(&self) -> usize {
        self.num_devices
    }

    fn name(&self) -> &'static str {
        "trf-xl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;
    use mars_tensor::init;

    #[test]
    fn logits_shape_multiple_segments() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = TrfXlPlacer::new(&mut store, 5, 8, 4, 5, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let reps = ctx.tape.constant(init::uniform(11, 5, 1.0, &mut rng));
        let l = p.logits(&mut ctx, reps);
        assert_eq!(ctx.tape.value(l).shape(), (11, 5));
        assert!(ctx.tape.value(l).is_finite());
    }

    #[test]
    fn memory_links_segments() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let p = TrfXlPlacer::new(&mut store, 4, 8, 4, 3, &mut rng);
        let base = init::uniform(8, 4, 1.0, &mut rng);
        let mut altered = base.clone();
        altered.set(0, 0, altered.get(0, 0) + 1.0); // segment 0

        let mut c1 = FwdCtx::new(&store);
        let r1 = c1.tape.constant(base);
        let l1 = p.logits(&mut c1, r1);
        let mut c2 = FwdCtx::new(&store);
        let r2 = c2.tape.constant(altered);
        let l2 = p.logits(&mut c2, r2);
        let s2a = c1.tape.value(l1).slice_rows(4, 8);
        let s2b = c2.tape.value(l2).slice_rows(4, 8);
        assert!(s2a.max_abs_diff(&s2b) > 1e-7, "memory not linking segments");
    }

    #[test]
    fn heavier_than_segment_seq2seq() {
        // The paper calls Trf-XL "a little heavy" — check it carries
        // more parameters than the segment seq2seq at equal width.
        let mut rng = StdRng::seed_from_u64(2);
        let mut s1 = ParamStore::new();
        let _ = TrfXlPlacer::new(&mut s1, 16, 32, 8, 5, &mut rng);
        let mut s2 = ParamStore::new();
        let _ = crate::placers::segment::SegmentSeq2Seq::new(&mut s2, 16, 32, 16, 8, 5, &mut rng);
        assert!(
            s1.num_scalars() > s2.num_scalars(),
            "{} vs {}",
            s1.num_scalars(),
            s2.num_scalars()
        );
    }
}
