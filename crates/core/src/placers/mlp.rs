//! Two-layer MLP placer — the "simplest placer" the paper evaluates
//! and rejects (§3.3: "it easily overfits, gets stuck at a local
//! optimum and can never find a good placement").
//!
//! Kept as an ablation point: it scores each op independently, so it
//! cannot coordinate decisions across the sequence.

use crate::placers::PlacerNet;
use mars_autograd::Var;
use mars_nn::{FwdCtx, Linear, ParamStore};
use mars_rng::Rng;

/// Per-op two-layer MLP.
pub struct MlpPlacer {
    fc1: Linear,
    fc2: Linear,
    num_devices: usize,
}

impl MlpPlacer {
    /// Register parameters.
    pub fn new(
        store: &mut ParamStore,
        rep_dim: usize,
        hidden: usize,
        num_devices: usize,
        rng: &mut impl Rng,
    ) -> Self {
        MlpPlacer {
            fc1: Linear::new(store, "mlp.fc1", rep_dim, hidden, true, rng),
            fc2: Linear::new(store, "mlp.fc2", hidden, num_devices, true, rng),
            num_devices,
        }
    }
}

impl PlacerNet for MlpPlacer {
    fn logits(&self, ctx: &mut FwdCtx<'_>, reps: Var) -> Var {
        let h = self.fc1.forward(ctx, reps);
        let a = ctx.tape.relu(h);
        self.fc2.forward(ctx, a)
    }

    fn num_devices(&self) -> usize {
        self.num_devices
    }

    fn name(&self) -> &'static str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;
    use mars_tensor::init;

    #[test]
    fn logits_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = MlpPlacer::new(&mut store, 6, 12, 5, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let reps = ctx.tape.constant(init::uniform(7, 6, 1.0, &mut rng));
        let l = p.logits(&mut ctx, reps);
        assert_eq!(ctx.tape.value(l).shape(), (7, 5));
    }

    #[test]
    fn per_op_independence() {
        // The defining weakness: op i's logits ignore every other op.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let p = MlpPlacer::new(&mut store, 4, 8, 3, &mut rng);
        let base = init::uniform(5, 4, 1.0, &mut rng);
        let mut altered = base.clone();
        altered.set(4, 0, altered.get(4, 0) + 1.0);
        let mut c1 = FwdCtx::new(&store);
        let r1 = c1.tape.constant(base);
        let l1 = p.logits(&mut c1, r1);
        let mut c2 = FwdCtx::new(&store);
        let r2 = c2.tape.constant(altered);
        let l2 = p.logits(&mut c2, r2);
        for r in 0..4 {
            assert_eq!(c1.tape.value(l1).row(r), c2.tape.value(l2).row(r));
        }
        assert_ne!(c1.tape.value(l1).row(4), c2.tape.value(l2).row(4));
    }
}
