//! Pre-extracted encoder input for one workload.

use mars_graph::features::{node_features, normalized_adjacency};
use mars_graph::CompGraph;
use mars_tensor::ops::CsrMatrix;
use mars_tensor::Matrix;
use std::sync::Arc;

/// Node features + normalized adjacency, computed once per workload.
#[derive(Clone)]
pub struct WorkloadInput {
    /// `N × FEATURE_DIM` node features (one-hot kind + normalized costs).
    pub features: Matrix,
    /// Symmetrically-normalized adjacency with self-loops.
    pub adj: Arc<CsrMatrix>,
    /// Number of operations.
    pub num_ops: usize,
}

impl WorkloadInput {
    /// Extract from a computational graph.
    pub fn from_graph(graph: &CompGraph) -> Self {
        let features = node_features(graph);
        let adj = normalized_adjacency(graph);
        WorkloadInput { num_ops: features.rows(), features, adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::generators::{Profile, Workload};

    #[test]
    fn dimensions_consistent() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let w = WorkloadInput::from_graph(&g);
        assert_eq!(w.num_ops, g.num_nodes());
        assert_eq!(w.features.rows(), w.num_ops);
        assert_eq!(w.adj.rows(), w.num_ops);
        assert_eq!(w.adj.cols(), w.num_ops);
    }
}
