//! Deep Graph Infomax contrastive pre-training (§3.2, Fig. 5).
//!
//! Positive sample: the workload graph itself. Negative sample: the
//! same graph with node features permuted (Eq. 2). A mean readout
//! summarizes the graph (Eq. 4), a bilinear discriminator scores
//! local–global pairs (Eq. 5), and the Jensen–Shannon/BCE objective
//! (Eq. 6) pushes real nodes' mutual information with the summary up
//! and shuffled nodes' down.
//!
//! §4.2: "we pre-train the graph encoder with contrastive learning for
//! 1000 iterations and save the parameters corresponding to the lowest
//! loss" — [`pretrain`] restores the best snapshot before returning.

use crate::encoder::Encoder;
use crate::graph_batch::GraphBatch;
use crate::workload_input::WorkloadInput;
use mars_autograd::{Tape, Var};
use mars_nn::{apply_grads, Adam, FwdCtx, ParamId, ParamStore};
use mars_rng::seq::SliceRandom;
use mars_rng::Rng;
use mars_tensor::{init, Matrix};
use std::sync::Arc;

/// The DGI discriminator (bilinear weight) plus the pre-training loop.
pub struct Dgi {
    w: ParamId,
    dim: usize,
}

/// Result of a pre-training run.
pub struct DgiReport {
    /// Loss after every iteration.
    pub losses: Vec<f32>,
    /// Best (lowest) loss seen.
    pub best_loss: f32,
    /// Iteration index of the best loss.
    pub best_iter: usize,
}

impl Dgi {
    /// Register the discriminator for `dim`-wide representations.
    pub fn new(store: &mut ParamStore, dim: usize, rng: &mut impl Rng) -> Self {
        Dgi { w: store.add("dgi.w", init::xavier_uniform(dim, dim, rng)), dim }
    }

    /// Representation width the discriminator expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The contrastive loss for one (positive, negative) pair.
    ///
    /// `perm` is the node permutation producing the corrupted view.
    pub fn loss(
        &self,
        ctx: &mut FwdCtx<'_>,
        encoder: &dyn Encoder,
        input: &WorkloadInput,
        perm: &[usize],
    ) -> Var {
        self.loss_stats(ctx, encoder, input, perm).0
    }

    /// [`Dgi::loss`] plus the discriminator's accuracy: the fraction of
    /// the `2N` local–global pairs it classifies correctly (positive
    /// score > 0, negative score < 0).
    pub fn loss_stats(
        &self,
        ctx: &mut FwdCtx<'_>,
        encoder: &dyn Encoder,
        input: &WorkloadInput,
        perm: &[usize],
    ) -> (Var, f32) {
        let n = input.num_ops;
        assert_eq!(perm.len(), n);

        // Positive view.
        let h_pos = encoder.encode(ctx, input);
        // Corrupted view: same structure, shuffled features (Fig. 5).
        let corrupted = WorkloadInput {
            features: input.features.gather_rows(perm),
            adj: input.adj.clone(),
            num_ops: n,
        };
        let h_neg = encoder.encode(ctx, &corrupted);

        // Readout: s = sigmoid(mean of node representations), Eq. (4).
        let mean = ctx.tape.mean_rows(h_pos);
        let s = ctx.tape.sigmoid(mean); // 1 × d

        // Bilinear scores: H · W · sᵀ, Eq. (5). The sigmoid is folded
        // into the BCE-with-logits loss.
        let w = ctx.p(self.w);
        let st = ctx.tape.transpose(s); // d × 1
        let ws = ctx.tape.matmul(w, st); // d × 1
        let pos_scores = ctx.tape.matmul(h_pos, ws); // N × 1
        let neg_scores = ctx.tape.matmul(h_neg, ws); // N × 1

        let all = ctx.tape.concat_rows(pos_scores, neg_scores); // 2N × 1
        let mut targets = Matrix::zeros(2 * n, 1);
        for i in 0..n {
            targets.set(i, 0, 1.0);
        }
        let loss = ctx.tape.bce_with_logits(all, Arc::new(targets));

        // Discriminator accuracy: the sigmoid crosses 0.5 at logit 0.
        let pos = ctx.tape.value(pos_scores);
        let neg = ctx.tape.value(neg_scores);
        let correct = pos.as_slice().iter().filter(|&&s| s > 0.0).count()
            + neg.as_slice().iter().filter(|&&s| s < 0.0).count();
        let acc = correct as f32 / (2 * n) as f32;
        (loss, acc)
    }

    /// [`Dgi::loss_stats`] over the corpus-batched encoder path: the
    /// positive and corrupted views are packed into one
    /// [`GraphBatch`] (segments `[0, n)` and `[n, 2n)`) and encoded by
    /// a single block-diagonal forward. Returns `None` when `encoder`
    /// has no batched path (nothing is recorded in that case). Loss,
    /// accuracy, and every parameter gradient are bit-identical to
    /// [`Dgi::loss_stats`]: the readout is the fused
    /// `slice_mean_rows` over the positive segment, and the score
    /// product is row-segmented so shared-parameter gradients combine
    /// in the per-graph tape's float-add order.
    pub fn loss_stats_batched(
        &self,
        ctx: &mut FwdCtx<'_>,
        encoder: &dyn Encoder,
        input: &WorkloadInput,
        perm: &[usize],
    ) -> Option<(Var, f32)> {
        let n = input.num_ops;
        assert_eq!(perm.len(), n);

        let corrupted = WorkloadInput {
            features: input.features.gather_rows(perm),
            adj: input.adj.clone(),
            num_ops: n,
        };
        let batch = GraphBatch::pack(&[input, &corrupted]);
        let h = encoder.encode_batch(ctx, &batch)?; // 2N × d

        // Readout over the positive segment only, Eq. (4).
        let mean = ctx.tape.slice_mean_rows(h, 0, n);
        let s = ctx.tape.sigmoid(mean); // 1 × d

        // Bilinear scores for both segments in one row-segmented
        // product, Eq. (5).
        let w = ctx.p(self.w);
        let st = ctx.tape.transpose(s); // d × 1
        let ws = ctx.tape.matmul(w, st); // d × 1
        let all = ctx.tape.matmul_rowseg(h, ws, batch.offsets.clone()); // 2N × 1

        let mut targets = Matrix::zeros(2 * n, 1);
        for i in 0..n {
            targets.set(i, 0, 1.0);
        }
        let loss = ctx.tape.bce_with_logits(all, Arc::new(targets));

        let scores = ctx.tape.value(all);
        let correct = scores.as_slice()[..n].iter().filter(|&&v| v > 0.0).count()
            + scores.as_slice()[n..].iter().filter(|&&v| v < 0.0).count();
        let acc = correct as f32 / (2 * n) as f32;
        Some((loss, acc))
    }
}

/// Run DGI pre-training and restore the lowest-loss parameters.
///
/// `encode_batch >= 2` routes each iteration through the corpus-batched
/// encoder (positive + corrupted view packed into one block-diagonal
/// pass) when the encoder supports it — bit-identical losses and
/// parameter updates to the per-graph path, at a fraction of the
/// per-iteration overhead. The tape persists across iterations either
/// way, so activation and gradient buffers come from the scratch arena
/// after the first update.
#[allow(clippy::too_many_arguments)]
pub fn pretrain(
    store: &mut ParamStore,
    encoder: &dyn Encoder,
    dgi: &Dgi,
    input: &WorkloadInput,
    iters: usize,
    lr: f32,
    grad_clip: f32,
    encode_batch: usize,
    rng: &mut impl Rng,
) -> DgiReport {
    let _span = mars_telemetry::span("core.dgi.pretrain");
    assert!(encode_batch >= 1, "encode_batch must be >= 1");
    let mut adam = Adam::new(lr);
    let mut losses = Vec::with_capacity(iters);
    let mut best_loss = f32::INFINITY;
    let mut best_iter = 0;
    let mut best_snapshot = store.snapshot();
    let mut perm: Vec<usize> = (0..input.num_ops).collect();
    let mut tape: Option<Tape> = None;

    for it in 0..iters {
        perm.shuffle(rng);
        let mut ctx = match tape.take() {
            Some(t) => FwdCtx::with_tape(t, store),
            None => FwdCtx::new(store),
        };
        let batched = if encode_batch >= 2 {
            dgi.loss_stats_batched(&mut ctx, encoder, input, &perm)
        } else {
            None
        };
        let (loss, disc_acc) =
            batched.unwrap_or_else(|| dgi.loss_stats(&mut ctx, encoder, input, &perm));
        let value = ctx.tape.scalar(loss);
        let (grads, mut t) = ctx.into_grads_and_tape(loss, 1.0);
        apply_grads(store, grads);
        t.reset_for_reuse();
        tape = Some(t);
        adam.step(store, grad_clip);
        losses.push(value);
        if mars_telemetry::active() {
            mars_telemetry::event(
                "dgi.iter",
                &[
                    ("iter", (it as f64).into()),
                    ("loss", value.into()),
                    ("disc_acc", disc_acc.into()),
                ],
            );
        }
        if value < best_loss {
            best_loss = value;
            best_iter = it;
            best_snapshot = store.snapshot();
        }
    }
    store.restore(&best_snapshot);
    store.reset_optimizer_state();
    DgiReport { losses, best_loss, best_iter }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::GcnEncoder;
    use mars_graph::features::FEATURE_DIM;
    use mars_graph::generators::{Profile, Workload};
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;

    #[test]
    fn loss_decreases_with_training() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 16, 2, &mut rng);
        let dgi = Dgi::new(&mut store, 16, &mut rng);
        let input = WorkloadInput::from_graph(&Workload::InceptionV3.build(Profile::Reduced));
        let report = pretrain(&mut store, &enc, &dgi, &input, 150, 5e-3, 1.0, 1, &mut rng);
        let first10: f32 = report.losses[..10].iter().sum::<f32>() / 10.0;
        let last10: f32 = report.losses[report.losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(
            last10 < first10 * 0.8,
            "DGI loss did not decrease: first {first10}, last {last10}"
        );
        assert!(report.best_loss <= last10 + 1e-6);
    }

    #[test]
    fn initial_loss_near_chance() {
        // With random parameters the discriminator is at chance:
        // BCE ≈ ln 2 ≈ 0.693.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 8, 2, &mut rng);
        let dgi = Dgi::new(&mut store, 8, &mut rng);
        let input = WorkloadInput::from_graph(&Workload::InceptionV3.build(Profile::Reduced));
        let perm: Vec<usize> = (0..input.num_ops).rev().collect();
        let mut ctx = FwdCtx::new(&store);
        let loss = dgi.loss(&mut ctx, &enc, &input, &perm);
        let v = ctx.tape.scalar(loss);
        assert!((v - 0.693).abs() < 0.1, "initial loss {v}");
    }

    /// The corpus-batched DGI path must reproduce the per-graph path
    /// bit for bit: same per-call loss/accuracy, and identical
    /// parameter streams over a whole training run.
    #[test]
    fn batched_loss_bit_identical_to_per_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 12, 2, &mut rng);
        let dgi = Dgi::new(&mut store, 12, &mut rng);
        let input = WorkloadInput::from_graph(&Workload::InceptionV3.build(Profile::Reduced));
        let perm: Vec<usize> = (0..input.num_ops).rev().collect();

        let mut pctx = FwdCtx::new(&store);
        let (ploss, pacc) = dgi.loss_stats(&mut pctx, &enc, &input, &perm);
        let pvalue = pctx.tape.scalar(ploss);
        let pgrads = pctx.into_grads(ploss, 1.0);

        let mut bctx = FwdCtx::new(&store);
        let (bloss, bacc) =
            dgi.loss_stats_batched(&mut bctx, &enc, &input, &perm).expect("GCN supports batching");
        let bvalue = bctx.tape.scalar(bloss);
        let bgrads = bctx.into_grads(bloss, 1.0);

        assert_eq!(pvalue.to_bits(), bvalue.to_bits(), "loss diverged");
        assert_eq!(pacc, bacc, "accuracy diverged");
        for (id, pg) in &pgrads {
            let bg = &bgrads.iter().find(|(i, _)| i == id).expect("grad present").1;
            let pb: Vec<u32> = pg.as_slice().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = bg.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(pb, bb, "grad for param {id:?} not bit-identical");
        }
    }

    #[test]
    fn batched_pretrain_trace_bit_identical_to_per_graph() {
        let input = WorkloadInput::from_graph(&Workload::InceptionV3.build(Profile::Reduced));
        let run = |encode_batch: usize| -> Vec<u32> {
            let mut rng = StdRng::seed_from_u64(4);
            let mut store = ParamStore::new();
            let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 8, 2, &mut rng);
            let dgi = Dgi::new(&mut store, 8, &mut rng);
            let report =
                pretrain(&mut store, &enc, &dgi, &input, 12, 5e-3, 1.0, encode_batch, &mut rng);
            report.losses.iter().map(|l| l.to_bits()).collect()
        };
        assert_eq!(run(1), run(2), "batched pretrain loss trace diverged from per-graph");
    }

    #[test]
    fn raw_encoder_falls_back_to_per_graph() {
        // An encoder without a batched path must not break pretraining
        // when encode_batch > 1 is requested.
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let enc = crate::encoder::RawEncoder::new(FEATURE_DIM);
        let dgi = Dgi::new(&mut store, FEATURE_DIM, &mut rng);
        let input = WorkloadInput::from_graph(&Workload::InceptionV3.build(Profile::Reduced));
        let report = pretrain(&mut store, &enc, &dgi, &input, 3, 5e-3, 1.0, 4, &mut rng);
        assert_eq!(report.losses.len(), 3);
        assert!(report.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn best_snapshot_restored() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 8, 1, &mut rng);
        let dgi = Dgi::new(&mut store, 8, &mut rng);
        let input = WorkloadInput::from_graph(&Workload::InceptionV3.build(Profile::Reduced));
        let report = pretrain(&mut store, &enc, &dgi, &input, 30, 5e-3, 1.0, 1, &mut rng);
        // Evaluate the restored parameters: their loss must be close to
        // the reported best (same permutation class, modest variance).
        let perm: Vec<usize> = (0..input.num_ops).rev().collect();
        let mut ctx = FwdCtx::new(&store);
        let loss = dgi.loss(&mut ctx, &enc, &input, &perm);
        let v = ctx.tape.scalar(loss);
        assert!(v < report.losses[0] * 1.2, "restored loss {v} vs first {}", report.losses[0]);
    }
}
