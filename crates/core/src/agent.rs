//! The device-placement agent and its joint training loop (§3.4).
//!
//! An [`Agent`] is an encoder + placer pair over one [`ParamStore`],
//! trained end-to-end with PPO against an
//! [`Environment`](mars_sim::Environment). [`AgentKind`] selects
//! between Mars and the baselines of §4.1; Table 1's placer ablation
//! uses [`AgentKind::FixedEncoder`] (trained-then-frozen GCN
//! representations, exactly as the paper evaluates its placers).

use crate::config::MarsConfig;
use crate::dgi::{pretrain, Dgi, DgiReport};
use crate::encoder::{Encoder, GcnEncoder, RawEncoder, SageEncoder};
use crate::grouper::GrouperPlacerNet;
use crate::placers::mlp::MlpPlacer;
use crate::placers::segment::SegmentSeq2Seq;
use crate::placers::seq2seq::FullSeq2Seq;
use crate::placers::trfxl::TrfXlPlacer;
use crate::placers::{PlacerChoice, PlacerNet};
use crate::ppo::{ppo_loss_stats, sample_actions, EmaBaseline, PpoStats, SampleRecord};
use crate::workload_input::WorkloadInput;
use mars_nn::{apply_grads, Adam, FwdCtx, ParamStore};
use mars_rng::rngs::StdRng;
use mars_rng::seq::SliceRandom;
use mars_sim::{Environment, EvalOutcome, Placement};
use mars_tensor::{stats, Matrix};
use std::time::Instant;

/// Which agent architecture to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgentKind {
    /// Mars: GCN encoder (DGI pre-trainable) + segment seq2seq placer.
    Mars,
    /// Mars without self-supervised pre-training (Table 2 ablation).
    MarsNoPretrain,
    /// Encoder-Placer baseline (GDP): GraphSAGE + Transformer-XL.
    EncoderPlacer,
    /// Grouper-Placer baseline (Hierarchical Planner).
    GrouperPlacer,
    /// Trained-then-frozen GCN representations + the chosen placer
    /// (the Table 1 ablation protocol).
    FixedEncoder(PlacerChoice),
}

impl AgentKind {
    /// Display name used in tables and logs.
    pub fn label(self) -> String {
        match self {
            AgentKind::Mars => "Mars".into(),
            AgentKind::MarsNoPretrain => "Mars (no pre-training)".into(),
            AgentKind::EncoderPlacer => "Encoder-Placer".into(),
            AgentKind::GrouperPlacer => "Grouper-Placer".into(),
            AgentKind::FixedEncoder(p) => format!("fixed-encoder + {}", p.label()),
        }
    }
}

/// One record per policy update round.
#[derive(Clone, Debug)]
pub struct TrainingRecord {
    /// Placements sampled so far (the paper's Fig. 7 x-axis).
    pub samples_so_far: usize,
    /// Mean per-step reading of this round's valid samples (seconds).
    pub mean_valid_reading_s: Option<f64>,
    /// Best valid per-step time found so far (seconds).
    pub best_so_far_s: Option<f64>,
    /// Fraction of this round's samples that were valid.
    pub valid_fraction: f64,
    /// Agent-side wall-clock seconds since training started.
    pub agent_wall_s: f64,
    /// Cumulative environment machine-seconds (simulated).
    pub machine_s: f64,
    /// Mean per-op policy entropy (nats) at sampling time — the
    /// exploration budget left in the policy.
    pub policy_entropy: f64,
}

/// Full training trace plus the best placement found.
#[derive(Clone, Debug, Default)]
pub struct TrainingLog {
    /// One record per policy update.
    pub records: Vec<TrainingRecord>,
    /// Best valid placement found during the search.
    pub best_placement: Option<Placement>,
    /// Its measured per-step time.
    pub best_reading_s: Option<f64>,
    /// Wall-clock seconds spent in DGI pre-training (0 if none).
    pub pretrain_wall_s: f64,
    /// Total agent wall-clock seconds (excluding pre-training).
    pub train_wall_s: f64,
    /// Total environment machine-seconds consumed.
    pub machine_s: f64,
    /// Total placements sampled.
    pub total_samples: usize,
}

impl TrainingLog {
    /// Fig-8 style total agent training time: environment machine time
    /// plus agent compute (and pre-training, which needs no machine).
    pub fn total_training_time_s(&self) -> f64 {
        self.machine_s + self.train_wall_s + self.pretrain_wall_s
    }

    /// Samples needed until the best reading came within `slack`
    /// (e.g. 1.05 = 5%) of the final best — a convergence measure.
    pub fn samples_to_converge(&self, slack: f64) -> Option<usize> {
        let best = self.best_reading_s?;
        self.records
            .iter()
            .find(|r| r.best_so_far_s.is_some_and(|b| b <= best * slack))
            .map(|r| r.samples_so_far)
    }
}

/// Encoder + placer + optimizer state.
///
/// ```
/// use mars_core::agent::{Agent, AgentKind, TrainingLog};
/// use mars_core::config::MarsConfig;
/// use mars_core::workload_input::WorkloadInput;
/// use mars_graph::features::FEATURE_DIM;
/// use mars_graph::generators::{Profile, Workload};
/// use mars_sim::{Cluster, SimEnv};
/// use mars_rng::rngs::StdRng;
/// use mars_rng::SeedableRng;
///
/// let graph = Workload::InceptionV3.build(Profile::Reduced);
/// let input = WorkloadInput::from_graph(&graph);
/// let cluster = Cluster::p100_quad();
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut cfg = MarsConfig::small();
/// cfg.dgi_iters = 10; // keep the doctest fast
///
/// let mut agent = Agent::new(AgentKind::Mars, cfg, FEATURE_DIM, cluster.num_devices(), &mut rng);
/// agent.pretrain(&input, &mut rng).expect("Mars has a GCN encoder");
/// let mut env = SimEnv::new(graph, cluster, 0);
/// let mut log = TrainingLog::default();
/// agent.train(&mut env, &input, 40, &mut rng, &mut log);
/// assert_eq!(log.total_samples, 40);
/// assert!(log.best_reading_s.is_some());
/// ```
pub struct Agent {
    /// All trainable parameters.
    pub store: ParamStore,
    encoder: Box<dyn Encoder + Send>,
    pub(crate) placer: Box<dyn PlacerNet + Send>,
    dgi: Option<Dgi>,
    frozen_reps: Option<Matrix>,
    adam: Adam,
    baseline: EmaBaseline,
    /// Hyper-parameters.
    pub cfg: MarsConfig,
    kind: AgentKind,
}

impl Agent {
    /// Build an agent of the given kind.
    pub fn new(
        kind: AgentKind,
        cfg: MarsConfig,
        feature_dim: usize,
        num_devices: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut store = ParamStore::new();
        let (encoder, dgi): (Box<dyn Encoder + Send>, Option<Dgi>) = match kind {
            AgentKind::Mars | AgentKind::MarsNoPretrain | AgentKind::FixedEncoder(_) => {
                let enc = GcnEncoder::new(
                    &mut store,
                    feature_dim,
                    cfg.encoder_hidden,
                    cfg.encoder_layers,
                    rng,
                );
                let dgi = Dgi::new(&mut store, cfg.encoder_hidden, rng);
                (Box::new(enc), Some(dgi))
            }
            AgentKind::EncoderPlacer => (
                Box::new(SageEncoder::new(
                    &mut store,
                    feature_dim,
                    cfg.encoder_hidden,
                    cfg.encoder_layers,
                    rng,
                )),
                None,
            ),
            AgentKind::GrouperPlacer => (Box::new(RawEncoder::new(feature_dim)), None),
        };
        let rep_dim = encoder.out_dim();
        let placer: Box<dyn PlacerNet + Send> = match kind {
            AgentKind::Mars | AgentKind::MarsNoPretrain => Box::new(SegmentSeq2Seq::new(
                &mut store,
                rep_dim,
                cfg.placer_hidden,
                cfg.attn_dim,
                cfg.segment_size,
                num_devices,
                rng,
            )),
            AgentKind::EncoderPlacer => Box::new(TrfXlPlacer::new(
                &mut store,
                rep_dim,
                cfg.placer_hidden,
                cfg.segment_size,
                num_devices,
                rng,
            )),
            AgentKind::GrouperPlacer => Box::new(GrouperPlacerNet::new(
                &mut store,
                rep_dim,
                cfg.placer_hidden,
                cfg.attn_dim,
                cfg.num_groups,
                num_devices,
                rng,
            )),
            AgentKind::FixedEncoder(choice) => match choice {
                PlacerChoice::Seq2Seq => Box::new(FullSeq2Seq::new(
                    &mut store,
                    rep_dim,
                    cfg.placer_hidden,
                    cfg.attn_dim,
                    num_devices,
                    rng,
                )),
                PlacerChoice::Segment => Box::new(SegmentSeq2Seq::new(
                    &mut store,
                    rep_dim,
                    cfg.placer_hidden,
                    cfg.attn_dim,
                    cfg.segment_size,
                    num_devices,
                    rng,
                )),
                PlacerChoice::TrfXl => Box::new(TrfXlPlacer::new(
                    &mut store,
                    rep_dim,
                    cfg.placer_hidden,
                    cfg.segment_size,
                    num_devices,
                    rng,
                )),
                PlacerChoice::Mlp => Box::new(MlpPlacer::new(
                    &mut store,
                    rep_dim,
                    cfg.placer_hidden,
                    num_devices,
                    rng,
                )),
            },
        };
        let adam = Adam::new(cfg.lr);
        Agent {
            store,
            encoder,
            placer,
            dgi,
            frozen_reps: None,
            adam,
            baseline: EmaBaseline::default(),
            cfg,
            kind,
        }
    }

    /// Agent kind.
    pub fn kind(&self) -> AgentKind {
        self.kind
    }

    /// Placer name (for logs).
    pub fn placer_name(&self) -> &'static str {
        self.placer.name()
    }

    /// DGI pre-training (§3.2). Returns `None` for agents without a
    /// GCN encoder.
    pub fn pretrain(&mut self, input: &WorkloadInput, rng: &mut StdRng) -> Option<DgiReport> {
        let dgi = self.dgi.as_ref()?;
        let _span = mars_telemetry::span("core.agent.pretrain");
        let report = pretrain(
            &mut self.store,
            self.encoder.as_ref(),
            dgi,
            input,
            self.cfg.dgi_iters,
            self.cfg.dgi_lr,
            self.cfg.grad_clip,
            self.cfg.encode_batch,
            rng,
        );
        Some(report)
    }

    /// Encode once and freeze the representations (Table 1 protocol:
    /// "we train these three placers with fixed operation
    /// representations generated by the trained graph encoder").
    ///
    /// The frozen representations are standardized to unit RMS: DGI
    /// training is scale-free in its representations, and unnormalized
    /// magnitudes would saturate the placers' input nonlinearities.
    pub fn freeze_encoder(&mut self, input: &WorkloadInput) {
        let mut ctx = FwdCtx::new(&self.store);
        let reps = self.encoder.encode(&mut ctx, input);
        let mut m = ctx.tape.value(reps).clone();
        let rms = (m.as_slice().iter().map(|x| x * x).sum::<f32>() / m.len() as f32).sqrt();
        if rms > 1e-6 {
            m.map_inplace(|x| x / rms);
        }
        self.frozen_reps = Some(m);
    }

    /// Encoder output, RMS-normalized. DGI pre-training is scale-free
    /// in its representations; without normalization a pre-trained
    /// encoder's larger magnitudes saturate the placer's gate
    /// nonlinearities and erase the pre-training benefit. The norm is
    /// treated as a constant (no gradient through it), like a
    /// stop-gradient RMSNorm.
    pub(crate) fn reps_on<'a>(
        &self,
        ctx: &mut FwdCtx<'a>,
        input: &WorkloadInput,
    ) -> mars_autograd::Var {
        match &self.frozen_reps {
            Some(m) => ctx.tape.constant(m.clone()),
            None => {
                let h = self.encoder.encode(ctx, input);
                let v = ctx.tape.value(h);
                let rms = (v.as_slice().iter().map(|x| x * x).sum::<f32>() / v.len() as f32).sqrt();
                if rms > 1e-6 {
                    ctx.tape.scale(h, 1.0 / rms)
                } else {
                    h
                }
            }
        }
    }

    /// Current policy's device probabilities (`N × D`), without
    /// recording gradients for reuse.
    pub fn policy_probs(&self, input: &WorkloadInput) -> Matrix {
        let mut ctx = FwdCtx::new(&self.store);
        let reps = self.reps_on(&mut ctx, input);
        let logits = self.placer.logits(&mut ctx, reps);
        stats::softmax_rows(ctx.tape.value(logits))
    }

    /// Greedy placement under the current policy.
    pub fn greedy_placement(&self, input: &WorkloadInput) -> Placement {
        let probs = self.policy_probs(input);
        Placement(crate::ppo::greedy_actions(&probs))
    }

    /// Run `max_samples` placement evaluations of PPO training,
    /// extending `log`.
    pub fn train(
        &mut self,
        env: &mut dyn Environment,
        input: &WorkloadInput,
        max_samples: usize,
        rng: &mut StdRng,
        log: &mut TrainingLog,
    ) {
        let _span = mars_telemetry::span("core.agent.train");
        let t0 = Instant::now();
        let machine_t0 = env.machine_seconds();
        let start_wall = log.train_wall_s;
        // Training-tape scratch arena: minibatch tapes recycle their
        // node and gradient buffers across PPO steps (bit-identical to
        // fresh tapes; see `Tape::reset_for_reuse`).
        let mut tape: Option<mars_autograd::Tape> = None;

        while log.total_samples < max_samples {
            // ---- Sampling phase: one forward, S samples. ----
            let sample_span = mars_telemetry::span("core.agent.sample");
            let probs = self.policy_probs(input);
            let policy_entropy = (0..probs.rows())
                .map(|r| mars_tensor::stats::entropy(probs.row(r)) as f64)
                .sum::<f64>()
                / probs.rows().max(1) as f64;
            let round = self.cfg.samples_per_update.min(max_samples - log.total_samples);
            let mut records: Vec<SampleRecord> = Vec::with_capacity(round);
            let mut valid_readings: Vec<f64> = Vec::new();
            let (mut oom_count, mut bad_count, mut fault_count) = (0usize, 0usize, 0usize);
            let mut reward_sum = 0.0f64;
            // Draw the whole round up front (the agent RNG stream is
            // identical to the old one-at-a-time loop), then hand the
            // placements to the environment as one batch so it can
            // evaluate them concurrently, from its memo cache, or via
            // an installed `EvalBackend` (e.g. a `mars-net` worker
            // fleet). Outcomes come back in sample order and backends
            // only run the pure compute phase, so where the work ran
            // is invisible in the trace.
            let sampled: Vec<_> = (0..round).map(|_| sample_actions(&probs, rng)).collect();
            let placements: Vec<Placement> =
                sampled.iter().map(|(actions, _)| Placement(actions.clone())).collect();
            let eval_t0 = Instant::now();
            let outcomes = env.evaluate_batch(&placements);
            let eval_wall_s = eval_t0.elapsed().as_secs_f64();
            for (((actions, old_logp), placement), outcome) in
                sampled.into_iter().zip(placements).zip(outcomes)
            {
                let reading = outcome.reading_s(100.0);
                match outcome {
                    EvalOutcome::Valid { per_step_s } => {
                        valid_readings.push(per_step_s);
                        let better = log.best_reading_s.is_none_or(|b| per_step_s < b);
                        if better {
                            log.best_reading_s = Some(per_step_s);
                            log.best_placement = Some(placement.clone());
                        }
                    }
                    EvalOutcome::Invalid { .. } => {
                        oom_count += 1;
                        mars_telemetry::counter("train.oom_penalty").inc();
                    }
                    EvalOutcome::Bad { .. } => {
                        bad_count += 1;
                        mars_telemetry::counter("train.eval_cutoff").inc();
                    }
                    EvalOutcome::TransientError { .. } | EvalOutcome::Straggler { .. } => {
                        fault_count += 1;
                        mars_telemetry::counter("train.eval_fault").inc();
                    }
                }
                let reward = self.cfg.reward_shaping.reward(reading);
                reward_sum += reward as f64;
                let advantage = self.baseline.advantage(reward, self.cfg.baseline_mu);
                records.push(SampleRecord {
                    actions,
                    old_logp,
                    reading_s: reading,
                    valid: matches!(outcome, EvalOutcome::Valid { .. }),
                    advantage,
                });
                log.total_samples += 1;
            }
            drop(sample_span);

            // ---- PPO update phase. ----
            let update_span = mars_telemetry::span("core.agent.update");
            let mut idx: Vec<usize> = (0..records.len()).collect();
            let mut stats_acc = PpoStats::default();
            let mut stats_n = 0usize;
            let mut grad_norm_sq = 0.0f64;
            for _epoch in 0..self.cfg.ppo_epochs {
                idx.shuffle(rng);
                let mb = self.cfg.minibatches.min(idx.len().max(1));
                let chunk = idx.len().div_ceil(mb);
                for batch_ids in idx.chunks(chunk) {
                    let batch: Vec<&SampleRecord> =
                        batch_ids.iter().map(|&i| &records[i]).collect();
                    let mut ctx = match tape.take() {
                        Some(t) => FwdCtx::with_tape(t, &self.store),
                        None => FwdCtx::new(&self.store),
                    };
                    let reps = self.reps_on(&mut ctx, input);
                    let logits = self.placer.logits(&mut ctx, reps);
                    let (loss, stats) = ppo_loss_stats(
                        &mut ctx,
                        logits,
                        &batch,
                        self.cfg.clip_eps,
                        self.cfg.entropy_coef,
                    );
                    stats_acc.clip_fraction += stats.clip_fraction;
                    stats_acc.approx_kl += stats.approx_kl;
                    stats_acc.entropy += stats.entropy;
                    stats_n += 1;
                    let (grads, mut t) = ctx.into_grads_and_tape(loss, 1.0);
                    if mars_telemetry::active() {
                        grad_norm_sq += grads
                            .iter()
                            .map(|(_, g)| {
                                g.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()
                            })
                            .sum::<f64>();
                    }
                    apply_grads(&mut self.store, grads);
                    t.reset_for_reuse();
                    tape = Some(t);
                    self.adam.step(&mut self.store, self.cfg.grad_clip);
                }
            }
            drop(update_span);

            let mean_valid = if valid_readings.is_empty() {
                None
            } else {
                Some(valid_readings.iter().sum::<f64>() / valid_readings.len() as f64)
            };
            if mars_telemetry::active() {
                let inv = 1.0 / stats_n.max(1) as f32;
                let advs: Vec<f32> = records.iter().map(|r| r.advantage).collect();
                let adv_mean = advs.iter().sum::<f32>() / advs.len().max(1) as f32;
                let adv_var = advs.iter().map(|a| (a - adv_mean) * (a - adv_mean)).sum::<f32>()
                    / advs.len().max(1) as f32;
                mars_telemetry::event(
                    "ppo.update",
                    &[
                        ("samples_so_far", (log.total_samples as f64).into()),
                        ("reward_mean", (reward_sum / round.max(1) as f64).into()),
                        ("baseline", self.baseline.value().unwrap_or(0.0).into()),
                        ("adv_mean", adv_mean.into()),
                        ("adv_std", adv_var.sqrt().into()),
                        ("clip_fraction", (stats_acc.clip_fraction * inv).into()),
                        ("approx_kl", (stats_acc.approx_kl * inv).into()),
                        ("entropy", (stats_acc.entropy * inv).into()),
                        ("grad_norm", grad_norm_sq.sqrt().into()),
                        ("policy_entropy", policy_entropy.into()),
                        ("oom_count", (oom_count as f64).into()),
                        ("bad_count", (bad_count as f64).into()),
                        ("fault_count", (fault_count as f64).into()),
                        (
                            "valid_fraction",
                            (valid_readings.len() as f64 / round.max(1) as f64).into(),
                        ),
                        ("mean_valid_reading_s", mean_valid.unwrap_or(f64::NAN).into()),
                        ("best_so_far_s", log.best_reading_s.unwrap_or(f64::NAN).into()),
                        ("eval_wall_s", eval_wall_s.into()),
                    ],
                );
            }
            log.records.push(TrainingRecord {
                samples_so_far: log.total_samples,
                mean_valid_reading_s: mean_valid,
                best_so_far_s: log.best_reading_s,
                valid_fraction: valid_readings.len() as f64 / round.max(1) as f64,
                agent_wall_s: start_wall + t0.elapsed().as_secs_f64(),
                machine_s: env.machine_seconds(),
                policy_entropy,
            });

            // An injected crash killed the process during this round's
            // evaluations; checkpoint and resume before the next round.
            if env.take_crash() {
                self.resume_from_crash(log.total_samples);
            }
        }
        log.train_wall_s = start_wall + t0.elapsed().as_secs_f64();
        log.machine_s += env.machine_seconds() - machine_t0;
    }

    /// Checkpoint-and-resume after an injected crash: serialize every
    /// parameter, then reload it — to `cfg.auto_checkpoint` when set,
    /// else through an in-memory buffer. The roundtrip is bit-exact
    /// (f32 bits are stored losslessly), so a crashed-and-resumed run
    /// produces the identical trace to an uninterrupted one. Optimizer
    /// and baseline state stay in memory (see DESIGN.md §9).
    fn resume_from_crash(&mut self, samples_so_far: usize) {
        let _span = mars_telemetry::span("core.agent.crash_resume");
        match self.cfg.auto_checkpoint.clone() {
            Some(path) => {
                mars_nn::checkpoint::save_file(&self.store, &path).expect("auto-checkpoint save");
                mars_nn::checkpoint::load_file(&mut self.store, &path)
                    .expect("auto-checkpoint load");
            }
            None => {
                let mut buf = Vec::new();
                mars_nn::checkpoint::save(&self.store, &mut buf).expect("in-memory checkpoint");
                mars_nn::checkpoint::load(&mut self.store, &mut buf.as_slice())
                    .expect("in-memory resume");
            }
        }
        mars_telemetry::counter("train.crash_resume").inc();
        if mars_telemetry::active() {
            mars_telemetry::event(
                "train.crash_resume",
                &[
                    ("samples_so_far", (samples_so_far as f64).into()),
                    ("to_file", (self.cfg.auto_checkpoint.is_some() as u64 as f64).into()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::features::FEATURE_DIM;
    use mars_graph::generators::{Profile, Workload};
    use mars_rng::SeedableRng;
    use mars_sim::{Cluster, SimEnv};

    fn tiny_cfg() -> MarsConfig {
        let mut c = MarsConfig::small();
        c.encoder_hidden = 16;
        c.placer_hidden = 16;
        c.attn_dim = 8;
        c.segment_size = 16;
        c.num_groups = 4;
        c.dgi_iters = 20;
        c
    }

    #[test]
    fn all_agent_kinds_produce_valid_probability_tables() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let input = WorkloadInput::from_graph(&g);
        for kind in [
            AgentKind::Mars,
            AgentKind::MarsNoPretrain,
            AgentKind::EncoderPlacer,
            AgentKind::GrouperPlacer,
            AgentKind::FixedEncoder(PlacerChoice::Seq2Seq),
            AgentKind::FixedEncoder(PlacerChoice::Mlp),
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let agent = Agent::new(kind, tiny_cfg(), FEATURE_DIM, 5, &mut rng);
            let probs = agent.policy_probs(&input);
            assert_eq!(probs.shape(), (g.num_nodes(), 5), "{kind:?}");
            for r in 0..probs.rows() {
                let s: f32 = probs.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "{kind:?} row {r} sums {s}");
            }
        }
    }

    #[test]
    fn pretrain_only_for_gcn_agents() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let input = WorkloadInput::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let mut mars = Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, 5, &mut rng);
        assert!(mars.pretrain(&input, &mut rng).is_some());
        let mut grouper =
            Agent::new(AgentKind::GrouperPlacer, tiny_cfg(), FEATURE_DIM, 5, &mut rng);
        assert!(grouper.pretrain(&input, &mut rng).is_none());
    }

    #[test]
    fn training_improves_over_random_on_inception() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let input = WorkloadInput::from_graph(&g);
        let cluster = Cluster::p100_quad();
        let mut env = SimEnv::new(g.clone(), cluster.clone(), 11);
        let mut rng = StdRng::seed_from_u64(11);
        let mut agent = Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, 5, &mut rng);
        agent.pretrain(&input, &mut rng);
        let mut log = TrainingLog::default();
        agent.train(&mut env, &input, 120, &mut rng, &mut log);
        assert_eq!(log.total_samples, 120);
        assert_eq!(log.records.len(), 6);
        let best = log.best_reading_s.expect("found a valid placement");
        // Random placements on inception measure ≳ 0.2 s; training must
        // find something competitive with single-GPU (≈ 0.1 s).
        assert!(best < 0.2, "best {best}");
        assert!(log.best_placement.is_some());
        assert!(log.machine_s > 0.0);
    }

    #[test]
    fn frozen_encoder_is_constant_during_training() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let input = WorkloadInput::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let mut agent = Agent::new(
            AgentKind::FixedEncoder(PlacerChoice::Mlp),
            tiny_cfg(),
            FEATURE_DIM,
            5,
            &mut rng,
        );
        agent.freeze_encoder(&input);
        let before = agent.frozen_reps.clone().expect("frozen");
        let mut env = SimEnv::new(g, Cluster::p100_quad(), 6);
        let mut log = TrainingLog::default();
        agent.train(&mut env, &input, 40, &mut rng, &mut log);
        assert_eq!(agent.frozen_reps.expect("still frozen"), before);
    }
}
