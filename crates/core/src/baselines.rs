//! Non-learning baselines of §4.1: Human Expert and GPU-Only.

use mars_graph::generators::Workload;
use mars_graph::CompGraph;
use mars_sim::{Cluster, Placement};

/// GPU-Only (§4.1): "places all GPU compatible operations on a single
/// GPU while running incompatible operations on CPUs."
pub fn gpu_only(graph: &CompGraph, cluster: &Cluster) -> Placement {
    let gpu = cluster.gpu_ids()[0];
    let mut p = Placement::all_on(graph, gpu);
    p.enforce_compatibility(graph, cluster);
    p
}

/// Human Expert placements (§4.1), per workload:
///
/// * Inception-V3 / VGG16 — TF-Slim's single-GPU placement.
/// * GNMT-4 / seq2seq — Google's NMT implementation: "each GNMT layer
///   is assigned to each device in a round-robin manner" (layer-wise
///   round-robin over the GPUs, embeddings and softmax colocated with
///   their adjacent layers).
/// * BERT / Transformer — "does not support multi-GPU training using
///   model parallelism by default": everything on one GPU (OOMs for
///   BERT, exactly as the paper's Table 2 reports).
pub fn human_expert(workload: Workload, graph: &CompGraph, cluster: &Cluster) -> Placement {
    let gpus = cluster.gpu_ids();
    let mut p = match workload {
        Workload::InceptionV3
        | Workload::Vgg16
        | Workload::BertBase
        | Workload::Transformer
        | Workload::Resnet50
        | Workload::Gpt2Small => Placement::all_on(graph, gpus[0]),
        Workload::Gnmt4 | Workload::Seq2Seq => {
            let mut devices = vec![gpus[0]; graph.num_nodes()];
            for (i, node) in graph.nodes().iter().enumerate() {
                let name = &node.name;
                let layer = layer_index(name);
                let dev = match () {
                    _ if name.starts_with("encoder/embedding") || name.starts_with("input") => {
                        gpus[0]
                    }
                    _ if name.starts_with("decoder/embedding") => gpus[0],
                    _ if name.starts_with("encoder") => gpus[layer % gpus.len()],
                    _ if name.starts_with("decoder") => gpus[layer % gpus.len()],
                    _ if name.starts_with("attention") => gpus[gpus.len() - 1],
                    // Softmax / loss / optimizer on the last GPU.
                    _ => gpus[gpus.len() - 1],
                };
                devices[i] = dev;
            }
            Placement(devices)
        }
    };
    p.enforce_compatibility(graph, cluster);
    p
}

/// Extract the `lN`-style layer index from a generated node name.
fn layer_index(name: &str) -> usize {
    for part in name.split('/') {
        if let Some(rest) = part.strip_prefix('l') {
            if let Ok(v) = rest.parse::<usize>() {
                return v;
            }
        }
        if let Some(rest) = part.strip_prefix("bi_l") {
            if let Ok(v) = rest.parse::<usize>() {
                return v;
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::generators::Profile;
    use mars_sim::{check_memory, SimEnv};

    #[test]
    fn gpu_only_valid_for_inception_only() {
        let c = Cluster::p100_quad();
        let inception = Workload::InceptionV3.build(Profile::Reduced);
        let p = gpu_only(&inception, &c);
        assert!(check_memory(&inception, &p, &c).is_ok());

        // Paper Table 2: GPU-Only OOMs for GNMT and BERT.
        for w in [Workload::Gnmt4, Workload::BertBase] {
            let g = w.build(Profile::Reduced);
            let p = gpu_only(&g, &c);
            assert!(check_memory(&g, &p, &c).is_err(), "{} should OOM", w.name());
        }
    }

    #[test]
    fn human_expert_gnmt_is_valid_and_multi_gpu() {
        let c = Cluster::p100_quad();
        let g = Workload::Gnmt4.build(Profile::Reduced);
        let p = human_expert(Workload::Gnmt4, &g, &c);
        assert!(check_memory(&g, &p, &c).is_ok(), "human GNMT placement must run");
        assert!(p.devices_used().len() >= 3, "round-robin uses several GPUs");
    }

    #[test]
    fn human_expert_bert_ooms() {
        // Paper Table 2: Human Experts = OOM for BERT.
        let c = Cluster::p100_quad();
        let g = Workload::BertBase.build(Profile::Reduced);
        let p = human_expert(Workload::BertBase, &g, &c);
        assert!(check_memory(&g, &p, &c).is_err());
    }

    #[test]
    fn human_expert_gnmt_beats_nothing_fancy() {
        // The human placement must be a reasonable (valid, not absurd)
        // starting point: within 3× of a blocked 4-GPU split.
        let c = Cluster::p100_quad();
        let g = Workload::Gnmt4.build(Profile::Reduced);
        let env = SimEnv::new(g.clone(), c.clone(), 0);
        let human =
            env.true_step_time(&human_expert(Workload::Gnmt4, &g, &c)).expect("valid").makespan_s;
        let mut blocked = Placement::blocked(&g, &c.gpu_ids());
        blocked.enforce_compatibility(&g, &c);
        let reference = env.true_step_time(&blocked).expect("valid").makespan_s;
        assert!(human < 3.0 * reference, "human {human} vs blocked {reference}");
    }

    #[test]
    fn layer_index_parses_generated_names() {
        assert_eq!(layer_index("encoder/l2/t5"), 2);
        assert_eq!(layer_index("encoder/bi_l0/t9"), 0);
        assert_eq!(layer_index("decoder/l3/t0"), 3);
        assert_eq!(layer_index("softmax/proj/t1"), 0);
    }
}
