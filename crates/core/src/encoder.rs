//! Graph encoders.
//!
//! [`GcnEncoder`] is the Mars encoder of §3.1: a stack of GCN layers
//! with PReLU activations over the normalized adjacency.
//! [`SageEncoder`] is a GraphSAGE mean-aggregator encoder, used by the
//! Encoder-Placer baseline (GDP [33]). [`RawEncoder`] passes features
//! through unchanged (used by the Grouper-Placer baseline, which has no
//! graph encoder).

use crate::graph_batch::GraphBatch;
use crate::workload_input::WorkloadInput;
use mars_autograd::Var;
use mars_nn::{FwdCtx, GcnLayer, Linear, ParamStore};
use mars_rng::Rng;

/// A node-representation encoder.
pub trait Encoder {
    /// Encode the workload into per-op representations (`N × out_dim`).
    fn encode(&self, ctx: &mut FwdCtx<'_>, input: &WorkloadInput) -> Var;
    /// Encode a packed graph corpus in one pass (`Σ n_s × out_dim`,
    /// rows segmented by `batch.offsets`). Returns `None` when the
    /// encoder has no batched path (callers fall back to per-graph
    /// [`Encoder::encode`]); implementations that return `Some` must be
    /// bit-identical, values and gradients, to the per-graph loop.
    fn encode_batch(&self, _ctx: &mut FwdCtx<'_>, _batch: &GraphBatch) -> Option<Var> {
        None
    }
    /// Width of the produced representations.
    fn out_dim(&self) -> usize;
}

/// The Mars GCN encoder: `encoder_layers` GCN layers with PReLU.
pub struct GcnEncoder {
    layers: Vec<GcnLayer>,
    out_dim: usize,
}

impl GcnEncoder {
    /// Register the encoder's parameters.
    pub fn new(
        store: &mut ParamStore,
        feature_dim: usize,
        hidden: usize,
        num_layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_layers >= 1);
        let mut layers = Vec::with_capacity(num_layers);
        let mut in_dim = feature_dim;
        for l in 0..num_layers {
            layers.push(GcnLayer::new(store, &format!("gcn{l}"), in_dim, hidden, rng));
            in_dim = hidden;
        }
        GcnEncoder { layers, out_dim: hidden }
    }
}

impl Encoder for GcnEncoder {
    fn encode(&self, ctx: &mut FwdCtx<'_>, input: &WorkloadInput) -> Var {
        let mut h = ctx.tape.leaf_from(&input.features, false);
        for layer in &self.layers {
            h = layer.forward(ctx, &input.adj, h);
        }
        h
    }

    fn encode_batch(&self, ctx: &mut FwdCtx<'_>, batch: &GraphBatch) -> Option<Var> {
        let mut h = ctx.tape.leaf_from(&batch.features, false);
        for layer in &self.layers {
            h = layer.forward_batch(ctx, &batch.adj, h, &batch.offsets);
        }
        Some(h)
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// GraphSAGE mean-aggregator encoder (Hamilton et al., 2017), as used
/// by GDP's encoder-placer. Each layer computes
/// `relu(W · [h ‖ mean_neighbors(h)])`; we reuse the normalized
/// adjacency as the (weighted) neighbor mean.
pub struct SageEncoder {
    self_proj: Vec<Linear>,
    neigh_proj: Vec<Linear>,
    out_dim: usize,
}

impl SageEncoder {
    /// Register the encoder's parameters.
    pub fn new(
        store: &mut ParamStore,
        feature_dim: usize,
        hidden: usize,
        num_layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut self_proj = Vec::new();
        let mut neigh_proj = Vec::new();
        let mut in_dim = feature_dim;
        for l in 0..num_layers {
            self_proj.push(Linear::new(store, &format!("sage{l}.self"), in_dim, hidden, true, rng));
            neigh_proj.push(Linear::new(
                store,
                &format!("sage{l}.neigh"),
                in_dim,
                hidden,
                false,
                rng,
            ));
            in_dim = hidden;
        }
        SageEncoder { self_proj, neigh_proj, out_dim: hidden }
    }
}

impl Encoder for SageEncoder {
    fn encode(&self, ctx: &mut FwdCtx<'_>, input: &WorkloadInput) -> Var {
        let mut h = ctx.tape.constant(input.features.clone());
        for (sp, np) in self.self_proj.iter().zip(&self.neigh_proj) {
            let neigh = ctx.tape.spmm(input.adj.clone(), h);
            let a = sp.forward(ctx, h);
            let b = np.forward(ctx, neigh);
            let s = ctx.tape.add(a, b);
            h = ctx.tape.relu(s);
        }
        h
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Identity encoder: raw node features (Grouper-Placer baseline).
pub struct RawEncoder {
    dim: usize,
}

impl RawEncoder {
    /// An encoder that passes `dim`-wide features straight through.
    pub fn new(dim: usize) -> Self {
        RawEncoder { dim }
    }
}

impl Encoder for RawEncoder {
    fn encode(&self, ctx: &mut FwdCtx<'_>, input: &WorkloadInput) -> Var {
        ctx.tape.constant(input.features.clone())
    }

    fn out_dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::features::FEATURE_DIM;
    use mars_graph::generators::{Profile, Workload};
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;

    fn input() -> WorkloadInput {
        WorkloadInput::from_graph(&Workload::InceptionV3.build(Profile::Reduced))
    }

    #[test]
    fn gcn_encoder_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = GcnEncoder::new(&mut store, FEATURE_DIM, 16, 3, &mut rng);
        let inp = input();
        let mut ctx = FwdCtx::new(&store);
        let h = enc.encode(&mut ctx, &inp);
        assert_eq!(ctx.tape.value(h).shape(), (inp.num_ops, 16));
        assert!(ctx.tape.value(h).is_finite());
    }

    #[test]
    fn sage_encoder_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = SageEncoder::new(&mut store, FEATURE_DIM, 12, 2, &mut rng);
        let inp = input();
        let mut ctx = FwdCtx::new(&store);
        let h = enc.encode(&mut ctx, &inp);
        assert_eq!(ctx.tape.value(h).shape(), (inp.num_ops, 12));
    }

    #[test]
    fn raw_encoder_is_identity() {
        let inp = input();
        let store = ParamStore::new();
        let enc = RawEncoder::new(FEATURE_DIM);
        let mut ctx = FwdCtx::new(&store);
        let h = enc.encode(&mut ctx, &inp);
        assert_eq!(ctx.tape.value(h), &inp.features);
    }

    #[test]
    fn gcn_differs_from_raw_features() {
        // The encoder must actually mix neighborhood information.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let enc = GcnEncoder::new(&mut store, FEATURE_DIM, FEATURE_DIM, 1, &mut rng);
        let inp = input();
        let mut ctx = FwdCtx::new(&store);
        let h = enc.encode(&mut ctx, &inp);
        assert!(ctx.tape.value(h).max_abs_diff(&inp.features) > 1e-3);
    }
}
