//! Corpus batching: pack N workload graphs into one block-diagonal
//! encoding problem.
//!
//! The packer concatenates per-graph node features row-wise and the
//! per-graph normalized adjacencies into a [`BlockDiagCsr`], recording
//! the node-offset table (`offsets[s]..offsets[s+1]` = graph `s`'s row
//! range). The batched GCN forward then runs one `spmm_blockdiag`
//! sweep per layer instead of N per-graph `spmm` calls — bit-identical
//! per element (same accumulation order, same `== 0.0` row skip), but
//! with the fixed per-graph overhead (tape nodes, parameter binds,
//! kernel dispatch) amortized across the corpus.

use crate::workload_input::WorkloadInput;
use mars_tensor::ops::BlockDiagCsr;
use mars_tensor::Matrix;
use std::sync::Arc;

/// Histogram bucket edges for the `encode.batch_size` telemetry metric.
const BATCH_SIZE_EDGES: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// N workload graphs packed for one batched encoder pass.
pub struct GraphBatch {
    /// Row-stacked node features, `Σ n_s × feature_dim`.
    pub features: Matrix,
    /// Block-diagonal normalized adjacency over all graphs.
    pub adj: Arc<BlockDiagCsr>,
    /// Node-offset table: `offsets[s]..offsets[s+1]` is graph `s`'s row
    /// range in `features` (and in every batched activation).
    pub offsets: Arc<Vec<usize>>,
}

impl GraphBatch {
    /// Pack `inputs` in order. All graphs must share a feature width
    /// (zero-node graphs are allowed and occupy an empty row range).
    pub fn pack(inputs: &[&WorkloadInput]) -> Self {
        assert!(!inputs.is_empty(), "GraphBatch::pack: empty corpus");
        let fdim = inputs[0].features.cols();
        let total: usize = inputs.iter().map(|i| i.num_ops).sum();
        let mut data = Vec::with_capacity(total * fdim);
        let mut offsets = Vec::with_capacity(inputs.len() + 1);
        let mut blocks = Vec::with_capacity(inputs.len());
        offsets.push(0usize);
        for inp in inputs {
            assert_eq!(inp.features.cols(), fdim, "GraphBatch::pack: feature width mismatch");
            assert_eq!(inp.features.rows(), inp.num_ops, "GraphBatch::pack: feature row mismatch");
            data.extend_from_slice(inp.features.as_slice());
            blocks.push(inp.adj.clone());
            offsets.push(offsets.last().unwrap() + inp.num_ops);
        }
        if mars_telemetry::active() {
            mars_telemetry::histogram("encode.batch_size", BATCH_SIZE_EDGES)
                .observe(inputs.len() as f64);
        }
        GraphBatch {
            features: Matrix::from_vec(total, fdim, data),
            adj: Arc::new(BlockDiagCsr::new(blocks)),
            offsets: Arc::new(offsets),
        }
    }

    /// Number of packed graphs.
    pub fn num_graphs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total packed node count.
    pub fn total_nodes(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Row range of graph `s`.
    pub fn segment(&self, s: usize) -> (usize, usize) {
        (self.offsets[s], self.offsets[s + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::generators::{Profile, Workload};

    #[test]
    fn pack_layout_matches_inputs() {
        let a = WorkloadInput::from_graph(&Workload::InceptionV3.build(Profile::Reduced));
        let b = WorkloadInput::from_graph(&Workload::Gnmt4.build(Profile::Reduced));
        let batch = GraphBatch::pack(&[&a, &b]);
        assert_eq!(batch.num_graphs(), 2);
        assert_eq!(batch.total_nodes(), a.num_ops + b.num_ops);
        assert_eq!(batch.segment(0), (0, a.num_ops));
        assert_eq!(batch.segment(1), (a.num_ops, a.num_ops + b.num_ops));
        // Features are the exact row-stack of the inputs.
        assert_eq!(batch.features.as_slice()[..a.features.len()], *a.features.as_slice());
        assert_eq!(batch.features.as_slice()[a.features.len()..], *b.features.as_slice());
        // The block-diagonal adjacency spans both graphs.
        assert_eq!(batch.adj.rows(), a.num_ops + b.num_ops);
        assert_eq!(batch.adj.nnz(), a.adj.nnz() + b.adj.nnz());
    }
}
