//! Inference-only policy evaluation: the serving-path fast forward.
//!
//! Training runs the encoder–placer forward on a recording [`Tape`](
//! mars_autograd::Tape) that clones every parameter onto the tape and
//! retains backward caches (LSTM gates, attention activations) for the
//! reverse sweep. A placement *query* needs none of that: a
//! [`PolicyInference`] owns one inference tape whose pooled activation
//! buffers are recycled across requests, binds parameters by copy into
//! recycled buffers, and never records ops.
//!
//! **Bit-exactness contract.** The inference tape runs the same tensor
//! kernels in the same order as a recording tape (the record flag only
//! changes what is *retained*, never what is *computed*), so
//! [`PolicyInference::policy_probs`] is bit-identical to
//! [`Agent::policy_probs`] for the same weights — pinned by the parity
//! tests below and relied on by the serve layer's claim that hot-cache,
//! warm-store, and cold-inference responses are byte-identical.

use crate::agent::Agent;
use crate::ppo::greedy_actions;
use crate::workload_input::WorkloadInput;
use mars_autograd::Tape;
use mars_nn::FwdCtx;
use mars_sim::Placement;
use mars_tensor::{stats, Matrix};

/// Reusable inference state: one tape whose activation buffers survive
/// across requests. Construction is free; the pool warms up on the
/// first forward.
pub struct PolicyInference {
    tape: Tape,
}

impl Default for PolicyInference {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyInference {
    /// Fresh inference state with an empty buffer pool.
    pub fn new() -> Self {
        PolicyInference { tape: Tape::inference() }
    }

    /// Device probabilities (`N × D`) under `agent`'s current policy,
    /// computed without autograd recording. Bit-identical to
    /// [`Agent::policy_probs`].
    pub fn policy_probs(&mut self, agent: &Agent, input: &WorkloadInput) -> Matrix {
        let _span = mars_telemetry::span("core.infer.policy_probs");
        let tape = std::mem::replace(&mut self.tape, Tape::inference());
        let mut ctx = FwdCtx::with_tape(tape, &agent.store);
        let reps = agent.reps_on(&mut ctx, input);
        let logits = agent.placer.logits(&mut ctx, reps);
        let probs = stats::softmax_rows(ctx.tape.value(logits));
        let mut tape = ctx.into_tape();
        tape.reset_for_reuse();
        self.tape = tape;
        probs
    }

    /// Greedy placement under the current policy — bit-identical to
    /// [`Agent::greedy_placement`].
    pub fn greedy_placement(&mut self, agent: &Agent, input: &WorkloadInput) -> Placement {
        Placement(greedy_actions(&self.policy_probs(agent, input)))
    }

    /// Full decode: per-op device ranking (row `r` lists every device,
    /// most probable first). See [`rank_devices`].
    pub fn rank_placements(&mut self, agent: &Agent, input: &WorkloadInput) -> Vec<Vec<usize>> {
        rank_devices(&self.policy_probs(agent, input))
    }

    /// Batched fallback for cache misses: decode several graphs on the
    /// one reusable tape.
    pub fn rank_batch(&mut self, agent: &Agent, inputs: &[&WorkloadInput]) -> Vec<Vec<Vec<usize>>> {
        inputs.iter().map(|input| self.rank_placements(agent, input)).collect()
    }
}

/// Per-op device ranking from a probability table: for each row, the
/// device indices sorted by descending probability with ties broken by
/// ascending index. `ranking[r][0]` therefore equals
/// [`stats::argmax`] of row `r` (first maximum wins), so truncating a
/// ranking to its first column reproduces the greedy placement exactly.
pub fn rank_devices(probs: &Matrix) -> Vec<Vec<usize>> {
    (0..probs.rows())
        .map(|r| {
            let row = probs.row(r);
            let mut idx: Vec<usize> = (0..row.len()).collect();
            // Stable sort + strict descending comparator: equal
            // probabilities keep ascending device order.
            idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
            idx
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentKind;
    use crate::config::MarsConfig;
    use crate::placers::PlacerChoice;
    use mars_graph::features::FEATURE_DIM;
    use mars_graph::generators::{Profile, Workload};
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;

    fn tiny_cfg() -> MarsConfig {
        let mut c = MarsConfig::small();
        c.encoder_hidden = 16;
        c.placer_hidden = 16;
        c.attn_dim = 8;
        c.segment_size = 16;
        c.num_groups = 4;
        c.dgi_iters = 10;
        c
    }

    #[test]
    fn inference_probs_bit_match_training_forward_for_all_kinds() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let input = WorkloadInput::from_graph(&g);
        for kind in [
            AgentKind::Mars,
            AgentKind::EncoderPlacer,
            AgentKind::GrouperPlacer,
            AgentKind::FixedEncoder(PlacerChoice::Mlp),
        ] {
            let mut rng = StdRng::seed_from_u64(9);
            let agent = Agent::new(kind, tiny_cfg(), FEATURE_DIM, 5, &mut rng);
            let want = agent.policy_probs(&input);
            let mut inf = PolicyInference::new();
            let got = inf.policy_probs(&agent, &input);
            assert_eq!(want.as_slice(), got.as_slice(), "{kind:?} probs diverged");
            assert_eq!(agent.greedy_placement(&input).0, inf.greedy_placement(&agent, &input).0);
        }
    }

    #[test]
    fn reused_buffers_and_interleaved_graphs_stay_bit_stable() {
        let ga = Workload::InceptionV3.build(Profile::Reduced);
        let gb = Workload::Vgg16.build(Profile::Reduced);
        let ia = WorkloadInput::from_graph(&ga);
        let ib = WorkloadInput::from_graph(&gb);
        let mut rng = StdRng::seed_from_u64(10);
        let agent = Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, 5, &mut rng);
        let wa = agent.policy_probs(&ia);
        let wb = agent.policy_probs(&ib);
        let mut inf = PolicyInference::new();
        for _ in 0..3 {
            assert_eq!(wa.as_slice(), inf.policy_probs(&agent, &ia).as_slice());
            assert_eq!(wb.as_slice(), inf.policy_probs(&agent, &ib).as_slice());
        }
    }

    #[test]
    fn ranking_head_matches_greedy_and_covers_all_devices() {
        let g = Workload::InceptionV3.build(Profile::Reduced);
        let input = WorkloadInput::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(12);
        let agent = Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, 5, &mut rng);
        let mut inf = PolicyInference::new();
        let ranking = inf.rank_placements(&agent, &input);
        let greedy = inf.greedy_placement(&agent, &input);
        assert_eq!(ranking.len(), g.num_nodes());
        for (r, row) in ranking.iter().enumerate() {
            assert_eq!(row[0], greedy.0[r], "op {r} head != greedy");
            let mut sorted = row.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>(), "op {r} not a permutation");
        }
    }

    #[test]
    fn ties_rank_lowest_device_first() {
        let probs = Matrix::from_vec(2, 4, vec![0.25, 0.25, 0.25, 0.25, 0.1, 0.4, 0.4, 0.1]);
        let ranking = rank_devices(&probs);
        assert_eq!(ranking[0], vec![0, 1, 2, 3]);
        assert_eq!(ranking[1], vec![1, 2, 0, 3]);
    }
}
