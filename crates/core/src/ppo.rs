//! Proximal policy optimization (§3.4).
//!
//! Reward: `R = −√t` where `t` is the measured per-step time (Eq. 7).
//! Baseline: exponential moving average of rewards with μ = 0.99;
//! advantage `Â = R − B`. The clipped surrogate is applied per op
//! (each op's device choice is an action sharing the placement's
//! advantage), which keeps ratios numerically sane for graphs with
//! hundreds of ops.

use mars_autograd::Var;
use mars_nn::FwdCtx;
use mars_rng::Rng;
use mars_tensor::stats;
use mars_tensor::Matrix;

/// One sampled placement with everything PPO needs to reuse it.
#[derive(Clone)]
pub struct SampleRecord {
    /// Device chosen per op.
    pub actions: Vec<usize>,
    /// Log-probability of each chosen action under the sampling policy
    /// (`N × 1`).
    pub old_logp: Matrix,
    /// Per-step reading fed to the reward.
    pub reading_s: f64,
    /// Whether the environment ran the placement to completion.
    pub valid: bool,
    /// Advantage (filled in after the baseline update).
    pub advantage: f32,
}

/// Reward shaping applied to the per-step reading (Eq. 7 uses
/// `R = −√t`; the alternatives are ablation points).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RewardShaping {
    /// The paper's `R = −√t`.
    #[default]
    NegSqrt,
    /// Raw negative time `R = −t` (over-weights bad placements).
    NegLinear,
    /// Logarithmic `R = −ln(1 + t)` (compresses the penalty range).
    NegLog,
}

impl RewardShaping {
    /// Shape a per-step reading into a reward.
    pub fn reward(self, reading_s: f64) -> f32 {
        let t = reading_s.max(0.0);
        (match self {
            RewardShaping::NegSqrt => -t.sqrt(),
            RewardShaping::NegLinear => -t,
            RewardShaping::NegLog => -t.ln_1p(),
        }) as f32
    }
}

/// The EMA baseline of Eq. (7).
#[derive(Clone, Debug, Default)]
pub struct EmaBaseline {
    value: Option<f32>,
}

impl EmaBaseline {
    /// Reward for a reading: `R = −√t` (the paper's shaping).
    pub fn reward(reading_s: f64) -> f32 {
        RewardShaping::NegSqrt.reward(reading_s)
    }

    /// Update with a new reward and return the advantage `R − B`
    /// (using the *pre-update* baseline; `B₁ = R₁` so the first
    /// advantage is 0).
    pub fn advantage(&mut self, reward: f32, mu: f32) -> f32 {
        match self.value {
            None => {
                self.value = Some(reward);
                0.0
            }
            Some(b) => {
                let adv = reward - b;
                self.value = Some((1.0 - mu) * reward + mu * b);
                adv
            }
        }
    }

    /// Current baseline value.
    pub fn value(&self) -> Option<f32> {
        self.value
    }
}

/// Sample one placement from row-wise categorical `probs` (`N × D`),
/// returning actions and their log-probabilities.
pub fn sample_actions(probs: &Matrix, rng: &mut impl Rng) -> (Vec<usize>, Matrix) {
    let n = probs.rows();
    let mut actions = Vec::with_capacity(n);
    let mut logp = Matrix::zeros(n, 1);
    for r in 0..n {
        let row = probs.row(r);
        let u: f32 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = row.len() - 1;
        for (d, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = d;
                break;
            }
        }
        actions.push(chosen);
        logp.set(r, 0, row[chosen].max(1e-12).ln());
    }
    (actions, logp)
}

/// Greedy (argmax) actions from `probs`.
pub fn greedy_actions(probs: &Matrix) -> Vec<usize> {
    (0..probs.rows()).map(|r| stats::argmax(probs.row(r))).collect()
}

/// Diagnostics of one PPO minibatch update (read off the tape after the
/// forward pass; pure observation, no effect on the loss).
#[derive(Clone, Copy, Debug, Default)]
pub struct PpoStats {
    /// Fraction of (sample, op) ratios outside `1 ± ε`.
    pub clip_fraction: f32,
    /// `mean(old_logp − new_logp)` — the usual cheap KL estimate.
    pub approx_kl: f32,
    /// Policy entropy averaged over ops (nats).
    pub entropy: f32,
}

/// Build the clipped-surrogate PPO loss for one minibatch on the tape.
///
/// `logits` are the current policy's `N × D` logits; each record
/// contributes `mean_ops(min(ρ·Â, clip(ρ, 1±ε)·Â))`. Returns the scalar
/// loss variable `-(surrogate + entropy_coef × entropy)`.
pub fn ppo_loss(
    ctx: &mut FwdCtx<'_>,
    logits: Var,
    batch: &[&SampleRecord],
    clip_eps: f32,
    entropy_coef: f32,
) -> Var {
    ppo_loss_stats(ctx, logits, batch, clip_eps, entropy_coef).0
}

/// [`ppo_loss`] plus [`PpoStats`] diagnostics for telemetry.
pub fn ppo_loss_stats(
    ctx: &mut FwdCtx<'_>,
    logits: Var,
    batch: &[&SampleRecord],
    clip_eps: f32,
    entropy_coef: f32,
) -> (Var, PpoStats) {
    assert!(!batch.is_empty());
    let lp = ctx.tape.log_softmax_rows(logits);
    let n = ctx.tape.value(lp).rows();

    let mut surrogate_sum: Option<Var> = None;
    let mut clipped_count = 0usize;
    let mut kl_sum = 0.0f64;
    for rec in batch {
        assert_eq!(rec.actions.len(), n, "sample/op-count mismatch");
        let sel = ctx.tape.select_per_row(lp, rec.actions.clone());
        let old = ctx.tape.constant(rec.old_logp.clone());
        let diff = ctx.tape.sub(sel, old);
        let ratio = ctx.tape.exp(diff);
        for &r in ctx.tape.value(ratio).as_slice() {
            if (r - 1.0).abs() > clip_eps {
                clipped_count += 1;
            }
        }
        kl_sum -= ctx.tape.value(diff).as_slice().iter().map(|&d| d as f64).sum::<f64>();
        let adv = ctx.tape.constant(Matrix::full(n, 1, rec.advantage));
        let unclipped = ctx.tape.mul(ratio, adv);
        let clipped_ratio = ctx.tape.clamp(ratio, 1.0 - clip_eps, 1.0 + clip_eps);
        let clipped = ctx.tape.mul(clipped_ratio, adv);
        let surr = ctx.tape.min_elem(unclipped, clipped);
        let mean = ctx.tape.mean_all(surr);
        surrogate_sum = Some(match surrogate_sum {
            None => mean,
            Some(acc) => ctx.tape.add(acc, mean),
        });
    }
    let surrogate =
        ctx.tape.scale(surrogate_sum.expect("non-empty batch"), 1.0 / batch.len() as f32);

    // Entropy of the current policy, averaged over ops.
    let p = ctx.tape.exp(lp);
    let plp = ctx.tape.mul(p, lp);
    let sum = ctx.tape.sum_all(plp);
    let entropy = ctx.tape.scale(sum, -1.0 / n as f32);
    let stats = PpoStats {
        clip_fraction: clipped_count as f32 / (batch.len() * n) as f32,
        approx_kl: (kl_sum / (batch.len() * n) as f64) as f32,
        entropy: ctx.tape.value(entropy).get(0, 0),
    };

    // Maximize surrogate + coef·entropy → minimize the negation.
    let bonus = ctx.tape.scale(entropy, entropy_coef);
    let objective = ctx.tape.add(surrogate, bonus);
    (ctx.tape.neg(objective), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_nn::ParamStore;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;

    #[test]
    fn reward_is_negative_sqrt() {
        assert_eq!(EmaBaseline::reward(4.0), -2.0);
        assert_eq!(EmaBaseline::reward(100.0), -10.0);
        assert!(EmaBaseline::reward(0.067) > EmaBaseline::reward(1.4));
    }

    #[test]
    fn baseline_follows_eq7() {
        let mut b = EmaBaseline::default();
        // First reward: B1 = R1, advantage 0.
        assert_eq!(b.advantage(-2.0, 0.99), 0.0);
        assert_eq!(b.value(), Some(-2.0));
        // Second: adv = R - B = -1 - (-2) = 1; B = 0.01·(-1) + 0.99·(-2).
        let adv = b.advantage(-1.0, 0.99);
        assert!((adv - 1.0).abs() < 1e-6);
        assert!((b.value().unwrap() + 1.99).abs() < 1e-5);
    }

    #[test]
    fn sampling_respects_probabilities() {
        let probs = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let (a, lp) = sample_actions(&probs, &mut rng);
            assert_eq!(a, vec![1]);
            assert!((lp.get(0, 0) - 0.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sampling_covers_support() {
        let probs = Matrix::from_vec(1, 2, vec![0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 2];
        for _ in 0..64 {
            let (a, _) = sample_actions(&probs, &mut rng);
            seen[a[0]] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn greedy_picks_argmax() {
        let probs = Matrix::from_vec(2, 3, vec![0.1, 0.7, 0.2, 0.6, 0.3, 0.1]);
        assert_eq!(greedy_actions(&probs), vec![1, 0]);
    }

    #[test]
    fn ppo_loss_pushes_toward_advantaged_actions() {
        // One op, two devices; a sample choosing device 0 with positive
        // advantage must create a gradient that raises logit 0.
        let mut store = ParamStore::new();
        let w = store.add("logits", Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let rec = SampleRecord {
            actions: vec![0],
            old_logp: Matrix::from_vec(1, 1, vec![(0.5f32).ln()]),
            reading_s: 1.0,
            valid: true,
            advantage: 1.0,
        };
        let mut ctx = FwdCtx::new(&store);
        let logits = ctx.p(w);
        let loss = ppo_loss(&mut ctx, logits, &[&rec], 0.2, 0.0);
        let grads = ctx.into_grads(loss, 1.0);
        let g = &grads.iter().find(|(id, _)| *id == w).expect("grad").1;
        // Minimizing the loss should increase logit 0 relative to 1.
        assert!(g.get(0, 0) < 0.0, "{g:?}");
        assert!(g.get(0, 1) > 0.0, "{g:?}");
    }

    #[test]
    fn ppo_clipping_caps_the_update() {
        // With a huge ratio and positive advantage the clipped branch
        // wins and the gradient through the ratio vanishes.
        let mut store = ParamStore::new();
        let w = store.add("logits", Matrix::from_vec(1, 2, vec![5.0, -5.0]));
        let rec = SampleRecord {
            actions: vec![0],
            // Sampled when the action was very unlikely.
            old_logp: Matrix::from_vec(1, 1, vec![(0.001f32).ln()]),
            reading_s: 1.0,
            valid: true,
            advantage: 1.0,
        };
        let mut ctx = FwdCtx::new(&store);
        let logits = ctx.p(w);
        let loss = ppo_loss(&mut ctx, logits, &[&rec], 0.2, 0.0);
        let grads = ctx.into_grads(loss, 1.0);
        let g = &grads.iter().find(|(id, _)| *id == w).expect("grad").1;
        assert!(g.frobenius_norm() < 1e-6, "clipping should zero the gradient: {g:?}");
    }
}
