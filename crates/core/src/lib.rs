#![warn(missing_docs)]
//! Mars: the paper's contribution — a pre-trained encoder-placer
//! device-placement agent — plus every baseline it is compared against.
//!
//! * [`encoder`] — the 3-layer GCN encoder (§3.1) and the GraphSAGE
//!   encoder used by the Encoder-Placer baseline (GDP [33]).
//! * [`dgi`] — Deep Graph Infomax contrastive pre-training (§3.2).
//! * [`placers`] — the four placer designs studied in §3.3: full
//!   seq2seq, **segment-level seq2seq (the Mars placer)**, a
//!   Transformer-XL-style segment-recurrent attention placer, and the
//!   two-layer MLP.
//! * [`grouper`] — the Grouper-Placer baseline (Hierarchical Planner
//!   [20]): MLP grouper + seq2seq placer over groups.
//! * [`ppo`] — proximal policy optimization with the paper's reward
//!   `R = −√t`, EMA baseline (μ = 0.99), clip 0.2, entropy 0.001.
//! * [`agent`] — the joint training loop (§3.4) with full logging for
//!   Fig. 7 (per-step runtime of found placements over training) and
//!   Fig. 8 (agent training time).
//! * [`baselines`] — Human Expert and GPU-Only placements (§4.1).
//! * [`partitioner`] — a classical min-cut graph-partitioning baseline
//!   (the "Scotch" family §2 argues against).
//! * [`generalize`] — Table-3 train-on-A / fine-tune-on-B evaluation.

pub mod agent;
pub mod baselines;
pub mod config;
pub mod dgi;
pub mod encoder;
pub mod generalize;
pub mod graph_batch;
pub mod grouper;
pub mod infer;
pub mod partitioner;
pub mod placers;
pub mod ppo;
pub mod workload_input;

pub use agent::{Agent, AgentKind, TrainingLog};
pub use config::MarsConfig;
pub use graph_batch::GraphBatch;
pub use infer::PolicyInference;
pub use workload_input::WorkloadInput;
