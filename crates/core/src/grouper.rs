//! The Grouper-Placer baseline (Hierarchical Planner, Mirhoseini et
//! al. [20]).
//!
//! A two-layer MLP grouper soft-assigns each op to one of `G` groups;
//! group embeddings are the assignment-weighted means of op features;
//! a seq2seq placer with attention assigns a device distribution to
//! each group; an op's device distribution is the assignment-weighted
//! mixture of its groups' device distributions.
//!
//! Substitution note (DESIGN.md §2): the original trains hard group
//! assignments with REINFORCE through two stochastic stages; we use the
//! differentiable soft-mixture policy so all agents share one PPO
//! trainer. The action space reduction — the paper's Fig. 2a — is
//! preserved: devices are chosen per *group*, ops inherit them.

use crate::placers::PlacerNet;
use mars_autograd::Var;
use mars_nn::{Attention, BiLstm, FwdCtx, Linear, LstmCell, ParamStore};
use mars_rng::Rng;

/// Grouper + seq2seq-placer policy producing per-op device log-probs.
pub struct GrouperPlacerNet {
    grouper_fc1: Linear,
    grouper_fc2: Linear,
    enc: BiLstm,
    dec: LstmCell,
    attn: Attention,
    head: Linear,
    num_groups: usize,
    num_devices: usize,
}

impl GrouperPlacerNet {
    /// Register parameters.
    pub fn new(
        store: &mut ParamStore,
        feature_dim: usize,
        hidden: usize,
        attn_dim: usize,
        num_groups: usize,
        num_devices: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(hidden.is_multiple_of(2));
        GrouperPlacerNet {
            grouper_fc1: Linear::new(store, "grp.fc1", feature_dim, hidden, true, rng),
            grouper_fc2: Linear::new(store, "grp.fc2", hidden, num_groups, true, rng),
            enc: BiLstm::new(store, "grp.enc", feature_dim, hidden / 2, rng),
            dec: LstmCell::new(store, "grp.dec", 2 * hidden, hidden, rng),
            attn: Attention::new(store, "grp.attn", hidden, hidden, attn_dim, rng),
            head: Linear::new(store, "grp.head", hidden, num_devices, true, rng),
            num_groups,
            num_devices,
        }
    }

    /// Number of groups `G`.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }
}

impl PlacerNet for GrouperPlacerNet {
    fn logits(&self, ctx: &mut FwdCtx<'_>, reps: Var) -> Var {
        // Soft group assignment S: N × G.
        let h = self.grouper_fc1.forward(ctx, reps);
        let a = ctx.tape.tanh(h);
        let group_logits = self.grouper_fc2.forward(ctx, a);
        let s = ctx.tape.softmax_rows(group_logits); // N × G

        // Group embeddings: normalized Sᵀ · X (G × F).
        let st = ctx.tape.transpose(s); // G × N
        let mass = ctx.tape.sum_rows(s); // 1 × G, column masses
        let raw = ctx.tape.matmul(st, reps); // G × F
                                             // Normalize each group row by its mass (avoid division op:
                                             // scale via reciprocal diagonal — implemented with an
                                             // elementwise product against a broadcast reciprocal).
        let recip = {
            let eps = 1e-6f32;
            let m = ctx.tape.value(mass).clone();
            let mut r = m.clone();
            r.map_inplace(|x| 1.0 / (x + eps));
            ctx.tape.constant(r)
        };
        let recip_t = ctx.tape.transpose(recip); // G × 1
        let ones = ctx.tape.constant(mars_tensor::Matrix::full(1, ctx.tape.value(raw).cols(), 1.0));
        let recip_full = ctx.tape.matmul(recip_t, ones); // G × F broadcast
        let group_emb = ctx.tape.mul(raw, recip_full); // G × F

        // Seq2seq placer over group embeddings → per-group device logits.
        let g = self.num_groups;
        let (enc_out, _) = self.enc.run(ctx, group_emb, None);
        let keys = self.attn.precompute(ctx, enc_out);
        let mut state = self.dec.zero_state(ctx);
        let mut rows = Vec::with_capacity(g);
        for i in 0..g {
            let row = ctx.tape.slice_rows(enc_out, i, i + 1);
            let context = self.attn.read(ctx, keys, state.h);
            let dec_in = ctx.tape.concat_cols(row, context);
            state = self.dec.step(ctx, dec_in, state);
            rows.push(self.head.forward(ctx, state.h));
        }
        let group_dev_logits = ctx.tape.stack_rows(rows); // G × D
        let group_dev_probs = ctx.tape.softmax_rows(group_dev_logits);

        // Op device distribution: S · P (N × D), returned as log-probs.
        let op_probs = ctx.tape.matmul(s, group_dev_probs);
        let eps = ctx.tape.add_scalar(op_probs, 1e-8);
        ctx.tape.ln(eps)
    }

    fn num_devices(&self) -> usize {
        self.num_devices
    }

    fn name(&self) -> &'static str {
        "grouper-placer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;
    use mars_tensor::init;
    use mars_tensor::stats::softmax_rows;

    #[test]
    fn logits_rows_are_normalized_distributions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = GrouperPlacerNet::new(&mut store, 6, 8, 4, 3, 5, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let reps = ctx.tape.constant(init::uniform(9, 6, 1.0, &mut rng));
        let l = p.logits(&mut ctx, reps);
        let lv = ctx.tape.value(l);
        assert_eq!(lv.shape(), (9, 5));
        // The output is log of a proper mixture: rows already normalized.
        for r in 0..9 {
            let s: f32 = lv.row(r).iter().map(|x| x.exp()).sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
        }
        // Applying softmax again (as the PPO path does) must be ~identity.
        let again = softmax_rows(lv);
        for r in 0..9 {
            for c in 0..5 {
                assert!((again.get(r, c) - lv.get(r, c).exp()).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn ops_in_same_group_share_device_distribution() {
        // Two ops with identical features get identical rows.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let p = GrouperPlacerNet::new(&mut store, 4, 8, 4, 2, 3, &mut rng);
        let mut feats = init::uniform(6, 4, 1.0, &mut rng);
        let row0 = feats.row(0).to_vec();
        feats.row_mut(3).copy_from_slice(&row0);
        let mut ctx = FwdCtx::new(&store);
        let reps = ctx.tape.constant(feats);
        let l = p.logits(&mut ctx, reps);
        let lv = ctx.tape.value(l);
        for c in 0..3 {
            assert!((lv.get(0, c) - lv.get(3, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_reach_grouper_and_placer() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let p = GrouperPlacerNet::new(&mut store, 4, 8, 4, 3, 4, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let reps = ctx.tape.constant(init::uniform(5, 4, 1.0, &mut rng));
        let l = p.logits(&mut ctx, reps);
        let sel = ctx.tape.select_per_row(l, vec![0, 1, 2, 3, 0]);
        let loss = ctx.tape.mean_all(sel);
        let grads = ctx.into_grads(loss, 1.0);
        let by_name: Vec<&str> = grads.iter().map(|(id, _)| store.name(*id)).collect();
        assert!(by_name.iter().any(|n| n.starts_with("grp.fc1")), "{by_name:?}");
        assert!(by_name.iter().any(|n| n.starts_with("grp.head")), "{by_name:?}");
    }
}
