//! The Wengert-list tape: forward builders and the reverse sweep.

use crate::ops::Op;
use mars_tensor::ops::{matmul_into, matmul_nt, matmul_tn, CsrMatrix};
use mars_tensor::stats;
use mars_tensor::Matrix;
use std::sync::Arc;

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// `out[j] = dz · m.row(j)` for every row of `m` — the `1 × n` case of
/// [`matmul_nt`] without the temporary row-vector and result matrices.
/// Four rows at a time so `dz` stays in registers; each accumulator
/// ascends the contraction axis exactly like `matmul_nt`'s blocked
/// kernel, so the result is bit-identical to the matmul it replaces.
fn dot_rows_into(dz: &[f32], m: &Matrix, out: &mut [f32]) {
    let n = m.rows();
    let k = dz.len();
    debug_assert_eq!(out.len(), n);
    debug_assert_eq!(k, m.cols());
    let mut j = 0;
    while j + 4 <= n {
        let (b0, b1, b2, b3) = (m.row(j), m.row(j + 1), m.row(j + 2), m.row(j + 3));
        let (mut c0, mut c1, mut c2, mut c3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for t in 0..k {
            let av = dz[t];
            c0 += av * b0[t];
            c1 += av * b1[t];
            c2 += av * b2[t];
            c3 += av * b3[t];
        }
        out[j] = c0;
        out[j + 1] = c1;
        out[j + 2] = c2;
        out[j + 3] = c3;
        j += 4;
    }
    for (jj, o) in out.iter_mut().enumerate().take(n).skip(j) {
        let b_row = m.row(jj);
        let mut acc = 0.0f32;
        for t in 0..k {
            acc += dz[t] * b_row[t];
        }
        *o = acc;
    }
}

struct Node {
    value: Matrix,
    op: Op,
    requires_grad: bool,
}

/// A single-forward-pass gradient tape.
///
/// Typical usage:
/// ```
/// use mars_autograd::Tape;
/// use mars_tensor::Matrix;
///
/// let mut t = Tape::new();
/// let x = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]), true);
/// let w = t.leaf(Matrix::from_vec(2, 1, vec![0.5, -0.5]), true);
/// let y = t.matmul(x, w);
/// let loss = t.mean_all(y);
/// t.backward(loss);
/// let gw = t.grad(w).unwrap();
/// assert_eq!(gw.as_slice(), &[1.0, 2.0]);
/// ```
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    /// `true` for training tapes ([`Tape::new`]): ops and grad flags
    /// are recorded for [`Tape::backward`]. `false` for inference
    /// tapes ([`Tape::inference`]): every node is stored as a gradless
    /// [`Op::Leaf`], so backward caches (LSTM gate matrices, attention
    /// activations) are dropped the moment the forward value exists.
    record: bool,
    /// Recycled activation buffers, harvested by
    /// [`Tape::reset_for_reuse`] and handed back out by the pooled
    /// builders — inference forwards after the first run allocation-free
    /// on the hot path.
    pool: Vec<Vec<f32>>,
}

/// Upper bound on recycled buffers kept across [`Tape::reset_for_reuse`]
/// calls; enough for every activation of one encoder–placer forward at
/// paper-scale widths while bounding idle memory.
const MAX_POOLED_BUFS: usize = 512;

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Empty recording (training) tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new(), grads: Vec::new(), record: true, pool: Vec::new() }
    }

    /// Empty inference tape: forward values are computed by exactly the
    /// same kernels as a recording tape (bit-identical outputs), but no
    /// op structure or backward caches are retained and
    /// [`Tape::backward`] panics.
    pub fn inference() -> Self {
        Tape { nodes: Vec::new(), grads: Vec::new(), record: false, pool: Vec::new() }
    }

    /// `false` for tapes built with [`Tape::inference`].
    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drop all nodes while recycling their backing buffers (and the
    /// node list's capacity) for the next forward pass. The values of
    /// existing [`Var`] handles become invalid; callers start a fresh
    /// forward afterwards.
    pub fn reset_for_reuse(&mut self) {
        for node in self.nodes.drain(..) {
            if self.pool.len() < MAX_POOLED_BUFS {
                self.pool.push(node.value.into_vec());
            }
        }
        self.grads.clear();
    }

    /// A recycled buffer with `len == 0` and capacity ≥ `min_cap`, or a
    /// fresh one. Scanned newest-first so the most recently retired
    /// (cache-warm) buffer wins.
    fn take_buf_empty(&mut self, min_cap: usize) -> Vec<f32> {
        match self.pool.iter().rposition(|b| b.capacity() >= min_cap) {
            Some(i) => {
                let mut b = self.pool.swap_remove(i);
                b.clear();
                b
            }
            None => Vec::with_capacity(min_cap),
        }
    }

    /// A zero-filled buffer of exactly `len` elements, recycled when
    /// possible. Contents are identical to `vec![0.0; len]`, so pooled
    /// and fresh allocations are indistinguishable to the kernels.
    fn take_buf(&mut self, len: usize) -> Vec<f32> {
        let mut b = self.take_buf_empty(len);
        b.resize(len, 0.0);
        b
    }

    /// A zero matrix backed by a recycled buffer when one fits.
    fn alloc_zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_buf(rows * cols))
    }

    /// Return a scratch matrix's backing buffer to the pool.
    fn recycle(&mut self, m: Matrix) {
        if self.pool.len() < MAX_POOLED_BUFS {
            self.pool.push(m.into_vec());
        }
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        debug_assert!(value.is_finite(), "non-finite value produced by tape op");
        if self.record {
            self.nodes.push(Node { value, op, requires_grad });
        } else {
            // Inference: keep only the forward value (later builders
            // still read it by index); drop the op and its Arc'd
            // backward caches immediately.
            self.nodes.push(Node { value, op: Op::Leaf, requires_grad: false });
        }
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Insert a leaf. `requires_grad = true` for parameters, `false`
    /// for constant inputs.
    pub fn leaf(&mut self, value: Matrix, requires_grad: bool) -> Var {
        self.push(value, Op::Leaf, requires_grad)
    }

    /// Constant leaf (no gradient).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.leaf(value, false)
    }

    /// Gradless leaf copied from `src` into a recycled buffer — how the
    /// inference path binds parameters without a fresh allocation per
    /// request. Bit-identical to `leaf(src.clone(), false)`.
    pub fn leaf_copy(&mut self, src: &Matrix) -> Var {
        let (r, c) = src.shape();
        let mut buf = self.take_buf_empty(r * c);
        buf.extend_from_slice(src.as_slice());
        self.push(Matrix::from_vec(r, c, buf), Op::Leaf, false)
    }

    /// Value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Scalar value of a `1 × 1` variable.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() on non-scalar {:?}", m.shape());
        m.get(0, 0)
    }

    /// Gradient of a variable after [`Tape::backward`], if one was computed.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    // ---------------------------------------------------------------
    // Builders (forward evaluation + recording)
    // ---------------------------------------------------------------

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let mut v = self.alloc_zeros(self.value(a).rows(), self.value(b).cols());
        matmul_into(self.value(a), self.value(b), &mut v);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MatMul(a, b), rg)
    }

    /// Sparse-constant × dense product (`adj · x`).
    pub fn spmm(&mut self, adj: Arc<CsrMatrix>, x: Var) -> Var {
        let v = adj.spmm(self.value(x));
        let rg = self.rg(x);
        self.push(v, Op::Spmm(adj, x), rg)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), rg)
    }

    /// Broadcast-add a `1 × n` bias to every row.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let v = self.value(x).add_row_broadcast(self.value(bias));
        let rg = self.rg(x) || self.rg(bias);
        self.push(v, Op::AddBias(x, bias), rg)
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let v = self.value(x).scale(s);
        let rg = self.rg(x);
        self.push(v, Op::Scale(x, s), rg)
    }

    /// Add a scalar constant.
    pub fn add_scalar(&mut self, x: Var, s: f32) -> Var {
        let v = self.value(x).map(|e| e + s);
        let rg = self.rg(x);
        self.push(v, Op::AddScalar(x, s), rg)
    }

    /// Negation.
    pub fn neg(&mut self, x: Var) -> Var {
        self.scale(x, -1.0)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.value(x).map(stats::sigmoid);
        let rg = self.rg(x);
        self.push(v, Op::Sigmoid(x), rg)
    }

    /// Hyperbolic tangent (the deterministic [`mars_tensor::simd::tanh`]
    /// kernel, batch-dispatched).
    pub fn tanh(&mut self, x: Var) -> Var {
        let (r, c) = self.value(x).shape();
        let mut buf = self.take_buf_empty(r * c);
        buf.extend_from_slice(self.value(x).as_slice());
        mars_tensor::simd::tanh_inplace(&mut buf);
        let v = Matrix::from_vec(r, c, buf);
        let rg = self.rg(x);
        self.push(v, Op::Tanh(x), rg)
    }

    /// ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|e| e.max(0.0));
        let rg = self.rg(x);
        self.push(v, Op::Relu(x), rg)
    }

    /// Parametric ReLU; `alpha` is a `1 × 1` learnable slope.
    pub fn prelu(&mut self, x: Var, alpha: Var) -> Var {
        assert_eq!(self.value(alpha).shape(), (1, 1), "prelu alpha must be 1x1");
        let a = self.scalar(alpha);
        let v = self.value(x).map(|e| if e > 0.0 { e } else { a * e });
        let rg = self.rg(x) || self.rg(alpha);
        self.push(v, Op::PRelu(x, alpha), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f32::exp);
        let rg = self.rg(x);
        self.push(v, Op::Exp(x), rg)
    }

    /// Elementwise natural log.
    pub fn ln(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f32::ln);
        let rg = self.rg(x);
        self.push(v, Op::Ln(x), rg)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, x: Var) -> Var {
        let v = stats::softmax_rows(self.value(x));
        let rg = self.rg(x);
        self.push(v, Op::SoftmaxRows(x), rg)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, x: Var) -> Var {
        let v = stats::log_softmax_rows(self.value(x));
        let rg = self.rg(x);
        self.push(v, Op::LogSoftmaxRows(x), rg)
    }

    /// Mean of all elements (`1 × 1`).
    pub fn mean_all(&mut self, x: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(x).mean()]);
        let rg = self.rg(x);
        self.push(v, Op::MeanAll(x), rg)
    }

    /// Sum of all elements (`1 × 1`).
    pub fn sum_all(&mut self, x: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(x).sum()]);
        let rg = self.rg(x);
        self.push(v, Op::SumAll(x), rg)
    }

    /// Column means (`1 × n`).
    pub fn mean_rows(&mut self, x: Var) -> Var {
        let v = self.value(x).mean_rows();
        let rg = self.rg(x);
        self.push(v, Op::MeanRows(x), rg)
    }

    /// Column sums (`1 × n`).
    pub fn sum_rows(&mut self, x: Var) -> Var {
        let v = self.value(x).sum_rows();
        let rg = self.rg(x);
        self.push(v, Op::SumRows(x), rg)
    }

    /// `[a | b]` horizontal concatenation.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let split = self.value(a).cols();
        let v = self.value(a).hcat(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::ConcatCols(a, b, split), rg)
    }

    /// `a` stacked over `b` vertical concatenation.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let split = self.value(a).rows();
        let v = self.value(a).vcat(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::ConcatRows(a, b, split), rg)
    }

    /// Rows `[start, end)`.
    pub fn slice_rows(&mut self, x: Var, start: usize, end: usize) -> Var {
        let v = self.value(x).slice_rows(start, end);
        let rg = self.rg(x);
        self.push(v, Op::SliceRows(x, start, end), rg)
    }

    /// Gather rows by index (embedding lookup / permutation).
    pub fn gather_rows(&mut self, x: Var, indices: Vec<usize>) -> Var {
        let v = self.value(x).gather_rows(&indices);
        let rg = self.rg(x);
        self.push(v, Op::GatherRows(x, Arc::new(indices)), rg)
    }

    /// Per-row element selection: `out[r, 0] = x[r, idx[r]]`.
    pub fn select_per_row(&mut self, x: Var, indices: Vec<usize>) -> Var {
        let xm = self.value(x);
        assert_eq!(indices.len(), xm.rows(), "select_per_row index count mismatch");
        let mut v = Matrix::zeros(xm.rows(), 1);
        for (r, &c) in indices.iter().enumerate() {
            assert!(c < xm.cols(), "select_per_row column {c} out of {}", xm.cols());
            v.set(r, 0, xm.get(r, c));
        }
        let rg = self.rg(x);
        self.push(v, Op::SelectPerRow(x, Arc::new(indices)), rg)
    }

    /// Stack many `1 × n` rows into one `m × n` matrix.
    pub fn stack_rows(&mut self, rows: Vec<Var>) -> Var {
        assert!(!rows.is_empty(), "stack_rows: empty input");
        let cols = self.value(rows[0]).cols();
        let mut data = self.take_buf_empty(rows.len() * cols);
        let mut rg = false;
        for &r in &rows {
            let m = self.value(r);
            assert_eq!(m.shape(), (1, cols), "stack_rows: row {:?} != (1,{cols})", m.shape());
            data.extend_from_slice(m.as_slice());
            rg |= self.rg(r);
        }
        let v = Matrix::from_vec(rows.len(), cols, data);
        self.push(v, Op::StackRows(Arc::new(rows)), rg)
    }

    /// Transpose.
    pub fn transpose(&mut self, x: Var) -> Var {
        let v = self.value(x).transpose();
        let rg = self.rg(x);
        self.push(v, Op::Transpose(x), rg)
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(&mut self, x: Var, lo: f32, hi: f32) -> Var {
        assert!(lo <= hi);
        let v = self.value(x).map(|e| e.clamp(lo, hi));
        let rg = self.rg(x);
        self.push(v, Op::Clamp(x, lo, hi), rg)
    }

    /// Elementwise minimum.
    pub fn min_elem(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip_map(self.value(b), f32::min);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MinElem(a, b), rg)
    }

    /// Mean binary-cross-entropy with logits against constant targets.
    ///
    /// Uses the numerically-stable formulation
    /// `max(x, 0) − x·t + ln(1 + exp(−|x|))`.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Arc<Matrix>) -> Var {
        let x = self.value(logits);
        assert_eq!(x.shape(), targets.shape(), "bce_with_logits shape mismatch");
        let mut acc = 0.0f32;
        for (xi, ti) in x.as_slice().iter().zip(targets.as_slice()) {
            acc += xi.max(0.0) - xi * ti + (1.0 + (-xi.abs()).exp()).ln();
        }
        let v = Matrix::from_vec(1, 1, vec![acc / x.len() as f32]);
        let rg = self.rg(logits);
        self.push(v, Op::BceWithLogits(logits, targets), rg)
    }

    /// Fused LSTM over a whole sequence (hand-written BPTT).
    ///
    /// `x` is `T × F`; `w_ih`/`w_hh`/`b` are the fused gate parameters
    /// (`F × 4H`, `H × 4H`, `1 × 4H`, gate order `[i|f|g|o]`);
    /// `h0`/`c0` the initial state (`1 × H`). Returns `(T+1) × H`: rows
    /// `0..T` are hidden states, row `T` is the final cell state.
    ///
    /// Replaces ~25 recorded ops per timestep with a single node —
    /// the difference between minutes and hours at paper-scale widths.
    pub fn lstm_seq(&mut self, x: Var, w_ih: Var, w_hh: Var, b: Var, h0: Var, c0: Var) -> Var {
        let (t_len, in_dim) = self.value(x).shape();
        let hd4 = self.value(w_ih).cols();
        assert_eq!(self.value(w_ih).rows(), in_dim, "w_ih shape mismatch");
        assert!(hd4.is_multiple_of(4), "w_ih width must be 4·H");
        let hd = hd4 / 4;
        assert_eq!(self.value(w_hh).shape(), (hd, hd4), "w_hh shape mismatch");
        assert_eq!(self.value(b).shape(), (1, hd4), "bias shape mismatch");
        assert_eq!(self.value(h0).shape(), (1, hd), "h0 shape mismatch");
        assert_eq!(self.value(c0).shape(), (1, hd), "c0 shape mismatch");
        assert!(t_len > 0, "empty sequence");

        // Fused gate pass: one packed matmul computes x·W_ih for all
        // four gates of the whole sequence, and the recurrent h·W_hh
        // term is an in-place axpy sweep over W_hh rows — no per-step
        // Matrix allocation. Per element the arithmetic is exactly the
        // serial `inner_nn` sequence (ascending k with the zero skip),
        // so the fused loop is bit-identical to the matmul it replaces.
        let mut xw = self.alloc_zeros(t_len, hd4); // T × 4H
        matmul_into(self.value(x), self.value(w_ih), &mut xw);

        let mut cache = crate::ops::LstmCache {
            i: self.alloc_zeros(t_len, hd),
            f: self.alloc_zeros(t_len, hd),
            g: self.alloc_zeros(t_len, hd),
            o: self.alloc_zeros(t_len, hd),
            c: self.alloc_zeros(t_len, hd),
            tanh_c: self.alloc_zeros(t_len, hd),
        };
        let mut out = self.alloc_zeros(t_len + 1, hd);
        {
            let mut h_prev: Vec<f32> = self.value(h0).row(0).to_vec();
            let mut c_prev: Vec<f32> = self.value(c0).row(0).to_vec();
            let w_hh_m = self.value(w_hh);
            let b_row = self.value(b).row(0);
            let mut hw = vec![0.0f32; hd4]; // reusable 1 × 4H scratch

            for t in 0..t_len {
                // z = (x_t·W_ih + h_{t-1}·W_hh) + b, accumulated into hw.
                hw.fill(0.0);
                mars_tensor::simd::strided_sweep(&mut hw, &h_prev, w_hh_m.as_slice(), hd4);
                let xw_row = xw.row(t);
                for j in 0..hd4 {
                    hw[j] = (xw_row[j] + hw[j]) + b_row[j];
                }
                // Candidate gate tanh as one batch kernel call; the
                // sigmoid gates stay per-element (libm exp is cheap).
                mars_tensor::simd::tanh_inplace(&mut hw[2 * hd..3 * hd]);
                for k in 0..hd {
                    let ig = stats::sigmoid(hw[k]);
                    let fg = stats::sigmoid(hw[hd + k]);
                    let gg = hw[2 * hd + k];
                    let og = stats::sigmoid(hw[3 * hd + k]);
                    let c = fg * c_prev[k] + ig * gg;
                    cache.i.set(t, k, ig);
                    cache.f.set(t, k, fg);
                    cache.g.set(t, k, gg);
                    cache.o.set(t, k, og);
                    cache.c.set(t, k, c);
                    c_prev[k] = c;
                }
                // tanh(c_t) for the whole row, then h_t = o ⊙ tanh(c_t).
                let tc_row = cache.tanh_c.row_mut(t);
                tc_row.copy_from_slice(&c_prev);
                mars_tensor::simd::tanh_inplace(tc_row);
                for (k, hp) in h_prev.iter_mut().enumerate().take(hd) {
                    let h = cache.o.get(t, k) * cache.tanh_c.get(t, k);
                    out.set(t, k, h);
                    *hp = h;
                }
            }
            // Final cell state as the extra row.
            for (k, &c) in c_prev.iter().enumerate() {
                out.set(t_len, k, c);
            }
        }

        self.recycle(xw);
        if !self.record {
            // Inference: the gate caches exist only for BPTT — recycle
            // their buffers instead of threading them through `push`
            // (which would drop them on the floor).
            let crate::ops::LstmCache { i, f, g, o, c, tanh_c } = cache;
            for m in [i, f, g, o, c, tanh_c] {
                self.recycle(m);
            }
            return self.push(out, Op::Leaf, false);
        }
        let rg = self.rg(x)
            || self.rg(w_ih)
            || self.rg(w_hh)
            || self.rg(b)
            || self.rg(h0)
            || self.rg(c0);
        self.push(out, Op::LstmSeq { x, w_ih, w_hh, b, h0, c0, cache: Arc::new(cache) }, rg)
    }

    /// Fused additive-attention scores `(tanh(proj ⊕ dproj) · v)ᵀ`.
    ///
    /// `proj` is the pre-projected encoder matrix (`T × A`), `dproj`
    /// the projected decoder query (`1 × A`), `v` the scoring vector
    /// (`A × 1`); returns the `1 × T` score row. One node replaces the
    /// four-op `add_bias → tanh → matmul → transpose` chain (and its
    /// three `T × A`-sized intermediates) on the per-placement decoder
    /// hot path. Per element the score accumulates ascending `a` with
    /// the `== 0.0` skip, exactly like the `matmul` it replaces.
    pub fn attn_scores(&mut self, proj: Var, dproj: Var, v: Var) -> Var {
        let (t_len, ad) = self.value(proj).shape();
        assert_eq!(self.value(dproj).shape(), (1, ad), "attn_scores: dproj shape mismatch");
        assert_eq!(self.value(v).shape(), (ad, 1), "attn_scores: v shape mismatch");
        let mut act = self.alloc_zeros(t_len, ad);
        let mut scores = self.alloc_zeros(1, t_len);
        {
            let proj_m = self.value(proj);
            let dproj_row = self.value(dproj).row(0);
            let v_m = self.value(v);
            let v_col = v_m.as_slice(); // A × 1, contiguous
            for j in 0..t_len {
                let proj_row = proj_m.row(j);
                let act_row = act.row_mut(j);
                for a in 0..ad {
                    act_row[a] = proj_row[a] + dproj_row[a];
                }
                mars_tensor::simd::tanh_inplace(act_row);
                let mut s = 0.0f32;
                for a in 0..ad {
                    let tv = act_row[a];
                    if tv != 0.0 {
                        s += tv * v_col[a];
                    }
                }
                scores.set(0, j, s);
            }
        }
        if !self.record {
            // The tanh activations are a backward-only cache.
            self.recycle(act);
            return self.push(scores, Op::Leaf, false);
        }
        let rg = self.rg(proj) || self.rg(dproj) || self.rg(v);
        self.push(scores, Op::AttnScores { proj, dproj, v, act: Arc::new(act) }, rg)
    }

    // ---------------------------------------------------------------
    // Backward
    // ---------------------------------------------------------------

    fn accumulate(&mut self, v: Var, g: Matrix) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.grads[v.0] {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Run the reverse sweep from a scalar (`1 × 1`) loss.
    ///
    /// Gradients are available through [`Tape::grad`] afterwards. A
    /// second call resets previous gradients.
    pub fn backward(&mut self, loss: Var) {
        let _span = mars_telemetry::span("autograd.tape.backward");
        assert!(self.record, "backward() on an inference tape — build it with Tape::new()");
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward() requires a scalar loss, got {:?}",
            self.value(loss).shape()
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..=loss.0).rev() {
            let Some(g) = self.grads[i].clone() else { continue };
            if !self.nodes[i].requires_grad {
                continue;
            }
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    if self.rg(a) {
                        let ga = matmul_nt(&g, self.value(b));
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let gb = matmul_tn(self.value(a), &g);
                        self.accumulate(b, gb);
                    }
                }
                Op::Spmm(adj, x) => {
                    if self.rg(x) {
                        let gx = adj.spmm_t(&g);
                        self.accumulate(x, gx);
                    }
                }
                Op::Add(a, b) => {
                    if self.rg(a) {
                        self.accumulate(a, g.clone());
                    }
                    if self.rg(b) {
                        self.accumulate(b, g);
                    }
                }
                Op::Sub(a, b) => {
                    if self.rg(a) {
                        self.accumulate(a, g.clone());
                    }
                    if self.rg(b) {
                        self.accumulate(b, g.scale(-1.0));
                    }
                }
                Op::Mul(a, b) => {
                    if self.rg(a) {
                        let ga = g.hadamard(self.value(b));
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let gb = g.hadamard(self.value(a));
                        self.accumulate(b, gb);
                    }
                }
                Op::AddBias(x, bias) => {
                    if self.rg(x) {
                        self.accumulate(x, g.clone());
                    }
                    if self.rg(bias) {
                        self.accumulate(bias, g.sum_rows());
                    }
                }
                Op::Scale(x, s) => {
                    if self.rg(x) {
                        self.accumulate(x, g.scale(s));
                    }
                }
                Op::AddScalar(x, _) => {
                    if self.rg(x) {
                        self.accumulate(x, g);
                    }
                }
                Op::Sigmoid(x) => {
                    if self.rg(x) {
                        let y = &self.nodes[i].value;
                        let gx = g.zip_map(y, |gi, yi| gi * yi * (1.0 - yi));
                        self.accumulate(x, gx);
                    }
                }
                Op::Tanh(x) => {
                    if self.rg(x) {
                        let y = &self.nodes[i].value;
                        let gx = g.zip_map(y, |gi, yi| gi * (1.0 - yi * yi));
                        self.accumulate(x, gx);
                    }
                }
                Op::Relu(x) => {
                    if self.rg(x) {
                        let gx = g.zip_map(self.value(x), |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                        self.accumulate(x, gx);
                    }
                }
                Op::PRelu(x, alpha) => {
                    let a = self.scalar(alpha);
                    if self.rg(x) {
                        let gx =
                            g.zip_map(self.value(x), |gi, xi| if xi > 0.0 { gi } else { a * gi });
                        self.accumulate(x, gx);
                    }
                    if self.rg(alpha) {
                        let da: f32 = g
                            .as_slice()
                            .iter()
                            .zip(self.value(x).as_slice())
                            .map(|(&gi, &xi)| if xi > 0.0 { 0.0 } else { gi * xi })
                            .sum();
                        self.accumulate(alpha, Matrix::from_vec(1, 1, vec![da]));
                    }
                }
                Op::Exp(x) => {
                    if self.rg(x) {
                        let y = &self.nodes[i].value;
                        let gx = g.hadamard(y);
                        self.accumulate(x, gx);
                    }
                }
                Op::Ln(x) => {
                    if self.rg(x) {
                        let gx = g.zip_map(self.value(x), |gi, xi| gi / xi);
                        self.accumulate(x, gx);
                    }
                }
                Op::SoftmaxRows(x) => {
                    if self.rg(x) {
                        // dx = p ⊙ (g − ⟨g, p⟩) per row.
                        let p = self.nodes[i].value.clone();
                        let mut gx = Matrix::zeros(p.rows(), p.cols());
                        for r in 0..p.rows() {
                            let dot: f32 =
                                g.row(r).iter().zip(p.row(r)).map(|(&gi, &pi)| gi * pi).sum();
                            for c in 0..p.cols() {
                                gx.set(r, c, p.get(r, c) * (g.get(r, c) - dot));
                            }
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::LogSoftmaxRows(x) => {
                    if self.rg(x) {
                        // dx = g − softmax(x) · Σ_row(g)
                        let lp = self.nodes[i].value.clone();
                        let mut gx = Matrix::zeros(lp.rows(), lp.cols());
                        for r in 0..lp.rows() {
                            let gsum: f32 = g.row(r).iter().sum();
                            for c in 0..lp.cols() {
                                let p = lp.get(r, c).exp();
                                gx.set(r, c, g.get(r, c) - p * gsum);
                            }
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::MeanAll(x) => {
                    if self.rg(x) {
                        let n = self.value(x).len() as f32;
                        let (r, c) = self.value(x).shape();
                        let gx = Matrix::full(r, c, g.get(0, 0) / n);
                        self.accumulate(x, gx);
                    }
                }
                Op::SumAll(x) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let gx = Matrix::full(r, c, g.get(0, 0));
                        self.accumulate(x, gx);
                    }
                }
                Op::MeanRows(x) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let scale = 1.0 / r.max(1) as f32;
                        let gx = Matrix::from_fn(r, c, |_, cc| g.get(0, cc) * scale);
                        self.accumulate(x, gx);
                    }
                }
                Op::SumRows(x) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let gx = Matrix::from_fn(r, c, |_, cc| g.get(0, cc));
                        self.accumulate(x, gx);
                    }
                }
                Op::ConcatCols(a, b, split) => {
                    if self.rg(a) {
                        let mut ga = Matrix::zeros(g.rows(), split);
                        for r in 0..g.rows() {
                            ga.row_mut(r).copy_from_slice(&g.row(r)[..split]);
                        }
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let bw = g.cols() - split;
                        let mut gb = Matrix::zeros(g.rows(), bw);
                        for r in 0..g.rows() {
                            gb.row_mut(r).copy_from_slice(&g.row(r)[split..]);
                        }
                        self.accumulate(b, gb);
                    }
                }
                Op::ConcatRows(a, b, split) => {
                    if self.rg(a) {
                        self.accumulate(a, g.slice_rows(0, split));
                    }
                    if self.rg(b) {
                        self.accumulate(b, g.slice_rows(split, g.rows()));
                    }
                }
                Op::SliceRows(x, start, end) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let mut gx = Matrix::zeros(r, c);
                        for (gi, rr) in (start..end).enumerate() {
                            gx.row_mut(rr).copy_from_slice(g.row(gi));
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::GatherRows(x, indices) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let mut gx = Matrix::zeros(r, c);
                        for (gi, &idx) in indices.iter().enumerate() {
                            let row = g.row(gi);
                            let dst = gx.row_mut(idx);
                            for (d, &s) in dst.iter_mut().zip(row) {
                                *d += s;
                            }
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::SelectPerRow(x, indices) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let mut gx = Matrix::zeros(r, c);
                        for (rr, &cc) in indices.iter().enumerate() {
                            gx.set(rr, cc, g.get(rr, 0));
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::StackRows(vars) => {
                    for (rr, &v) in vars.iter().enumerate() {
                        if self.rg(v) {
                            let gr = Matrix::row_vector(g.row(rr));
                            self.accumulate(v, gr);
                        }
                    }
                }
                Op::Transpose(x) => {
                    if self.rg(x) {
                        self.accumulate(x, g.transpose());
                    }
                }
                Op::Clamp(x, lo, hi) => {
                    if self.rg(x) {
                        let gx =
                            g.zip_map(
                                self.value(x),
                                |gi, xi| {
                                    if xi > lo && xi < hi {
                                        gi
                                    } else {
                                        0.0
                                    }
                                },
                            );
                        self.accumulate(x, gx);
                    }
                }
                Op::MinElem(a, b) => {
                    let av = self.value(a).clone();
                    let bv = self.value(b).clone();
                    if self.rg(a) {
                        let ga = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                            if av.get(r, c) <= bv.get(r, c) {
                                g.get(r, c)
                            } else {
                                0.0
                            }
                        });
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let gb = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                            if av.get(r, c) <= bv.get(r, c) {
                                0.0
                            } else {
                                g.get(r, c)
                            }
                        });
                        self.accumulate(b, gb);
                    }
                }
                Op::BceWithLogits(x, targets) => {
                    if self.rg(x) {
                        let n = self.value(x).len() as f32;
                        let scale = g.get(0, 0) / n;
                        let gx = self
                            .value(x)
                            .zip_map(&targets, |xi, ti| (stats::sigmoid(xi) - ti) * scale);
                        self.accumulate(x, gx);
                    }
                }
                Op::LstmSeq { x, w_ih, w_hh, b, h0, c0, cache } => {
                    // All reads borrow node values in place (no weight
                    // clones), the gate outer products run through the
                    // dispatched axpy, and the dX/dh_prev row products
                    // are blocked dot sweeps into reusable scratch —
                    // same per-element op sequence as the matmul_nt
                    // calls they replace (each accumulator ascends the
                    // 4H contraction axis), so gradients are unchanged
                    // bit for bit.
                    let (gx, gw_ih, gw_hh, gb, dh_rec, dc_rec) = {
                        let t_len = self.value(x).rows();
                        let hd = self.value(h0).cols();
                        let x_m = self.value(x);
                        let w_ih_m = self.value(w_ih);
                        let w_hh_m = self.value(w_hh);
                        let h0_row = self.value(h0).row(0);
                        let c0_row = self.value(c0).row(0);

                        let mut gx = Matrix::zeros(t_len, x_m.cols());
                        let mut gw_ih = Matrix::zeros(w_ih_m.rows(), w_ih_m.cols());
                        let mut gw_hh = Matrix::zeros(hd, 4 * hd);
                        let mut gb = Matrix::zeros(1, 4 * hd);

                        // Recurrent carries: dh from t+1's gates, dc
                        // from t+1's forget path.
                        let mut dh_rec = vec![0.0f32; hd];
                        let mut dc_rec: Vec<f32> = g.row(t_len).to_vec(); // grad on c_T
                        let mut dz = vec![0.0f32; 4 * hd];

                        for t in (0..t_len).rev() {
                            let c_prev: &[f32] = if t == 0 { c0_row } else { cache.c.row(t - 1) };
                            for k in 0..hd {
                                let dh = g.get(t, k) + dh_rec[k];
                                let o = cache.o.get(t, k);
                                let tc = cache.tanh_c.get(t, k);
                                let i = cache.i.get(t, k);
                                let f = cache.f.get(t, k);
                                let gg = cache.g.get(t, k);
                                let dc = dh * o * (1.0 - tc * tc) + dc_rec[k];
                                let do_pre = dh * tc * o * (1.0 - o);
                                let di_pre = dc * gg * i * (1.0 - i);
                                let df_pre = dc * c_prev[k] * f * (1.0 - f);
                                let dg_pre = dc * i * (1.0 - gg * gg);
                                dz[k] = di_pre;
                                dz[hd + k] = df_pre;
                                dz[2 * hd + k] = dg_pre;
                                dz[3 * hd + k] = do_pre;
                                dc_rec[k] = dc * f;
                            }
                            // Parameter gradients: outer products with
                            // the step inputs.
                            let x_t = x_m.row(t);
                            let h_prev: &[f32] =
                                if t == 0 { h0_row } else { self.nodes[i].value.row(t - 1) };
                            for (r, &xv) in x_t.iter().enumerate() {
                                if xv != 0.0 {
                                    mars_tensor::simd::axpy(gw_ih.row_mut(r), xv, &dz);
                                }
                            }
                            for (r, &hv) in h_prev.iter().enumerate() {
                                if hv != 0.0 {
                                    mars_tensor::simd::axpy(gw_hh.row_mut(r), hv, &dz);
                                }
                            }
                            mars_tensor::simd::axpy(gb.row_mut(0), 1.0, &dz);
                            // Input and recurrent gradients: dz · Wᵀ.
                            dot_rows_into(&dz, w_ih_m, gx.row_mut(t));
                            dot_rows_into(&dz, w_hh_m, &mut dh_rec);
                        }
                        (gx, gw_ih, gw_hh, gb, dh_rec, dc_rec)
                    };

                    if self.rg(x) {
                        self.accumulate(x, gx);
                    }
                    if self.rg(w_ih) {
                        self.accumulate(w_ih, gw_ih);
                    }
                    if self.rg(w_hh) {
                        self.accumulate(w_hh, gw_hh);
                    }
                    if self.rg(b) {
                        self.accumulate(b, gb);
                    }
                    if self.rg(h0) {
                        self.accumulate(h0, Matrix::row_vector(&dh_rec));
                    }
                    if self.rg(c0) {
                        self.accumulate(c0, Matrix::row_vector(&dc_rec));
                    }
                }
                Op::AttnScores { proj, dproj, v, act } => {
                    // s_j = Σ_a tanh(proj[j][a] + dproj[a]) · v[a], so
                    // with u = act (the cached tanh):
                    //   d_act[j][a]  = g_j · v[a]
                    //   d_pre[j][a]  = d_act · (1 − u²)   (tanh')
                    //   d_proj       = d_pre
                    //   d_dproj[a]   = Σ_j d_pre[j][a]    (broadcast)
                    //   d_v[a]       = Σ_j u[j][a] · g_j
                    let (t_len, ad) = act.shape();
                    let g_row = g.row(0);
                    let v_col = self.value(v).as_slice().to_vec();
                    let mut gproj = Matrix::zeros(t_len, ad);
                    let mut gdproj = Matrix::zeros(1, ad);
                    let mut gv = Matrix::zeros(ad, 1);
                    for (j, &gj) in g_row.iter().enumerate().take(t_len) {
                        let act_row = act.row(j);
                        let gproj_row = gproj.row_mut(j);
                        let gdproj_row = gdproj.row_mut(0);
                        for a in 0..ad {
                            let u = act_row[a];
                            let dpre = gj * v_col[a] * (1.0 - u * u);
                            gproj_row[a] = dpre;
                            gdproj_row[a] += dpre;
                            if u != 0.0 {
                                gv.as_mut_slice()[a] += u * gj;
                            }
                        }
                    }
                    if self.rg(proj) {
                        self.accumulate(proj, gproj);
                    }
                    if self.rg(dproj) {
                        self.accumulate(dproj, gdproj);
                    }
                    if self.rg(v) {
                        self.accumulate(v, gv);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain() {
        // loss = mean(sigmoid(x * 2))
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 1, vec![0.0]), true);
        let s = t.scale(x, 2.0);
        let y = t.sigmoid(s);
        let loss = t.mean_all(y);
        t.backward(loss);
        // d/dx sigmoid(2x) at 0 = 2 * 0.25 = 0.5
        let g = t.grad(x).expect("grad");
        assert!((g.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // loss = sum(x + x) → dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]), true);
        let y = t.add(x, x);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(x).expect("grad").as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn constants_get_no_grad() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 1, vec![3.0]), true);
        let c = t.constant(Matrix::from_vec(1, 1, vec![4.0]));
        let y = t.mul(x, c);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert!(t.grad(c).is_none());
        assert_eq!(t.grad(x).expect("grad").get(0, 0), 4.0);
    }

    #[test]
    fn matmul_grads_match_manual() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1.
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]), true);
        let b = t.leaf(Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]), true);
        let y = t.matmul(a, b);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(a).expect("ga").as_slice(), &[11., 15., 11., 15.]);
        assert_eq!(t.grad(b).expect("gb").as_slice(), &[4., 4., 6., 6.]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2), true);
        t.backward(x);
    }

    #[test]
    fn select_per_row_scatter() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]), true);
        let sel = t.select_per_row(x, vec![2, 0]);
        assert_eq!(t.value(sel).as_slice(), &[3.0, 4.0]);
        let loss = t.sum_all(sel);
        t.backward(loss);
        assert_eq!(t.grad(x).expect("gx").as_slice(), &[0., 0., 1., 1., 0., 0.]);
    }

    /// One representative forward touching every pooled builder:
    /// leaf → matmul → tanh → lstm_seq → attn_scores → stack_rows.
    fn forward_values(t: &mut Tape, bind: impl Fn(&mut Tape, Matrix) -> Var) -> Vec<Vec<f32>> {
        let x = bind(t, Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.3, 0.7, -0.5, 0.25]));
        let w = bind(t, Matrix::from_vec(2, 4, (0..8).map(|i| 0.1 * i as f32 - 0.3).collect()));
        let mm = t.matmul(x, w);
        let th = t.tanh(mm);
        let w_ih =
            bind(t, Matrix::from_vec(4, 8, (0..32).map(|i| 0.05 * (i % 7) as f32).collect()));
        let w_hh = bind(t, Matrix::from_vec(2, 8, (0..16).map(|i| -0.04 * i as f32).collect()));
        let b = bind(t, Matrix::from_vec(1, 8, vec![0.01; 8]));
        let h0 = bind(t, Matrix::zeros(1, 2));
        let c0 = bind(t, Matrix::zeros(1, 2));
        let hs = t.lstm_seq(th, w_ih, w_hh, b, h0, c0);
        let dq = bind(t, Matrix::from_vec(1, 4, vec![0.2, -0.1, 0.4, -0.3]));
        let v = bind(t, Matrix::from_vec(4, 1, vec![0.3, -0.9, 0.5, 0.1]));
        let sc = t.attn_scores(th, dq, v);
        let sm = t.softmax_rows(sc);
        let st = t.stack_rows(vec![sc, sm]);
        [x, mm, th, hs, sc, sm, st].iter().map(|&v| t.value(v).as_slice().to_vec()).collect()
    }

    #[test]
    fn inference_forward_is_bit_identical_to_recorded() {
        let mut rec = Tape::new();
        let want = forward_values(&mut rec, |t, m| t.leaf(m, true));
        let mut inf = Tape::inference();
        let got = forward_values(&mut inf, |t, m| t.leaf_copy(&m));
        assert_eq!(want, got, "inference forward diverged from recorded forward");
    }

    #[test]
    fn reused_inference_tape_is_bit_stable() {
        let mut inf = Tape::inference();
        let first = forward_values(&mut inf, |t, m| t.leaf_copy(&m));
        for _ in 0..3 {
            inf.reset_for_reuse();
            assert!(inf.is_empty());
            let again = forward_values(&mut inf, |t, m| t.leaf_copy(&m));
            assert_eq!(first, again, "pooled-buffer reuse changed forward values");
        }
    }

    #[test]
    #[should_panic(expected = "inference tape")]
    fn backward_panics_on_inference_tape() {
        let mut t = Tape::inference();
        let x = t.leaf_copy(&Matrix::from_vec(1, 1, vec![1.0]));
        let loss = t.sum_all(x);
        t.backward(loss);
    }

    #[test]
    fn stack_rows_roundtrip() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::row_vector(&[1.0, 2.0]), true);
        let b = t.leaf(Matrix::row_vector(&[3.0, 4.0]), true);
        let s = t.stack_rows(vec![a, b]);
        assert_eq!(t.value(s).shape(), (2, 2));
        let w = t.constant(Matrix::from_vec(2, 1, vec![1.0, 10.0]));
        let y = t.matmul(s, w);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(a).expect("ga").as_slice(), &[1.0, 10.0]);
        assert_eq!(t.grad(b).expect("gb").as_slice(), &[1.0, 10.0]);
    }
}
