//! The Wengert-list tape: forward builders and the reverse sweep.

use crate::ops::Op;
use mars_tensor::ops::{matmul_into, matmul_nt_into, matmul_tn_into, BlockDiagCsr, CsrMatrix};
use mars_tensor::stats;
use mars_tensor::Matrix;
use std::sync::Arc;

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// `out[j] = dz · m.row(j)` for every row of `m` — the `1 × n` case of
/// [`matmul_nt`] without the temporary row-vector and result matrices.
/// Four rows at a time so `dz` stays in registers; each accumulator
/// ascends the contraction axis exactly like `matmul_nt`'s blocked
/// kernel, so the result is bit-identical to the matmul it replaces.
fn dot_rows_into(dz: &[f32], m: &Matrix, out: &mut [f32]) {
    let n = m.rows();
    let k = dz.len();
    debug_assert_eq!(out.len(), n);
    debug_assert_eq!(k, m.cols());
    let mut j = 0;
    while j + 4 <= n {
        let (b0, b1, b2, b3) = (m.row(j), m.row(j + 1), m.row(j + 2), m.row(j + 3));
        let (mut c0, mut c1, mut c2, mut c3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for t in 0..k {
            let av = dz[t];
            c0 += av * b0[t];
            c1 += av * b1[t];
            c2 += av * b2[t];
            c3 += av * b3[t];
        }
        out[j] = c0;
        out[j + 1] = c1;
        out[j + 2] = c2;
        out[j + 3] = c3;
        j += 4;
    }
    for (jj, o) in out.iter_mut().enumerate().take(n).skip(j) {
        let b_row = m.row(jj);
        let mut acc = 0.0f32;
        for t in 0..k {
            acc += dz[t] * b_row[t];
        }
        *o = acc;
    }
}

struct Node {
    value: Matrix,
    op: Op,
    requires_grad: bool,
}

/// A single-forward-pass gradient tape.
///
/// Typical usage:
/// ```
/// use mars_autograd::Tape;
/// use mars_tensor::Matrix;
///
/// let mut t = Tape::new();
/// let x = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]), true);
/// let w = t.leaf(Matrix::from_vec(2, 1, vec![0.5, -0.5]), true);
/// let y = t.matmul(x, w);
/// let loss = t.mean_all(y);
/// t.backward(loss);
/// let gw = t.grad(w).unwrap();
/// assert_eq!(gw.as_slice(), &[1.0, 2.0]);
/// ```
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    /// `true` for training tapes ([`Tape::new`]): ops and grad flags
    /// are recorded for [`Tape::backward`]. `false` for inference
    /// tapes ([`Tape::inference`]): every node is stored as a gradless
    /// [`Op::Leaf`], so backward caches (LSTM gate matrices, attention
    /// activations) are dropped the moment the forward value exists.
    record: bool,
    /// Recycled activation/gradient buffers, harvested by
    /// [`Tape::reset_for_reuse`] and handed back out by the pooled
    /// builders and backward rules — forwards *and* backwards after the
    /// first run are allocation-free on the hot path (the training
    /// scratch arena).
    pool: Vec<Vec<f32>>,
    /// Largest total f32 capacity ever held by `pool` — exported as the
    /// `autograd.arena.high_water` gauge on every
    /// [`Tape::reset_for_reuse`].
    high_water: usize,
}

/// Upper bound on recycled buffers kept across [`Tape::reset_for_reuse`]
/// calls; enough for every activation of one encoder–placer forward at
/// paper-scale widths while bounding idle memory.
const MAX_POOLED_BUFS: usize = 512;

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Empty recording (training) tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new(), grads: Vec::new(), record: true, pool: Vec::new(), high_water: 0 }
    }

    /// Empty inference tape: forward values are computed by exactly the
    /// same kernels as a recording tape (bit-identical outputs), but no
    /// op structure or backward caches are retained and
    /// [`Tape::backward`] panics.
    pub fn inference() -> Self {
        Tape {
            nodes: Vec::new(),
            grads: Vec::new(),
            record: false,
            pool: Vec::new(),
            high_water: 0,
        }
    }

    /// `false` for tapes built with [`Tape::inference`].
    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drop all nodes while recycling their backing buffers (and the
    /// node list's capacity) for the next forward pass. The values of
    /// existing [`Var`] handles become invalid; callers start a fresh
    /// forward afterwards.
    pub fn reset_for_reuse(&mut self) {
        for node in self.nodes.drain(..) {
            if self.pool.len() < MAX_POOLED_BUFS {
                self.pool.push(node.value.into_vec());
            }
        }
        // Training arena: gradient buffers from the last backward feed
        // the same pool, so the next update's backward pass reuses them
        // instead of re-allocating per node.
        for g in self.grads.drain(..).flatten() {
            if self.pool.len() < MAX_POOLED_BUFS {
                self.pool.push(g.into_vec());
            }
        }
        let held: usize = self.pool.iter().map(|b| b.capacity()).sum();
        if held > self.high_water {
            self.high_water = held;
        }
        if mars_telemetry::active() {
            mars_telemetry::counter("autograd.arena.reset").inc();
            mars_telemetry::gauge("autograd.arena.high_water", self.high_water as f64);
        }
    }

    /// Largest total f32 capacity the arena pool has ever held.
    pub fn arena_high_water(&self) -> usize {
        self.high_water
    }

    /// A recycled buffer with `len == 0` and capacity ≥ `min_cap`, or a
    /// fresh one. Scanned newest-first so the most recently retired
    /// (cache-warm) buffer wins.
    fn take_buf_empty(&mut self, min_cap: usize) -> Vec<f32> {
        match self.pool.iter().rposition(|b| b.capacity() >= min_cap) {
            Some(i) => {
                let mut b = self.pool.swap_remove(i);
                b.clear();
                b
            }
            None => Vec::with_capacity(min_cap),
        }
    }

    /// A zero-filled buffer of exactly `len` elements, recycled when
    /// possible. Contents are identical to `vec![0.0; len]`, so pooled
    /// and fresh allocations are indistinguishable to the kernels.
    fn take_buf(&mut self, len: usize) -> Vec<f32> {
        let mut b = self.take_buf_empty(len);
        b.resize(len, 0.0);
        b
    }

    /// A zero matrix backed by a recycled buffer when one fits.
    fn alloc_zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_buf(rows * cols))
    }

    /// Return a scratch matrix's backing buffer to the pool.
    fn recycle(&mut self, m: Matrix) {
        if self.pool.len() < MAX_POOLED_BUFS {
            self.pool.push(m.into_vec());
        }
    }

    /// A pooled copy of `src` — bit-identical to `src.clone()` without
    /// the allocation once the arena is warm.
    fn clone_pooled(&mut self, src: &Matrix) -> Matrix {
        let (r, c) = src.shape();
        let mut buf = self.take_buf_empty(r * c);
        buf.extend_from_slice(src.as_slice());
        Matrix::from_vec(r, c, buf)
    }

    /// Rows `[start, end)` of `src` copied into a pooled matrix —
    /// bit-identical to `src.slice_rows(start, end)`.
    fn slice_pooled(&mut self, src: &Matrix, start: usize, end: usize) -> Matrix {
        let c = src.cols();
        let mut buf = self.take_buf_empty((end - start) * c);
        buf.extend_from_slice(&src.as_slice()[start * c..end * c]);
        Matrix::from_vec(end - start, c, buf)
    }

    /// A pooled copy of `v`'s value (the `Var` form of
    /// [`Tape::clone_pooled`], borrow-safe against the node list).
    fn clone_var_pooled(&mut self, v: Var) -> Matrix {
        let (r, c) = self.nodes[v.0].value.shape();
        let mut buf = self.take_buf_empty(r * c);
        buf.extend_from_slice(self.nodes[v.0].value.as_slice());
        Matrix::from_vec(r, c, buf)
    }

    /// Rows `[start, end)` of `v`'s value copied into a pooled matrix
    /// (the `Var` form of [`Tape::slice_pooled`], borrow-safe against
    /// the node list).
    fn slice_var_pooled(&mut self, v: Var, start: usize, end: usize) -> Matrix {
        let c = self.nodes[v.0].value.cols();
        let mut buf = self.take_buf_empty((end - start) * c);
        buf.extend_from_slice(&self.nodes[v.0].value.as_slice()[start * c..end * c]);
        Matrix::from_vec(end - start, c, buf)
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        debug_assert!(value.is_finite(), "non-finite value produced by tape op");
        if self.record {
            self.nodes.push(Node { value, op, requires_grad });
        } else {
            // Inference: keep only the forward value (later builders
            // still read it by index); drop the op and its Arc'd
            // backward caches immediately.
            self.nodes.push(Node { value, op: Op::Leaf, requires_grad: false });
        }
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Insert a leaf. `requires_grad = true` for parameters, `false`
    /// for constant inputs.
    pub fn leaf(&mut self, value: Matrix, requires_grad: bool) -> Var {
        self.push(value, Op::Leaf, requires_grad)
    }

    /// Constant leaf (no gradient).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.leaf(value, false)
    }

    /// Leaf copied from `src` into a recycled buffer — how reused tapes
    /// (inference *and* persistent training tapes) bind parameters
    /// without a fresh allocation per pass. Bit-identical to
    /// `leaf(src.clone(), requires_grad)`.
    pub fn leaf_from(&mut self, src: &Matrix, requires_grad: bool) -> Var {
        let m = self.clone_pooled(src);
        self.push(m, Op::Leaf, requires_grad)
    }

    /// Gradless leaf copied from `src` into a recycled buffer.
    /// Bit-identical to `leaf(src.clone(), false)`.
    pub fn leaf_copy(&mut self, src: &Matrix) -> Var {
        self.leaf_from(src, false)
    }

    /// Value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Scalar value of a `1 × 1` variable.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() on non-scalar {:?}", m.shape());
        m.get(0, 0)
    }

    /// Gradient of a variable after [`Tape::backward`], if one was computed.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Take ownership of a variable's gradient, leaving its slot empty.
    /// Lets callers move parameter gradients out of a persistent tape
    /// without cloning; the remaining grads are recycled into the arena
    /// by the next [`Tape::reset_for_reuse`].
    pub fn take_grad(&mut self, v: Var) -> Option<Matrix> {
        self.grads.get_mut(v.0).and_then(|g| g.take())
    }

    // ---------------------------------------------------------------
    // Builders (forward evaluation + recording)
    // ---------------------------------------------------------------

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let mut v = self.alloc_zeros(self.value(a).rows(), self.value(b).cols());
        matmul_into(self.value(a), self.value(b), &mut v);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MatMul(a, b), rg)
    }

    /// Sparse-constant × dense product (`adj · x`).
    pub fn spmm(&mut self, adj: Arc<CsrMatrix>, x: Var) -> Var {
        let mut v = self.alloc_zeros(adj.rows(), self.value(x).cols());
        adj.spmm_into(self.value(x), &mut v);
        let rg = self.rg(x);
        self.push(v, Op::Spmm(adj, x), rg)
    }

    /// Block-diagonal sparse-constant × dense product over a packed
    /// graph batch (`adj · x` where `adj` stacks N per-graph
    /// adjacencies). Bit-identical per element to running
    /// [`Tape::spmm`] per graph on the matching row slices.
    pub fn spmm_blockdiag(&mut self, adj: Arc<BlockDiagCsr>, x: Var) -> Var {
        let mut v = self.alloc_zeros(adj.rows(), self.value(x).cols());
        adj.spmm_into(self.value(x), &mut v);
        let rg = self.rg(x);
        self.push(v, Op::SpmmBlockDiag(adj, x), rg)
    }

    /// Validate a row-segment offset table against a row count:
    /// `offsets = [0, n_1, n_1+n_2, …, rows]`, non-decreasing.
    fn check_offsets(offsets: &[usize], rows: usize) {
        assert!(offsets.len() >= 2, "row-segment offsets need >= 2 entries");
        assert_eq!(offsets[0], 0, "row-segment offsets must start at 0");
        assert_eq!(*offsets.last().unwrap(), rows, "row-segment offsets must end at the row count");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "row-segment offsets must be sorted");
    }

    /// Dense product `a · b` where `a`'s rows are per-graph segments
    /// (`offsets[s]..offsets[s+1]`) and `b` is a shared weight. The
    /// forward value is exactly [`Tape::matmul`]; the backward rule
    /// computes `b`'s gradient per segment and combines the parts in
    /// reverse segment order so the float-add order matches the
    /// per-graph tape's accumulation into the shared leaf.
    pub fn matmul_rowseg(&mut self, a: Var, b: Var, offsets: Arc<Vec<usize>>) -> Var {
        Self::check_offsets(&offsets, self.value(a).rows());
        let mut v = self.alloc_zeros(self.value(a).rows(), self.value(b).cols());
        matmul_into(self.value(a), self.value(b), &mut v);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MatMulRowSeg(a, b, offsets), rg)
    }

    /// Broadcast-add a shared `1 × n` bias to every row of a
    /// row-segmented matrix (forward ≡ [`Tape::add_bias`]; per-segment
    /// reverse-order bias gradient).
    pub fn add_bias_rowseg(&mut self, x: Var, bias: Var, offsets: Arc<Vec<usize>>) -> Var {
        Self::check_offsets(&offsets, self.value(x).rows());
        let (r, c) = self.value(x).shape();
        assert_eq!(self.value(bias).shape(), (1, c), "add_bias_rowseg bias shape mismatch");
        let mut v = self.clone_var_pooled(x);
        {
            let bias_row = self.nodes[bias.0].value.as_slice();
            for rr in 0..r {
                let row = v.row_mut(rr);
                for (e, &bv) in row.iter_mut().zip(bias_row) {
                    *e += bv;
                }
            }
        }
        let rg = self.rg(x) || self.rg(bias);
        self.push(v, Op::AddBiasRowSeg(x, bias, offsets), rg)
    }

    /// PReLU over a row-segmented matrix with a shared `1 × 1` slope
    /// (forward ≡ [`Tape::prelu`]; per-segment reverse-order slope
    /// gradient).
    pub fn prelu_rowseg(&mut self, x: Var, alpha: Var, offsets: Arc<Vec<usize>>) -> Var {
        Self::check_offsets(&offsets, self.value(x).rows());
        assert_eq!(self.value(alpha).shape(), (1, 1), "prelu alpha must be 1x1");
        let a = self.scalar(alpha);
        let mut v = self.clone_var_pooled(x);
        // `a * e` (not `e * a`) and the `> 0.0` test match the
        // [`Tape::prelu`] closure exactly; f32 multiply is commutative,
        // but keep the literal expression for auditability.
        for e in v.as_mut_slice() {
            *e = if *e > 0.0 { *e } else { a * *e };
        }
        let rg = self.rg(x) || self.rg(alpha);
        self.push(v, Op::PReluRowSeg(x, alpha, offsets), rg)
    }

    /// Column means of rows `[start, end)` (`1 × n`) — fused
    /// `mean_rows(slice_rows(x, start, end))`, bit-identical to that
    /// chain: the sum ascends the row range, then scales by
    /// `1 / (end − start)`.
    pub fn slice_mean_rows(&mut self, x: Var, start: usize, end: usize) -> Var {
        let (r, c) = self.value(x).shape();
        assert!(start <= end && end <= r, "slice_mean_rows range [{start}, {end}) out of {r} rows");
        let mut buf = self.take_buf(c);
        {
            let xm = &self.nodes[x.0].value;
            for rr in start..end {
                let row = xm.row(rr);
                for (o, &e) in buf.iter_mut().zip(row) {
                    *o += e;
                }
            }
            if end > start {
                let s = 1.0 / (end - start) as f32;
                for o in buf.iter_mut() {
                    *o *= s;
                }
            }
        }
        let v = Matrix::from_vec(1, c, buf);
        let rg = self.rg(x);
        self.push(v, Op::SliceMeanRows(x, start, end), rg)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), rg)
    }

    /// Broadcast-add a `1 × n` bias to every row.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let v = self.value(x).add_row_broadcast(self.value(bias));
        let rg = self.rg(x) || self.rg(bias);
        self.push(v, Op::AddBias(x, bias), rg)
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let v = self.value(x).scale(s);
        let rg = self.rg(x);
        self.push(v, Op::Scale(x, s), rg)
    }

    /// Add a scalar constant.
    pub fn add_scalar(&mut self, x: Var, s: f32) -> Var {
        let v = self.value(x).map(|e| e + s);
        let rg = self.rg(x);
        self.push(v, Op::AddScalar(x, s), rg)
    }

    /// Negation.
    pub fn neg(&mut self, x: Var) -> Var {
        self.scale(x, -1.0)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.value(x).map(stats::sigmoid);
        let rg = self.rg(x);
        self.push(v, Op::Sigmoid(x), rg)
    }

    /// Hyperbolic tangent (the deterministic [`mars_tensor::simd::tanh`]
    /// kernel, batch-dispatched).
    pub fn tanh(&mut self, x: Var) -> Var {
        let (r, c) = self.value(x).shape();
        let mut buf = self.take_buf_empty(r * c);
        buf.extend_from_slice(self.value(x).as_slice());
        mars_tensor::simd::tanh_inplace(&mut buf);
        let v = Matrix::from_vec(r, c, buf);
        let rg = self.rg(x);
        self.push(v, Op::Tanh(x), rg)
    }

    /// ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|e| e.max(0.0));
        let rg = self.rg(x);
        self.push(v, Op::Relu(x), rg)
    }

    /// Parametric ReLU; `alpha` is a `1 × 1` learnable slope.
    pub fn prelu(&mut self, x: Var, alpha: Var) -> Var {
        assert_eq!(self.value(alpha).shape(), (1, 1), "prelu alpha must be 1x1");
        let a = self.scalar(alpha);
        let v = self.value(x).map(|e| if e > 0.0 { e } else { a * e });
        let rg = self.rg(x) || self.rg(alpha);
        self.push(v, Op::PRelu(x, alpha), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f32::exp);
        let rg = self.rg(x);
        self.push(v, Op::Exp(x), rg)
    }

    /// Elementwise natural log.
    pub fn ln(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f32::ln);
        let rg = self.rg(x);
        self.push(v, Op::Ln(x), rg)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, x: Var) -> Var {
        let v = stats::softmax_rows(self.value(x));
        let rg = self.rg(x);
        self.push(v, Op::SoftmaxRows(x), rg)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, x: Var) -> Var {
        let v = stats::log_softmax_rows(self.value(x));
        let rg = self.rg(x);
        self.push(v, Op::LogSoftmaxRows(x), rg)
    }

    /// Mean of all elements (`1 × 1`).
    pub fn mean_all(&mut self, x: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(x).mean()]);
        let rg = self.rg(x);
        self.push(v, Op::MeanAll(x), rg)
    }

    /// Sum of all elements (`1 × 1`).
    pub fn sum_all(&mut self, x: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(x).sum()]);
        let rg = self.rg(x);
        self.push(v, Op::SumAll(x), rg)
    }

    /// Column means (`1 × n`).
    pub fn mean_rows(&mut self, x: Var) -> Var {
        let v = self.value(x).mean_rows();
        let rg = self.rg(x);
        self.push(v, Op::MeanRows(x), rg)
    }

    /// Column sums (`1 × n`).
    pub fn sum_rows(&mut self, x: Var) -> Var {
        let v = self.value(x).sum_rows();
        let rg = self.rg(x);
        self.push(v, Op::SumRows(x), rg)
    }

    /// `[a | b]` horizontal concatenation.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let split = self.value(a).cols();
        let v = self.value(a).hcat(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::ConcatCols(a, b, split), rg)
    }

    /// `a` stacked over `b` vertical concatenation.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let split = self.value(a).rows();
        let v = self.value(a).vcat(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::ConcatRows(a, b, split), rg)
    }

    /// Rows `[start, end)`.
    pub fn slice_rows(&mut self, x: Var, start: usize, end: usize) -> Var {
        let v = self.value(x).slice_rows(start, end);
        let rg = self.rg(x);
        self.push(v, Op::SliceRows(x, start, end), rg)
    }

    /// Gather rows by index (embedding lookup / permutation).
    pub fn gather_rows(&mut self, x: Var, indices: Vec<usize>) -> Var {
        let v = self.value(x).gather_rows(&indices);
        let rg = self.rg(x);
        self.push(v, Op::GatherRows(x, Arc::new(indices)), rg)
    }

    /// Per-row element selection: `out[r, 0] = x[r, idx[r]]`.
    pub fn select_per_row(&mut self, x: Var, indices: Vec<usize>) -> Var {
        let xm = self.value(x);
        assert_eq!(indices.len(), xm.rows(), "select_per_row index count mismatch");
        let mut v = Matrix::zeros(xm.rows(), 1);
        for (r, &c) in indices.iter().enumerate() {
            assert!(c < xm.cols(), "select_per_row column {c} out of {}", xm.cols());
            v.set(r, 0, xm.get(r, c));
        }
        let rg = self.rg(x);
        self.push(v, Op::SelectPerRow(x, Arc::new(indices)), rg)
    }

    /// Stack many `1 × n` rows into one `m × n` matrix.
    pub fn stack_rows(&mut self, rows: Vec<Var>) -> Var {
        assert!(!rows.is_empty(), "stack_rows: empty input");
        let cols = self.value(rows[0]).cols();
        let mut data = self.take_buf_empty(rows.len() * cols);
        let mut rg = false;
        for &r in &rows {
            let m = self.value(r);
            assert_eq!(m.shape(), (1, cols), "stack_rows: row {:?} != (1,{cols})", m.shape());
            data.extend_from_slice(m.as_slice());
            rg |= self.rg(r);
        }
        let v = Matrix::from_vec(rows.len(), cols, data);
        self.push(v, Op::StackRows(Arc::new(rows)), rg)
    }

    /// Transpose.
    pub fn transpose(&mut self, x: Var) -> Var {
        let v = self.value(x).transpose();
        let rg = self.rg(x);
        self.push(v, Op::Transpose(x), rg)
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(&mut self, x: Var, lo: f32, hi: f32) -> Var {
        assert!(lo <= hi);
        let v = self.value(x).map(|e| e.clamp(lo, hi));
        let rg = self.rg(x);
        self.push(v, Op::Clamp(x, lo, hi), rg)
    }

    /// Elementwise minimum.
    pub fn min_elem(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip_map(self.value(b), f32::min);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MinElem(a, b), rg)
    }

    /// Mean binary-cross-entropy with logits against constant targets.
    ///
    /// Uses the numerically-stable formulation
    /// `max(x, 0) − x·t + ln(1 + exp(−|x|))`.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Arc<Matrix>) -> Var {
        let x = self.value(logits);
        assert_eq!(x.shape(), targets.shape(), "bce_with_logits shape mismatch");
        let mut acc = 0.0f32;
        for (xi, ti) in x.as_slice().iter().zip(targets.as_slice()) {
            acc += xi.max(0.0) - xi * ti + (1.0 + (-xi.abs()).exp()).ln();
        }
        let v = Matrix::from_vec(1, 1, vec![acc / x.len() as f32]);
        let rg = self.rg(logits);
        self.push(v, Op::BceWithLogits(logits, targets), rg)
    }

    /// Fused LSTM over a whole sequence (hand-written BPTT).
    ///
    /// `x` is `T × F`; `w_ih`/`w_hh`/`b` are the fused gate parameters
    /// (`F × 4H`, `H × 4H`, `1 × 4H`, gate order `[i|f|g|o]`);
    /// `h0`/`c0` the initial state (`1 × H`). Returns `(T+1) × H`: rows
    /// `0..T` are hidden states, row `T` is the final cell state.
    ///
    /// Replaces ~25 recorded ops per timestep with a single node —
    /// the difference between minutes and hours at paper-scale widths.
    pub fn lstm_seq(&mut self, x: Var, w_ih: Var, w_hh: Var, b: Var, h0: Var, c0: Var) -> Var {
        let (t_len, in_dim) = self.value(x).shape();
        let hd4 = self.value(w_ih).cols();
        assert_eq!(self.value(w_ih).rows(), in_dim, "w_ih shape mismatch");
        assert!(hd4.is_multiple_of(4), "w_ih width must be 4·H");
        let hd = hd4 / 4;
        assert_eq!(self.value(w_hh).shape(), (hd, hd4), "w_hh shape mismatch");
        assert_eq!(self.value(b).shape(), (1, hd4), "bias shape mismatch");
        assert_eq!(self.value(h0).shape(), (1, hd), "h0 shape mismatch");
        assert_eq!(self.value(c0).shape(), (1, hd), "c0 shape mismatch");
        assert!(t_len > 0, "empty sequence");

        // Fused gate pass: one packed matmul computes x·W_ih for all
        // four gates of the whole sequence, and the recurrent h·W_hh
        // term is an in-place axpy sweep over W_hh rows — no per-step
        // Matrix allocation. Per element the arithmetic is exactly the
        // serial `inner_nn` sequence (ascending k with the zero skip),
        // so the fused loop is bit-identical to the matmul it replaces.
        let mut xw = self.alloc_zeros(t_len, hd4); // T × 4H
        matmul_into(self.value(x), self.value(w_ih), &mut xw);

        let mut cache = crate::ops::LstmCache {
            i: self.alloc_zeros(t_len, hd),
            f: self.alloc_zeros(t_len, hd),
            g: self.alloc_zeros(t_len, hd),
            o: self.alloc_zeros(t_len, hd),
            c: self.alloc_zeros(t_len, hd),
            tanh_c: self.alloc_zeros(t_len, hd),
        };
        let mut out = self.alloc_zeros(t_len + 1, hd);
        {
            let mut h_prev: Vec<f32> = self.value(h0).row(0).to_vec();
            let mut c_prev: Vec<f32> = self.value(c0).row(0).to_vec();
            let w_hh_m = self.value(w_hh);
            let b_row = self.value(b).row(0);
            let mut hw = vec![0.0f32; hd4]; // reusable 1 × 4H scratch

            for t in 0..t_len {
                // z = (x_t·W_ih + h_{t-1}·W_hh) + b, accumulated into hw.
                hw.fill(0.0);
                mars_tensor::simd::strided_sweep(&mut hw, &h_prev, w_hh_m.as_slice(), hd4);
                let xw_row = xw.row(t);
                for j in 0..hd4 {
                    hw[j] = (xw_row[j] + hw[j]) + b_row[j];
                }
                // Candidate gate tanh as one batch kernel call; the
                // sigmoid gates stay per-element (libm exp is cheap).
                mars_tensor::simd::tanh_inplace(&mut hw[2 * hd..3 * hd]);
                for k in 0..hd {
                    let ig = stats::sigmoid(hw[k]);
                    let fg = stats::sigmoid(hw[hd + k]);
                    let gg = hw[2 * hd + k];
                    let og = stats::sigmoid(hw[3 * hd + k]);
                    let c = fg * c_prev[k] + ig * gg;
                    cache.i.set(t, k, ig);
                    cache.f.set(t, k, fg);
                    cache.g.set(t, k, gg);
                    cache.o.set(t, k, og);
                    cache.c.set(t, k, c);
                    c_prev[k] = c;
                }
                // tanh(c_t) for the whole row, then h_t = o ⊙ tanh(c_t).
                let tc_row = cache.tanh_c.row_mut(t);
                tc_row.copy_from_slice(&c_prev);
                mars_tensor::simd::tanh_inplace(tc_row);
                for (k, hp) in h_prev.iter_mut().enumerate().take(hd) {
                    let h = cache.o.get(t, k) * cache.tanh_c.get(t, k);
                    out.set(t, k, h);
                    *hp = h;
                }
            }
            // Final cell state as the extra row.
            for (k, &c) in c_prev.iter().enumerate() {
                out.set(t_len, k, c);
            }
        }

        self.recycle(xw);
        if !self.record {
            // Inference: the gate caches exist only for BPTT — recycle
            // their buffers instead of threading them through `push`
            // (which would drop them on the floor).
            let crate::ops::LstmCache { i, f, g, o, c, tanh_c } = cache;
            for m in [i, f, g, o, c, tanh_c] {
                self.recycle(m);
            }
            return self.push(out, Op::Leaf, false);
        }
        let rg = self.rg(x)
            || self.rg(w_ih)
            || self.rg(w_hh)
            || self.rg(b)
            || self.rg(h0)
            || self.rg(c0);
        self.push(out, Op::LstmSeq { x, w_ih, w_hh, b, h0, c0, cache: Arc::new(cache) }, rg)
    }

    /// Fused additive-attention scores `(tanh(proj ⊕ dproj) · v)ᵀ`.
    ///
    /// `proj` is the pre-projected encoder matrix (`T × A`), `dproj`
    /// the projected decoder query (`1 × A`), `v` the scoring vector
    /// (`A × 1`); returns the `1 × T` score row. One node replaces the
    /// four-op `add_bias → tanh → matmul → transpose` chain (and its
    /// three `T × A`-sized intermediates) on the per-placement decoder
    /// hot path. Per element the score accumulates ascending `a` with
    /// the `== 0.0` skip, exactly like the `matmul` it replaces.
    pub fn attn_scores(&mut self, proj: Var, dproj: Var, v: Var) -> Var {
        let (t_len, ad) = self.value(proj).shape();
        assert_eq!(self.value(dproj).shape(), (1, ad), "attn_scores: dproj shape mismatch");
        assert_eq!(self.value(v).shape(), (ad, 1), "attn_scores: v shape mismatch");
        let mut act = self.alloc_zeros(t_len, ad);
        let mut scores = self.alloc_zeros(1, t_len);
        {
            let proj_m = self.value(proj);
            let dproj_row = self.value(dproj).row(0);
            let v_m = self.value(v);
            let v_col = v_m.as_slice(); // A × 1, contiguous
            for j in 0..t_len {
                let proj_row = proj_m.row(j);
                let act_row = act.row_mut(j);
                for a in 0..ad {
                    act_row[a] = proj_row[a] + dproj_row[a];
                }
                mars_tensor::simd::tanh_inplace(act_row);
                let mut s = 0.0f32;
                for a in 0..ad {
                    let tv = act_row[a];
                    if tv != 0.0 {
                        s += tv * v_col[a];
                    }
                }
                scores.set(0, j, s);
            }
        }
        if !self.record {
            // The tanh activations are a backward-only cache.
            self.recycle(act);
            return self.push(scores, Op::Leaf, false);
        }
        let rg = self.rg(proj) || self.rg(dproj) || self.rg(v);
        self.push(scores, Op::AttnScores { proj, dproj, v, act: Arc::new(act) }, rg)
    }

    // ---------------------------------------------------------------
    // Backward
    // ---------------------------------------------------------------

    fn accumulate(&mut self, v: Var, g: Matrix) {
        if !self.nodes[v.0].requires_grad {
            self.recycle(g);
            return;
        }
        match &mut self.grads[v.0] {
            Some(existing) => {
                existing.add_assign(&g);
                self.recycle(g);
            }
            slot @ None => *slot = Some(g),
        }
    }

    /// Combine per-segment gradient parts in *reverse* segment order:
    /// `acc = part(S−1); acc += part(S−2); …; acc += part(0)`. This is
    /// the float-add order the per-graph tape produces — the backward
    /// sweep visits higher-index (later-recorded) graphs first, so the
    /// shared-parameter slot is seeded by the last graph and earlier
    /// graphs `add_assign` into it.
    fn combine_rev_segments(
        &mut self,
        offsets: &[usize],
        mut part: impl FnMut(&mut Self, usize, usize) -> Matrix,
    ) -> Matrix {
        let segs = offsets.len() - 1;
        let mut acc = part(self, offsets[segs - 1], offsets[segs]);
        for s in (0..segs - 1).rev() {
            let p = part(self, offsets[s], offsets[s + 1]);
            acc.add_assign(&p);
            self.recycle(p);
        }
        acc
    }

    /// Run the reverse sweep from a scalar (`1 × 1`) loss.
    ///
    /// Gradients are available through [`Tape::grad`] afterwards. A
    /// second call resets previous gradients.
    pub fn backward(&mut self, loss: Var) {
        let _span = mars_telemetry::span("autograd.tape.backward");
        assert!(self.record, "backward() on an inference tape — build it with Tape::new()");
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward() requires a scalar loss, got {:?}",
            self.value(loss).shape()
        );
        // Arena: recycle any gradients from a previous backward on this
        // tape and reuse the slot vector's capacity.
        for g in self.grads.drain(..).flatten() {
            if self.pool.len() < MAX_POOLED_BUFS {
                self.pool.push(g.into_vec());
            }
        }
        self.grads.resize_with(self.nodes.len(), || None);
        let mut seed = self.take_buf_empty(1);
        seed.push(1.0);
        self.grads[loss.0] = Some(Matrix::from_vec(1, 1, seed));

        for i in (0..=loss.0).rev() {
            // Take-and-restore instead of clone: the node's own grad is
            // never aliased by its parents' slots (parents have strictly
            // lower indices), so the loop can own `g` for free.
            let Some(g) = self.grads[i].take() else { continue };
            if !self.nodes[i].requires_grad {
                self.grads[i] = Some(g);
                continue;
            }
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    if self.rg(a) {
                        let mut ga = self.alloc_zeros(g.rows(), self.value(b).rows());
                        matmul_nt_into(&g, self.value(b), &mut ga);
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let mut gb = self.alloc_zeros(self.value(a).cols(), g.cols());
                        matmul_tn_into(self.value(a), &g, &mut gb);
                        self.accumulate(b, gb);
                    }
                }
                Op::Spmm(adj, x) => {
                    if self.rg(x) {
                        let mut gx = self.alloc_zeros(adj.cols(), g.cols());
                        adj.spmm_t_into(&g, &mut gx);
                        self.accumulate(x, gx);
                    }
                }
                Op::SpmmBlockDiag(adj, x) => {
                    if self.rg(x) {
                        let mut gx = self.alloc_zeros(adj.cols(), g.cols());
                        adj.spmm_t_into(&g, &mut gx);
                        self.accumulate(x, gx);
                    }
                }
                Op::MatMulRowSeg(a, b, offsets) => {
                    if self.rg(a) {
                        // Row-local: each output row depends only on its
                        // own `g` row, so the whole-matrix product is
                        // bit-identical to the per-segment products.
                        let mut ga = self.alloc_zeros(g.rows(), self.value(b).rows());
                        matmul_nt_into(&g, self.value(b), &mut ga);
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        // Shared weight: per-segment grads, combined in
                        // reverse segment order (see combine_rev_segments).
                        // Segments are materialized so the kernel sees the
                        // same operand shapes as the per-graph tape (same
                        // packing/threshold decisions → same sweep).
                        let gb = self.combine_rev_segments(&offsets, |t, o0, o1| {
                            let a_seg = t.slice_var_pooled(a, o0, o1);
                            let g_seg = t.slice_pooled(&g, o0, o1);
                            let mut part = t.alloc_zeros(a_seg.cols(), g_seg.cols());
                            matmul_tn_into(&a_seg, &g_seg, &mut part);
                            t.recycle(a_seg);
                            t.recycle(g_seg);
                            part
                        });
                        self.accumulate(b, gb);
                    }
                }
                Op::AddBiasRowSeg(x, bias, offsets) => {
                    if self.rg(x) {
                        let gx = self.clone_pooled(&g);
                        self.accumulate(x, gx);
                    }
                    if self.rg(bias) {
                        // Per-segment sum_rows (ascending rows within a
                        // segment), combined in reverse segment order.
                        let gb = self.combine_rev_segments(&offsets, |t, o0, o1| {
                            let mut part = t.alloc_zeros(1, g.cols());
                            for rr in o0..o1 {
                                let row = g.row(rr);
                                for (o, &e) in part.as_mut_slice().iter_mut().zip(row) {
                                    *o += e;
                                }
                            }
                            part
                        });
                        self.accumulate(bias, gb);
                    }
                }
                Op::PReluRowSeg(x, alpha, offsets) => {
                    let a = self.scalar(alpha);
                    if self.rg(x) {
                        // Elementwise → row-local → whole-matrix pass is
                        // bit-identical to per-segment passes.
                        let mut gx = self.clone_pooled(&g);
                        for (gi, &xi) in
                            gx.as_mut_slice().iter_mut().zip(self.nodes[x.0].value.as_slice())
                        {
                            *gi = if xi > 0.0 { *gi } else { a * *gi };
                        }
                        self.accumulate(x, gx);
                    }
                    if self.rg(alpha) {
                        // Per-segment slope fold (the same ascending
                        // iterator sum as Op::PRelu over each segment's
                        // contiguous element range), combined reversed.
                        let galpha = self.combine_rev_segments(&offsets, |t, o0, o1| {
                            let c = g.cols();
                            let da: f32 = g.as_slice()[o0 * c..o1 * c]
                                .iter()
                                .zip(&t.nodes[x.0].value.as_slice()[o0 * c..o1 * c])
                                .map(|(&gi, &xi)| if xi > 0.0 { 0.0 } else { gi * xi })
                                .sum();
                            let mut buf = t.take_buf_empty(1);
                            buf.push(da);
                            Matrix::from_vec(1, 1, buf)
                        });
                        self.accumulate(alpha, galpha);
                    }
                }
                Op::SliceMeanRows(x, start, end) => {
                    if self.rg(x) {
                        // Ranged in-place update of the parent's grad:
                        // rows outside [start, end) are never touched, so
                        // no `0.0 + (-0.0)` sign flips and no full-size
                        // scratch matrix. Matches the SliceRows +
                        // MeanRows chain's float ops on the rows it does
                        // touch (g[c] · scale, then add_assign).
                        let scale = 1.0 / (end - start).max(1) as f32;
                        // Fresh slot: *assign* `g[c] · scale` into the
                        // range (a `0.0 +` would turn `-0.0` grads into
                        // `+0.0`, diverging from the per-graph assign).
                        let fresh = self.grads[x.0].is_none();
                        if fresh {
                            let (r, c) = self.nodes[x.0].value.shape();
                            let z = self.alloc_zeros(r, c);
                            self.grads[x.0] = Some(z);
                        }
                        let gx = self.grads[x.0].as_mut().expect("slot just filled");
                        let g_row = g.row(0);
                        for rr in start..end {
                            let dst = gx.row_mut(rr);
                            for (d, &gc) in dst.iter_mut().zip(g_row) {
                                if fresh {
                                    *d = gc * scale;
                                } else {
                                    *d += gc * scale;
                                }
                            }
                        }
                    }
                }
                Op::Add(a, b) => {
                    if self.rg(a) {
                        let ga = self.clone_pooled(&g);
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let gb = self.clone_pooled(&g);
                        self.accumulate(b, gb);
                    }
                }
                Op::Sub(a, b) => {
                    if self.rg(a) {
                        let ga = self.clone_pooled(&g);
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let mut gb = self.clone_pooled(&g);
                        for e in gb.as_mut_slice() {
                            *e *= -1.0;
                        }
                        self.accumulate(b, gb);
                    }
                }
                Op::Mul(a, b) => {
                    if self.rg(a) {
                        let mut ga = self.clone_pooled(&g);
                        for (e, &bv) in ga.as_mut_slice().iter_mut().zip(self.nodes[b.0].value.as_slice()) {
                            *e *= bv;
                        }
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let mut gb = self.clone_pooled(&g);
                        for (e, &av) in gb.as_mut_slice().iter_mut().zip(self.nodes[a.0].value.as_slice()) {
                            *e *= av;
                        }
                        self.accumulate(b, gb);
                    }
                }
                Op::AddBias(x, bias) => {
                    if self.rg(x) {
                        let gx = self.clone_pooled(&g);
                        self.accumulate(x, gx);
                    }
                    if self.rg(bias) {
                        // sum_rows, pooled: ascending rows then columns,
                        // exactly Matrix::sum_rows' accumulation order.
                        let mut gb = self.alloc_zeros(1, g.cols());
                        for rr in 0..g.rows() {
                            let row = g.row(rr);
                            for (o, &e) in gb.as_mut_slice().iter_mut().zip(row) {
                                *o += e;
                            }
                        }
                        self.accumulate(bias, gb);
                    }
                }
                Op::Scale(x, s) => {
                    if self.rg(x) {
                        let mut gx = self.clone_pooled(&g);
                        for e in gx.as_mut_slice() {
                            *e *= s;
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::AddScalar(x, _) => {
                    if self.rg(x) {
                        let gx = self.clone_pooled(&g);
                        self.accumulate(x, gx);
                    }
                }
                Op::Sigmoid(x) => {
                    if self.rg(x) {
                        let mut gx = self.clone_pooled(&g);
                        for (gi, &yi) in
                            gx.as_mut_slice().iter_mut().zip(self.nodes[i].value.as_slice())
                        {
                            *gi = *gi * yi * (1.0 - yi);
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::Tanh(x) => {
                    if self.rg(x) {
                        let mut gx = self.clone_pooled(&g);
                        for (gi, &yi) in
                            gx.as_mut_slice().iter_mut().zip(self.nodes[i].value.as_slice())
                        {
                            *gi = *gi * (1.0 - yi * yi);
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::Relu(x) => {
                    if self.rg(x) {
                        let mut gx = self.clone_pooled(&g);
                        for (gi, &xi) in
                            gx.as_mut_slice().iter_mut().zip(self.nodes[x.0].value.as_slice())
                        {
                            *gi = if xi > 0.0 { *gi } else { 0.0 };
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::PRelu(x, alpha) => {
                    let a = self.scalar(alpha);
                    if self.rg(x) {
                        let mut gx = self.clone_pooled(&g);
                        for (gi, &xi) in
                            gx.as_mut_slice().iter_mut().zip(self.nodes[x.0].value.as_slice())
                        {
                            *gi = if xi > 0.0 { *gi } else { a * *gi };
                        }
                        self.accumulate(x, gx);
                    }
                    if self.rg(alpha) {
                        let da: f32 = g
                            .as_slice()
                            .iter()
                            .zip(self.value(x).as_slice())
                            .map(|(&gi, &xi)| if xi > 0.0 { 0.0 } else { gi * xi })
                            .sum();
                        let mut buf = self.take_buf_empty(1);
                        buf.push(da);
                        self.accumulate(alpha, Matrix::from_vec(1, 1, buf));
                    }
                }
                Op::Exp(x) => {
                    if self.rg(x) {
                        let mut gx = self.clone_pooled(&g);
                        for (gi, &yi) in
                            gx.as_mut_slice().iter_mut().zip(self.nodes[i].value.as_slice())
                        {
                            *gi *= yi;
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::Ln(x) => {
                    if self.rg(x) {
                        let mut gx = self.clone_pooled(&g);
                        for (gi, &xi) in
                            gx.as_mut_slice().iter_mut().zip(self.nodes[x.0].value.as_slice())
                        {
                            *gi /= xi;
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::SoftmaxRows(x) => {
                    if self.rg(x) {
                        // dx = p ⊙ (g − ⟨g, p⟩) per row.
                        let (rows, cols) = self.nodes[i].value.shape();
                        let mut gx = self.alloc_zeros(rows, cols);
                        let p = &self.nodes[i].value;
                        for r in 0..rows {
                            let dot: f32 =
                                g.row(r).iter().zip(p.row(r)).map(|(&gi, &pi)| gi * pi).sum();
                            for c in 0..cols {
                                gx.set(r, c, p.get(r, c) * (g.get(r, c) - dot));
                            }
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::LogSoftmaxRows(x) => {
                    if self.rg(x) {
                        // dx = g − softmax(x) · Σ_row(g)
                        let (rows, cols) = self.nodes[i].value.shape();
                        let mut gx = self.alloc_zeros(rows, cols);
                        let lp = &self.nodes[i].value;
                        for r in 0..rows {
                            let gsum: f32 = g.row(r).iter().sum();
                            for c in 0..cols {
                                let p = lp.get(r, c).exp();
                                gx.set(r, c, g.get(r, c) - p * gsum);
                            }
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::MeanAll(x) => {
                    if self.rg(x) {
                        let n = self.value(x).len() as f32;
                        let (r, c) = self.value(x).shape();
                        let fill = g.get(0, 0) / n;
                        let mut gx = self.alloc_zeros(r, c);
                        gx.as_mut_slice().fill(fill);
                        self.accumulate(x, gx);
                    }
                }
                Op::SumAll(x) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let fill = g.get(0, 0);
                        let mut gx = self.alloc_zeros(r, c);
                        gx.as_mut_slice().fill(fill);
                        self.accumulate(x, gx);
                    }
                }
                Op::MeanRows(x) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let scale = 1.0 / r.max(1) as f32;
                        let mut gx = self.alloc_zeros(r, c);
                        for rr in 0..r {
                            let dst = gx.row_mut(rr);
                            for (d, &gc) in dst.iter_mut().zip(g.row(0)) {
                                *d = gc * scale;
                            }
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::SumRows(x) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let mut gx = self.alloc_zeros(r, c);
                        for rr in 0..r {
                            gx.row_mut(rr).copy_from_slice(g.row(0));
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::ConcatCols(a, b, split) => {
                    if self.rg(a) {
                        let mut ga = Matrix::zeros(g.rows(), split);
                        for r in 0..g.rows() {
                            ga.row_mut(r).copy_from_slice(&g.row(r)[..split]);
                        }
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let bw = g.cols() - split;
                        let mut gb = Matrix::zeros(g.rows(), bw);
                        for r in 0..g.rows() {
                            gb.row_mut(r).copy_from_slice(&g.row(r)[split..]);
                        }
                        self.accumulate(b, gb);
                    }
                }
                Op::ConcatRows(a, b, split) => {
                    if self.rg(a) {
                        self.accumulate(a, g.slice_rows(0, split));
                    }
                    if self.rg(b) {
                        self.accumulate(b, g.slice_rows(split, g.rows()));
                    }
                }
                Op::SliceRows(x, start, end) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let mut gx = Matrix::zeros(r, c);
                        for (gi, rr) in (start..end).enumerate() {
                            gx.row_mut(rr).copy_from_slice(g.row(gi));
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::GatherRows(x, indices) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let mut gx = Matrix::zeros(r, c);
                        for (gi, &idx) in indices.iter().enumerate() {
                            let row = g.row(gi);
                            let dst = gx.row_mut(idx);
                            for (d, &s) in dst.iter_mut().zip(row) {
                                *d += s;
                            }
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::SelectPerRow(x, indices) => {
                    if self.rg(x) {
                        let (r, c) = self.value(x).shape();
                        let mut gx = Matrix::zeros(r, c);
                        for (rr, &cc) in indices.iter().enumerate() {
                            gx.set(rr, cc, g.get(rr, 0));
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::StackRows(vars) => {
                    for (rr, &v) in vars.iter().enumerate() {
                        if self.rg(v) {
                            let gr = Matrix::row_vector(g.row(rr));
                            self.accumulate(v, gr);
                        }
                    }
                }
                Op::Transpose(x) => {
                    if self.rg(x) {
                        self.accumulate(x, g.transpose());
                    }
                }
                Op::Clamp(x, lo, hi) => {
                    if self.rg(x) {
                        let mut gx = self.clone_pooled(&g);
                        for (gi, &xi) in
                            gx.as_mut_slice().iter_mut().zip(self.nodes[x.0].value.as_slice())
                        {
                            *gi = if xi > lo && xi < hi { *gi } else { 0.0 };
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::MinElem(a, b) => {
                    let av = self.value(a).clone();
                    let bv = self.value(b).clone();
                    if self.rg(a) {
                        let ga = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                            if av.get(r, c) <= bv.get(r, c) {
                                g.get(r, c)
                            } else {
                                0.0
                            }
                        });
                        self.accumulate(a, ga);
                    }
                    if self.rg(b) {
                        let gb = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                            if av.get(r, c) <= bv.get(r, c) {
                                0.0
                            } else {
                                g.get(r, c)
                            }
                        });
                        self.accumulate(b, gb);
                    }
                }
                Op::BceWithLogits(x, targets) => {
                    if self.rg(x) {
                        let n = self.value(x).len() as f32;
                        let scale = g.get(0, 0) / n;
                        let mut gx = self.clone_var_pooled(x);
                        for (e, &ti) in gx.as_mut_slice().iter_mut().zip(targets.as_slice()) {
                            *e = (stats::sigmoid(*e) - ti) * scale;
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::LstmSeq { x, w_ih, w_hh, b, h0, c0, cache } => {
                    // All reads borrow node values in place (no weight
                    // clones), the gate outer products run through the
                    // dispatched axpy, and the dX/dh_prev row products
                    // are blocked dot sweeps into reusable scratch —
                    // same per-element op sequence as the matmul_nt
                    // calls they replace (each accumulator ascends the
                    // 4H contraction axis), so gradients are unchanged
                    // bit for bit.
                    let (gx, gw_ih, gw_hh, gb, dh_rec, dc_rec) = {
                        let t_len = self.value(x).rows();
                        let hd = self.value(h0).cols();
                        let x_m = self.value(x);
                        let w_ih_m = self.value(w_ih);
                        let w_hh_m = self.value(w_hh);
                        let h0_row = self.value(h0).row(0);
                        let c0_row = self.value(c0).row(0);

                        let mut gx = Matrix::zeros(t_len, x_m.cols());
                        let mut gw_ih = Matrix::zeros(w_ih_m.rows(), w_ih_m.cols());
                        let mut gw_hh = Matrix::zeros(hd, 4 * hd);
                        let mut gb = Matrix::zeros(1, 4 * hd);

                        // Recurrent carries: dh from t+1's gates, dc
                        // from t+1's forget path.
                        let mut dh_rec = vec![0.0f32; hd];
                        let mut dc_rec: Vec<f32> = g.row(t_len).to_vec(); // grad on c_T
                        let mut dz = vec![0.0f32; 4 * hd];

                        for t in (0..t_len).rev() {
                            let c_prev: &[f32] = if t == 0 { c0_row } else { cache.c.row(t - 1) };
                            for k in 0..hd {
                                let dh = g.get(t, k) + dh_rec[k];
                                let o = cache.o.get(t, k);
                                let tc = cache.tanh_c.get(t, k);
                                let i = cache.i.get(t, k);
                                let f = cache.f.get(t, k);
                                let gg = cache.g.get(t, k);
                                let dc = dh * o * (1.0 - tc * tc) + dc_rec[k];
                                let do_pre = dh * tc * o * (1.0 - o);
                                let di_pre = dc * gg * i * (1.0 - i);
                                let df_pre = dc * c_prev[k] * f * (1.0 - f);
                                let dg_pre = dc * i * (1.0 - gg * gg);
                                dz[k] = di_pre;
                                dz[hd + k] = df_pre;
                                dz[2 * hd + k] = dg_pre;
                                dz[3 * hd + k] = do_pre;
                                dc_rec[k] = dc * f;
                            }
                            // Parameter gradients: outer products with
                            // the step inputs.
                            let x_t = x_m.row(t);
                            let h_prev: &[f32] =
                                if t == 0 { h0_row } else { self.nodes[i].value.row(t - 1) };
                            for (r, &xv) in x_t.iter().enumerate() {
                                if xv != 0.0 {
                                    mars_tensor::simd::axpy(gw_ih.row_mut(r), xv, &dz);
                                }
                            }
                            for (r, &hv) in h_prev.iter().enumerate() {
                                if hv != 0.0 {
                                    mars_tensor::simd::axpy(gw_hh.row_mut(r), hv, &dz);
                                }
                            }
                            mars_tensor::simd::axpy(gb.row_mut(0), 1.0, &dz);
                            // Input and recurrent gradients: dz · Wᵀ.
                            dot_rows_into(&dz, w_ih_m, gx.row_mut(t));
                            dot_rows_into(&dz, w_hh_m, &mut dh_rec);
                        }
                        (gx, gw_ih, gw_hh, gb, dh_rec, dc_rec)
                    };

                    if self.rg(x) {
                        self.accumulate(x, gx);
                    }
                    if self.rg(w_ih) {
                        self.accumulate(w_ih, gw_ih);
                    }
                    if self.rg(w_hh) {
                        self.accumulate(w_hh, gw_hh);
                    }
                    if self.rg(b) {
                        self.accumulate(b, gb);
                    }
                    if self.rg(h0) {
                        self.accumulate(h0, Matrix::row_vector(&dh_rec));
                    }
                    if self.rg(c0) {
                        self.accumulate(c0, Matrix::row_vector(&dc_rec));
                    }
                }
                Op::AttnScores { proj, dproj, v, act } => {
                    // s_j = Σ_a tanh(proj[j][a] + dproj[a]) · v[a], so
                    // with u = act (the cached tanh):
                    //   d_act[j][a]  = g_j · v[a]
                    //   d_pre[j][a]  = d_act · (1 − u²)   (tanh')
                    //   d_proj       = d_pre
                    //   d_dproj[a]   = Σ_j d_pre[j][a]    (broadcast)
                    //   d_v[a]       = Σ_j u[j][a] · g_j
                    let (t_len, ad) = act.shape();
                    let g_row = g.row(0);
                    let v_col = self.value(v).as_slice().to_vec();
                    let mut gproj = Matrix::zeros(t_len, ad);
                    let mut gdproj = Matrix::zeros(1, ad);
                    let mut gv = Matrix::zeros(ad, 1);
                    for (j, &gj) in g_row.iter().enumerate().take(t_len) {
                        let act_row = act.row(j);
                        let gproj_row = gproj.row_mut(j);
                        let gdproj_row = gdproj.row_mut(0);
                        for a in 0..ad {
                            let u = act_row[a];
                            let dpre = gj * v_col[a] * (1.0 - u * u);
                            gproj_row[a] = dpre;
                            gdproj_row[a] += dpre;
                            if u != 0.0 {
                                gv.as_mut_slice()[a] += u * gj;
                            }
                        }
                    }
                    if self.rg(proj) {
                        self.accumulate(proj, gproj);
                    }
                    if self.rg(dproj) {
                        self.accumulate(dproj, gdproj);
                    }
                    if self.rg(v) {
                        self.accumulate(v, gv);
                    }
                }
            }
            // Restore the node's own grad (taken, not cloned, above) so
            // Tape::grad / take_grad still see every computed gradient.
            self.grads[i] = Some(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain() {
        // loss = mean(sigmoid(x * 2))
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 1, vec![0.0]), true);
        let s = t.scale(x, 2.0);
        let y = t.sigmoid(s);
        let loss = t.mean_all(y);
        t.backward(loss);
        // d/dx sigmoid(2x) at 0 = 2 * 0.25 = 0.5
        let g = t.grad(x).expect("grad");
        assert!((g.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // loss = sum(x + x) → dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]), true);
        let y = t.add(x, x);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(x).expect("grad").as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn constants_get_no_grad() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 1, vec![3.0]), true);
        let c = t.constant(Matrix::from_vec(1, 1, vec![4.0]));
        let y = t.mul(x, c);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert!(t.grad(c).is_none());
        assert_eq!(t.grad(x).expect("grad").get(0, 0), 4.0);
    }

    #[test]
    fn matmul_grads_match_manual() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1.
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]), true);
        let b = t.leaf(Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]), true);
        let y = t.matmul(a, b);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(a).expect("ga").as_slice(), &[11., 15., 11., 15.]);
        assert_eq!(t.grad(b).expect("gb").as_slice(), &[4., 4., 6., 6.]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2), true);
        t.backward(x);
    }

    #[test]
    fn select_per_row_scatter() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]), true);
        let sel = t.select_per_row(x, vec![2, 0]);
        assert_eq!(t.value(sel).as_slice(), &[3.0, 4.0]);
        let loss = t.sum_all(sel);
        t.backward(loss);
        assert_eq!(t.grad(x).expect("gx").as_slice(), &[0., 0., 1., 1., 0., 0.]);
    }

    /// One representative forward touching every pooled builder:
    /// leaf → matmul → tanh → lstm_seq → attn_scores → stack_rows.
    fn forward_values(t: &mut Tape, bind: impl Fn(&mut Tape, Matrix) -> Var) -> Vec<Vec<f32>> {
        let x = bind(t, Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.3, 0.7, -0.5, 0.25]));
        let w = bind(t, Matrix::from_vec(2, 4, (0..8).map(|i| 0.1 * i as f32 - 0.3).collect()));
        let mm = t.matmul(x, w);
        let th = t.tanh(mm);
        let w_ih =
            bind(t, Matrix::from_vec(4, 8, (0..32).map(|i| 0.05 * (i % 7) as f32).collect()));
        let w_hh = bind(t, Matrix::from_vec(2, 8, (0..16).map(|i| -0.04 * i as f32).collect()));
        let b = bind(t, Matrix::from_vec(1, 8, vec![0.01; 8]));
        let h0 = bind(t, Matrix::zeros(1, 2));
        let c0 = bind(t, Matrix::zeros(1, 2));
        let hs = t.lstm_seq(th, w_ih, w_hh, b, h0, c0);
        let dq = bind(t, Matrix::from_vec(1, 4, vec![0.2, -0.1, 0.4, -0.3]));
        let v = bind(t, Matrix::from_vec(4, 1, vec![0.3, -0.9, 0.5, 0.1]));
        let sc = t.attn_scores(th, dq, v);
        let sm = t.softmax_rows(sc);
        let st = t.stack_rows(vec![sc, sm]);
        [x, mm, th, hs, sc, sm, st].iter().map(|&v| t.value(v).as_slice().to_vec()).collect()
    }

    #[test]
    fn inference_forward_is_bit_identical_to_recorded() {
        let mut rec = Tape::new();
        let want = forward_values(&mut rec, |t, m| t.leaf(m, true));
        let mut inf = Tape::inference();
        let got = forward_values(&mut inf, |t, m| t.leaf_copy(&m));
        assert_eq!(want, got, "inference forward diverged from recorded forward");
    }

    #[test]
    fn reused_inference_tape_is_bit_stable() {
        let mut inf = Tape::inference();
        let first = forward_values(&mut inf, |t, m| t.leaf_copy(&m));
        for _ in 0..3 {
            inf.reset_for_reuse();
            assert!(inf.is_empty());
            let again = forward_values(&mut inf, |t, m| t.leaf_copy(&m));
            assert_eq!(first, again, "pooled-buffer reuse changed forward values");
        }
    }

    #[test]
    #[should_panic(expected = "inference tape")]
    fn backward_panics_on_inference_tape() {
        let mut t = Tape::inference();
        let x = t.leaf_copy(&Matrix::from_vec(1, 1, vec![1.0]));
        let loss = t.sum_all(x);
        t.backward(loss);
    }

    /// Deterministic pseudo-random matrix for equivalence tests.
    fn pseudo(r: usize, c: usize, seed: u32) -> Matrix {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        Matrix::from_fn(r, c, |_, _| {
            s = s.wrapping_mul(1103515245).wrapping_add(12345);
            ((s >> 8) & 0xffff) as f32 / 65536.0 - 0.5
        })
    }

    /// The batched DGI-style encoder chain
    /// (`matmul_rowseg → add_bias_rowseg → prelu_rowseg → slice_mean_rows`)
    /// must produce bit-identical values AND parameter gradients to two
    /// per-graph chains sharing the same leaves — the house invariant
    /// the corpus-batched encoder rests on.
    #[test]
    fn rowseg_chain_matches_per_graph_chains_bitwise() {
        let n0 = 5; // graph 0 rows
        let n1 = 7; // graph 1 rows
        let fdim = 4;
        let odim = 3;
        let x0 = pseudo(n0, fdim, 1);
        let x1 = pseudo(n1, fdim, 2);
        let wm = pseudo(fdim, odim, 3);
        let bm = pseudo(1, odim, 4);
        let am = Matrix::from_vec(1, 1, vec![0.25]);

        // Reference: per-graph chains recorded sequentially (graph 0
        // first), each ending in its own mean; loss sums both means.
        let mut per = Tape::new();
        let w = per.leaf(wm.clone(), true);
        let b = per.leaf(bm.clone(), true);
        let al = per.leaf(am.clone(), true);
        let mut means = Vec::new();
        for xm in [&x0, &x1] {
            let x = per.constant(xm.clone());
            let mm = per.matmul(x, w);
            let ab = per.add_bias(mm, b);
            let pr = per.prelu(ab, al);
            means.push(per.mean_rows(pr));
        }
        let cat = per.concat_cols(means[0], means[1]);
        let loss = per.sum_all(cat);
        per.backward(loss);

        // Batched: one packed chain over the same leaves.
        let mut bat = Tape::new();
        let wb = bat.leaf(wm.clone(), true);
        let bb = bat.leaf(bm.clone(), true);
        let ab2 = bat.leaf(am.clone(), true);
        let offs = Arc::new(vec![0usize, n0, n0 + n1]);
        let xcat = bat.constant(x0.vcat(&x1));
        let mm = bat.matmul_rowseg(xcat, wb, offs.clone());
        let abv = bat.add_bias_rowseg(mm, bb, offs.clone());
        let pr = bat.prelu_rowseg(abv, ab2, offs.clone());
        let m0 = bat.slice_mean_rows(pr, 0, n0);
        let m1 = bat.slice_mean_rows(pr, n0, n0 + n1);
        let cat2 = bat.concat_cols(m0, m1);
        let loss2 = bat.sum_all(cat2);

        // Forward values bit-identical.
        assert_eq!(
            per.value(means[0]).as_slice(),
            bat.value(m0).as_slice(),
            "segment-0 mean diverged"
        );
        assert_eq!(
            per.value(means[1]).as_slice(),
            bat.value(m1).as_slice(),
            "segment-1 mean diverged"
        );
        let h0 = {
            let mut rows = per.value(loss).as_slice().to_vec();
            rows.extend_from_slice(bat.value(loss2).as_slice());
            rows
        };
        assert_eq!(h0[0].to_bits(), h0[1].to_bits(), "loss diverged");

        bat.backward(loss2);
        for (pv, bv, name) in [(w, wb, "w"), (b, bb, "bias"), (al, ab2, "alpha")] {
            let gp = per.grad(pv).expect("per-graph grad");
            let gb = bat.grad(bv).expect("batched grad");
            let pb: Vec<u32> = gp.as_slice().iter().map(|v| v.to_bits()).collect();
            let bb_: Vec<u32> = gb.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(pb, bb_, "{name} gradient not bit-identical");
        }
    }

    #[test]
    fn spmm_blockdiag_grad_matches_per_graph_spmm() {
        use mars_tensor::ops::BlockDiagCsr;
        // Two tiny graphs; gradients w.r.t. the features of a blockdiag
        // spmm must equal the stacked per-graph spmm_t results.
        let sparsify = |m: Matrix| {
            let mut trips = Vec::new();
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    let v = m.get(r, c);
                    if v > 0.1 {
                        trips.push((r, c, v));
                    }
                }
            }
            CsrMatrix::from_triplets(m.rows(), m.cols(), &trips)
        };
        let a0 = sparsify(pseudo(3, 3, 9));
        let a1 = sparsify(pseudo(4, 4, 10));
        let x0 = pseudo(3, 2, 11);
        let x1 = pseudo(4, 2, 12);

        let mut per = Tape::new();
        let xa = per.leaf(x0.clone(), true);
        let xb = per.leaf(x1.clone(), true);
        let s0 = per.spmm(Arc::new(a0.clone()), xa);
        let s1 = per.spmm(Arc::new(a1.clone()), xb);
        let cat = per.concat_rows(s0, s1);
        let loss = per.sum_all(cat);
        per.backward(loss);

        let mut bat = Tape::new();
        let bd = Arc::new(BlockDiagCsr::new(vec![Arc::new(a0), Arc::new(a1)]));
        let xcat = bat.leaf(x0.vcat(&x1), true);
        let s = bat.spmm_blockdiag(bd, xcat);
        let loss2 = bat.sum_all(s);
        assert_eq!(per.value(cat).as_slice(), bat.value(s).as_slice());
        bat.backward(loss2);
        let gx = bat.grad(xcat).expect("gx");
        let want = per.grad(xa).expect("gxa").vcat(per.grad(xb).expect("gxb"));
        let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u32> = gx.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(wb, gb, "blockdiag feature grad not bit-identical");
    }

    /// A persistent training tape (forward → backward → reset_for_reuse,
    /// repeated) must produce bit-identical losses and gradients every
    /// round — the arena recycles buffers but never changes results.
    #[test]
    fn reused_training_tape_is_bit_stable() {
        let run = |t: &mut Tape| -> (Vec<f32>, Vec<f32>, Vec<f32>) {
            let x = t.leaf_from(&pseudo(6, 4, 21), false);
            let w = t.leaf_from(&pseudo(4, 3, 22), true);
            let b = t.leaf_from(&pseudo(1, 3, 23), true);
            let mm = t.matmul(x, w);
            let ab = t.add_bias(mm, b);
            let sg = t.sigmoid(ab);
            let loss = t.mean_all(sg);
            t.backward(loss);
            (
                t.value(loss).as_slice().to_vec(),
                t.grad(w).expect("gw").as_slice().to_vec(),
                t.grad(b).expect("gb").as_slice().to_vec(),
            )
        };
        let mut fresh = Tape::new();
        let want = run(&mut fresh);
        let mut reused = Tape::new();
        let first = run(&mut reused);
        assert_eq!(want, first, "fresh vs to-be-reused tape diverged");
        for round in 0..3 {
            reused.reset_for_reuse();
            assert!(reused.is_empty());
            let again = run(&mut reused);
            assert_eq!(want, again, "arena reuse changed results in round {round}");
        }
        assert!(reused.arena_high_water() > 0, "high-water gauge never recorded");
    }

    #[test]
    fn take_grad_moves_out_and_empties_slot() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]), true);
        let loss = t.sum_all(x);
        t.backward(loss);
        let g = t.take_grad(x).expect("grad present");
        assert_eq!(g.as_slice(), &[1.0, 1.0]);
        assert!(t.grad(x).is_none(), "slot should be empty after take_grad");
    }

    #[test]
    fn slice_mean_rows_matches_slice_then_mean() {
        let xm = pseudo(8, 3, 31);
        let mut a = Tape::new();
        let xa = a.leaf(xm.clone(), true);
        let sl = a.slice_rows(xa, 2, 6);
        let mn = a.mean_rows(sl);
        let la = a.sum_all(mn);
        a.backward(la);

        let mut b = Tape::new();
        let xb = b.leaf(xm, true);
        let fused = b.slice_mean_rows(xb, 2, 6);
        let lb = b.sum_all(fused);
        assert_eq!(a.value(mn).as_slice(), b.value(fused).as_slice());
        b.backward(lb);
        assert_eq!(
            a.grad(xa).expect("ga").as_slice(),
            b.grad(xb).expect("gb").as_slice(),
            "fused slice-mean backward diverged"
        );
    }

    #[test]
    fn stack_rows_roundtrip() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::row_vector(&[1.0, 2.0]), true);
        let b = t.leaf(Matrix::row_vector(&[3.0, 4.0]), true);
        let s = t.stack_rows(vec![a, b]);
        assert_eq!(t.value(s).shape(), (2, 2));
        let w = t.constant(Matrix::from_vec(2, 1, vec![1.0, 10.0]));
        let y = t.matmul(s, w);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(a).expect("ga").as_slice(), &[1.0, 10.0]);
        assert_eq!(t.grad(b).expect("gb").as_slice(), &[1.0, 10.0]);
    }
}
