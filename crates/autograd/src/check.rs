//! Finite-difference gradient checking.
//!
//! Used by the test suites of this crate and `mars-nn` to verify every
//! backward rule against central differences. With `f32` arithmetic a
//! relatively large probe step and a mixed absolute/relative tolerance
//! are required; the defaults below are tuned for smooth losses with
//! values of order 1.

use crate::{Tape, Var};
use mars_tensor::Matrix;

/// Result of a gradient check for one input.
#[derive(Debug)]
pub struct GradCheck {
    /// Analytic gradient from the tape.
    pub analytic: Matrix,
    /// Numeric gradient from central differences.
    pub numeric: Matrix,
    /// Largest mixed absolute/relative error observed.
    pub max_error: f32,
}

/// Check the tape gradient of `f` with respect to each input matrix.
///
/// `f` receives a fresh tape plus one leaf per input (in order) and must
/// return a scalar loss variable. Returns one [`GradCheck`] per input.
///
/// # Panics
/// If any element mismatch exceeds `tol` by the mixed criterion
/// `|a − n| / max(1, |a|, |n|) > tol`.
pub fn check_gradients(
    inputs: &[Matrix],
    tol: f32,
    eps: f32,
    f: impl Fn(&mut Tape, &[Var]) -> Var,
) -> Vec<GradCheck> {
    // Analytic pass.
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone(), true)).collect();
    let loss = f(&mut tape, &vars);
    tape.backward(loss);
    let analytic: Vec<Matrix> = vars
        .iter()
        .zip(inputs)
        .map(|(&v, m)| tape.grad(v).cloned().unwrap_or_else(|| Matrix::zeros(m.rows(), m.cols())))
        .collect();

    let eval = |probe: &[Matrix]| -> f32 {
        let mut t = Tape::new();
        let vs: Vec<Var> = probe.iter().map(|m| t.leaf(m.clone(), false)).collect();
        let l = f(&mut t, &vs);
        t.scalar(l)
    };

    let mut results = Vec::with_capacity(inputs.len());
    for (which, input) in inputs.iter().enumerate() {
        let mut numeric = Matrix::zeros(input.rows(), input.cols());
        for idx in 0..input.len() {
            let mut plus: Vec<Matrix> = inputs.to_vec();
            plus[which].as_mut_slice()[idx] += eps;
            let mut minus: Vec<Matrix> = inputs.to_vec();
            minus[which].as_mut_slice()[idx] -= eps;
            let d = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            numeric.as_mut_slice()[idx] = d;
        }
        let a = &analytic[which];
        let mut max_error = 0.0f32;
        for (x, y) in a.as_slice().iter().zip(numeric.as_slice()) {
            let err = (x - y).abs() / 1.0f32.max(x.abs()).max(y.abs());
            max_error = max_error.max(err);
        }
        assert!(
            max_error <= tol,
            "gradient check failed for input {which}: max mixed error {max_error} > {tol}\nanalytic: {a:?}\nnumeric: {numeric:?}"
        );
        results.push(GradCheck { analytic: a.clone(), numeric, max_error });
    }
    results
}

/// Convenience wrapper with defaults suitable for `f32`.
pub fn check_gradients_default(
    inputs: &[Matrix],
    f: impl Fn(&mut Tape, &[Var]) -> Var,
) -> Vec<GradCheck> {
    check_gradients(inputs, 2e-2, 1e-2, f)
}
