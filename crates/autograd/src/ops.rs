//! The differentiable operation set.
//!
//! Each variant stores the parent [`Var`]s (and any constant payload)
//! needed to run its backward rule. Forward evaluation happens eagerly
//! in [`crate::tape::Tape`]'s builder methods; this module only defines
//! the recorded structure.

use crate::tape::Var;
use mars_tensor::ops::{BlockDiagCsr, CsrMatrix};
use mars_tensor::Matrix;
use std::sync::Arc;

/// A recorded differentiable operation.
#[derive(Clone)]
pub enum Op {
    /// A leaf: input data or a parameter. No parents.
    Leaf,
    /// Dense matrix product `A · B`.
    MatMul(Var, Var),
    /// Sparse-constant × dense product `S · X`. The sparse operand is a
    /// constant (the normalized graph adjacency), so only `X` receives a
    /// gradient.
    Spmm(Arc<CsrMatrix>, Var),
    /// Block-diagonal sparse-constant × dense product over a packed
    /// graph batch (`spmm_blockdiag`). Like [`Op::Spmm`], only `X`
    /// receives a gradient (via the transposed block-diagonal sweep).
    SpmmBlockDiag(Arc<BlockDiagCsr>, Var),
    /// Dense product `A · B` where `A`'s rows are the concatenation of
    /// per-graph segments (`offsets[s]..offsets[s+1]` = segment `s`)
    /// and `B` is a weight shared by every segment. Forward is exactly
    /// [`Op::MatMul`]; the backward rule computes `B`'s gradient
    /// per-segment and combines the per-segment results in *reverse*
    /// segment order, matching the float-add order the per-graph tape
    /// produces when later-recorded (higher-index) graphs accumulate
    /// into the shared weight leaf first.
    MatMulRowSeg(Var, Var, Arc<Vec<usize>>),
    /// Broadcast bias add over a row-segmented matrix: forward is
    /// [`Op::AddBias`]; the bias gradient is per-segment `sum_rows`
    /// combined in reverse segment order (same argument as
    /// [`Op::MatMulRowSeg`]).
    AddBiasRowSeg(Var, Var, Arc<Vec<usize>>),
    /// PReLU over a row-segmented matrix: forward is [`Op::PRelu`]; the
    /// slope gradient is folded per-segment and combined in reverse
    /// segment order.
    PReluRowSeg(Var, Var, Arc<Vec<usize>>),
    /// Column means of rows `[start, end)` of the parent (`1 × n`
    /// output) — `mean_rows ∘ slice_rows` fused so the backward pass
    /// updates only the affected rows of the parent's gradient in
    /// place, never materializing (or adding) a mostly-zero full-size
    /// matrix (which would flip `-0.0` signs outside the range).
    SliceMeanRows(Var, usize, usize),
    /// Elementwise sum of two equally-shaped matrices.
    Add(Var, Var),
    /// Elementwise difference.
    Sub(Var, Var),
    /// Elementwise (Hadamard) product.
    Mul(Var, Var),
    /// Broadcast addition of a `1 × n` bias row to every row of an `m × n` matrix.
    AddBias(Var, Var),
    /// Multiplication by a scalar constant.
    Scale(Var, f32),
    /// Addition of a scalar constant.
    AddScalar(Var, f32),
    /// Logistic sigmoid, elementwise.
    Sigmoid(Var),
    /// Hyperbolic tangent, elementwise.
    Tanh(Var),
    /// Rectified linear unit, elementwise.
    Relu(Var),
    /// Parametric ReLU with a learnable scalar slope (`1 × 1` parameter).
    PRelu(Var, Var),
    /// Elementwise exponential.
    Exp(Var),
    /// Elementwise natural logarithm.
    Ln(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// Row-wise log-softmax.
    LogSoftmaxRows(Var),
    /// Mean over all elements (`1 × 1` output).
    MeanAll(Var),
    /// Sum over all elements (`1 × 1` output).
    SumAll(Var),
    /// Column means (`1 × n` output).
    MeanRows(Var),
    /// Column sums (`1 × n` output).
    SumRows(Var),
    /// Horizontal concatenation `[A | B]`; payload is A's width.
    ConcatCols(Var, Var, usize),
    /// Vertical concatenation (A stacked over B); payload is A's height.
    ConcatRows(Var, Var, usize),
    /// Row slice `[start, end)`.
    SliceRows(Var, usize, usize),
    /// Row gather (duplicates allowed; backward scatter-adds).
    GatherRows(Var, Arc<Vec<usize>>),
    /// Per-row element selection: output `m × 1` with `out[r] = x[r, idx[r]]`.
    SelectPerRow(Var, Arc<Vec<usize>>),
    /// Stack many `1 × n` rows into an `m × n` matrix.
    StackRows(Arc<Vec<Var>>),
    /// Matrix transpose.
    Transpose(Var),
    /// Elementwise clamp into `[lo, hi]` (zero gradient outside).
    Clamp(Var, f32, f32),
    /// Elementwise minimum of two matrices (gradient to the smaller; ties → first).
    MinElem(Var, Var),
    /// Mean binary-cross-entropy with logits against a constant target
    /// matrix (`1 × 1` output). Numerically stable form.
    BceWithLogits(Var, Arc<Matrix>),
    /// Fused LSTM over a whole sequence with hand-written BPTT.
    ///
    /// Parents: `(x, w_ih, w_hh, b, h0, c0)`. Output is `(T+1) × H`:
    /// rows `0..T` are the hidden states, row `T` is the final cell
    /// state (so callers can carry `(h_T, c_T)` across segments).
    /// The forward pass caches the gate activations needed by the
    /// backward rule.
    LstmSeq {
        /// Input sequence (`T × F`).
        x: Var,
        /// Fused input weights (`F × 4H`), gate order `[i|f|g|o]`.
        w_ih: Var,
        /// Fused recurrent weights (`H × 4H`).
        w_hh: Var,
        /// Fused bias (`1 × 4H`).
        b: Var,
        /// Initial hidden state (`1 × H`).
        h0: Var,
        /// Initial cell state (`1 × H`).
        c0: Var,
        /// Forward-pass activations cached for BPTT.
        cache: Arc<LstmCache>,
    },
    /// Fused additive-attention scores
    /// `s = (tanh(proj ⊕ dproj) · v)ᵀ` — the
    /// `add_bias → tanh → matmul → transpose` chain of a Bahdanau read
    /// collapsed into one node (`1 × T` output, no `T × A`
    /// intermediates on the tape).
    AttnScores {
        /// Projected encoder keys (`T × A`).
        proj: Var,
        /// Projected decoder query (`1 × A`, broadcast over rows).
        dproj: Var,
        /// Scoring vector (`A × 1`).
        v: Var,
        /// Cached `tanh(proj ⊕ dproj)` activations (`T × A`).
        act: Arc<Matrix>,
    },
}

/// Activations cached by the fused LSTM forward pass.
pub struct LstmCache {
    /// Input-gate activations, `T × H`.
    pub i: Matrix,
    /// Forget-gate activations, `T × H`.
    pub f: Matrix,
    /// Candidate activations (tanh), `T × H`.
    pub g: Matrix,
    /// Output-gate activations, `T × H`.
    pub o: Matrix,
    /// Cell states `c_t`, `T × H`.
    pub c: Matrix,
    /// `tanh(c_t)`, `T × H`.
    pub tanh_c: Matrix,
}

impl Op {
    /// Parent variables of this op, in order.
    pub fn parents(&self) -> Vec<Var> {
        match self {
            Op::Leaf => vec![],
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::AddBias(a, b)
            | Op::PRelu(a, b)
            | Op::MinElem(a, b)
            | Op::ConcatCols(a, b, _)
            | Op::ConcatRows(a, b, _)
            | Op::MatMulRowSeg(a, b, _)
            | Op::AddBiasRowSeg(a, b, _)
            | Op::PReluRowSeg(a, b, _) => vec![*a, *b],
            Op::Spmm(_, x)
            | Op::SpmmBlockDiag(_, x)
            | Op::SliceMeanRows(x, _, _)
            | Op::Scale(x, _)
            | Op::AddScalar(x, _)
            | Op::Sigmoid(x)
            | Op::Tanh(x)
            | Op::Relu(x)
            | Op::Exp(x)
            | Op::Ln(x)
            | Op::SoftmaxRows(x)
            | Op::LogSoftmaxRows(x)
            | Op::MeanAll(x)
            | Op::SumAll(x)
            | Op::MeanRows(x)
            | Op::SumRows(x)
            | Op::SliceRows(x, _, _)
            | Op::GatherRows(x, _)
            | Op::SelectPerRow(x, _)
            | Op::Transpose(x)
            | Op::Clamp(x, _, _)
            | Op::BceWithLogits(x, _) => vec![*x],
            Op::StackRows(vars) => vars.as_ref().clone(),
            Op::LstmSeq { x, w_ih, w_hh, b, h0, c0, .. } => {
                vec![*x, *w_ih, *w_hh, *b, *h0, *c0]
            }
            Op::AttnScores { proj, dproj, v, .. } => vec![*proj, *dproj, *v],
        }
    }
}
