#![warn(missing_docs)]
//! Tape-based reverse-mode automatic differentiation.
//!
//! The Mars agent (GCN encoder, BiLSTM placers, attention, PPO losses)
//! is trained with gradients produced by this crate. The design is a
//! classic Wengert list:
//!
//! * A [`Tape`] owns every intermediate value produced during one
//!   forward pass. Operations are recorded as [`ops::Op`] nodes
//!   referencing their parents by [`Var`] index.
//! * [`Tape::backward`] runs the reverse sweep, accumulating gradients
//!   for every node that (transitively) requires them.
//! * Parameters live *outside* the tape (see `mars-nn`); each training
//!   step inserts them as leaves, and reads their gradient back out
//!   after the backward pass.
//!
//! The op set is exactly what the paper's models need: dense and sparse
//! matmul, broadcast bias, LSTM-style gate nonlinearities, row-wise
//! (log-)softmax, gather/concat/slice/stack plumbing, and the clipped
//! PPO surrogate primitives (`exp`, `clamp`, `min_elem`).
//!
//! Every op is verified against central finite differences in
//! `tests/gradcheck.rs`.

pub mod check;
pub mod ops;
pub mod tape;

pub use tape::{Tape, Var};
