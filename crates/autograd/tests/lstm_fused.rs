//! Correctness of the fused LSTM sequence op: value and gradient
//! equivalence with the op-composed reference implementation, plus
//! finite-difference checks on every input.

use mars_autograd::check::check_gradients_default;
use mars_autograd::{Tape, Var};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use mars_tensor::{init, Matrix};

/// Composed reference: one step of the same LSTM from primitive ops.
#[allow(clippy::too_many_arguments)]
fn composed_step(
    t: &mut Tape,
    x_t: Var,
    w_ih: Var,
    w_hh: Var,
    b: Var,
    h: Var,
    c: Var,
    hd: usize,
) -> (Var, Var) {
    let slice_cols = |t: &mut Tape, m: Var, a: usize, bb: usize| {
        let mt = t.transpose(m);
        let s = t.slice_rows(mt, a, bb);
        t.transpose(s)
    };
    let xi = t.matmul(x_t, w_ih);
    let hh = t.matmul(h, w_hh);
    let z0 = t.add(xi, hh);
    let z = t.add_bias(z0, b);
    let i_pre = slice_cols(t, z, 0, hd);
    let f_pre = slice_cols(t, z, hd, 2 * hd);
    let g_pre = slice_cols(t, z, 2 * hd, 3 * hd);
    let o_pre = slice_cols(t, z, 3 * hd, 4 * hd);
    let i = t.sigmoid(i_pre);
    let f = t.sigmoid(f_pre);
    let g = t.tanh(g_pre);
    let o = t.sigmoid(o_pre);
    let fc = t.mul(f, c);
    let ig = t.mul(i, g);
    let c2 = t.add(fc, ig);
    let ct = t.tanh(c2);
    let h2 = t.mul(o, ct);
    (h2, c2)
}

fn inputs(t_len: usize, in_dim: usize, hd: usize, seed: u64) -> Vec<Matrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        init::uniform(t_len, in_dim, 0.8, &mut rng),
        init::uniform(in_dim, 4 * hd, 0.5, &mut rng),
        init::uniform(hd, 4 * hd, 0.5, &mut rng),
        init::uniform(1, 4 * hd, 0.3, &mut rng),
        init::uniform(1, hd, 0.5, &mut rng),
        init::uniform(1, hd, 0.5, &mut rng),
    ]
}

#[test]
fn fused_values_match_composed() {
    let (t_len, in_dim, hd) = (5usize, 3usize, 4usize);
    let ins = inputs(t_len, in_dim, hd, 1);

    let mut tape = Tape::new();
    let vars: Vec<Var> = ins.iter().map(|m| tape.constant(m.clone())).collect();
    let fused = tape.lstm_seq(vars[0], vars[1], vars[2], vars[3], vars[4], vars[5]);
    let fused_val = tape.value(fused).clone();
    assert_eq!(fused_val.shape(), (t_len + 1, hd));

    // Composed rollout.
    let mut h = vars[4];
    let mut c = vars[5];
    let mut h_rows = Vec::new();
    for t in 0..t_len {
        let x_t = tape.slice_rows(vars[0], t, t + 1);
        let (h2, c2) = composed_step(&mut tape, x_t, vars[1], vars[2], vars[3], h, c, hd);
        h = h2;
        c = c2;
        h_rows.push(h2);
    }
    let composed_h = tape.stack_rows(h_rows);
    let composed_val = tape.value(composed_h).clone();
    let final_c = tape.value(c).clone();

    assert!(fused_val.slice_rows(0, t_len).max_abs_diff(&composed_val) < 1e-5);
    assert!(
        Matrix::row_vector(fused_val.row(t_len)).max_abs_diff(&final_c) < 1e-5,
        "final cell row mismatch"
    );
}

#[test]
fn fused_gradients_match_composed() {
    let (t_len, in_dim, hd) = (4usize, 3usize, 3usize);
    let ins = inputs(t_len, in_dim, hd, 2);

    // Loss through the fused op (hidden rows only).
    let fused_grads = {
        let mut tape = Tape::new();
        let vars: Vec<Var> = ins.iter().map(|m| tape.leaf(m.clone(), true)).collect();
        let out = tape.lstm_seq(vars[0], vars[1], vars[2], vars[3], vars[4], vars[5]);
        let h_rows = tape.slice_rows(out, 0, t_len);
        let act = tape.tanh(h_rows);
        let loss = tape.mean_all(act);
        tape.backward(loss);
        vars.iter().map(|&v| tape.grad(v).expect("grad").clone()).collect::<Vec<_>>()
    };

    // Same loss through the composed rollout.
    let composed_grads = {
        let mut tape = Tape::new();
        let vars: Vec<Var> = ins.iter().map(|m| tape.leaf(m.clone(), true)).collect();
        let mut h = vars[4];
        let mut c = vars[5];
        let mut h_rows = Vec::new();
        for t in 0..t_len {
            let x_t = tape.slice_rows(vars[0], t, t + 1);
            let (h2, c2) = composed_step(&mut tape, x_t, vars[1], vars[2], vars[3], h, c, hd);
            h = h2;
            c = c2;
            h_rows.push(h2);
        }
        let all = tape.stack_rows(h_rows);
        let act = tape.tanh(all);
        let loss = tape.mean_all(act);
        tape.backward(loss);
        vars.iter().map(|&v| tape.grad(v).expect("grad").clone()).collect::<Vec<_>>()
    };

    for (idx, (f, cgrad)) in fused_grads.iter().zip(&composed_grads).enumerate() {
        assert!(
            f.max_abs_diff(cgrad) < 1e-4,
            "gradient {idx} mismatch: fused {f:?} vs composed {cgrad:?}"
        );
    }
}

#[test]
fn fused_gradcheck_finite_differences() {
    let (t_len, in_dim, hd) = (3usize, 2usize, 2usize);
    let ins = inputs(t_len, in_dim, hd, 3);
    check_gradients_default(&ins, move |t, v| {
        let out = t.lstm_seq(v[0], v[1], v[2], v[3], v[4], v[5]);
        let h_rows = t.slice_rows(out, 0, t_len);
        let act = t.tanh(h_rows);
        t.mean_all(act)
    });
}

#[test]
fn fused_gradcheck_through_final_cell_state() {
    // Gradient must also flow through the extra c_T row (segment carry).
    let (t_len, in_dim, hd) = (3usize, 2usize, 2usize);
    let ins = inputs(t_len, in_dim, hd, 4);
    check_gradients_default(&ins, move |t, v| {
        let out = t.lstm_seq(v[0], v[1], v[2], v[3], v[4], v[5]);
        let c_final = t.slice_rows(out, t_len, t_len + 1);
        let act = t.tanh(c_final);
        t.mean_all(act)
    });
}

#[test]
fn fused_state_carry_equals_one_shot() {
    // Running [0..4) must equal [0..2) then [2..4) carried.
    let (t_len, in_dim, hd) = (4usize, 3usize, 3usize);
    let ins = inputs(t_len, in_dim, hd, 5);
    let mut tape = Tape::new();
    let vars: Vec<Var> = ins.iter().map(|m| tape.constant(m.clone())).collect();
    let full = tape.lstm_seq(vars[0], vars[1], vars[2], vars[3], vars[4], vars[5]);
    let full_val = tape.value(full).clone();

    let x1 = tape.slice_rows(vars[0], 0, 2);
    let seg1 = tape.lstm_seq(x1, vars[1], vars[2], vars[3], vars[4], vars[5]);
    let h_mid = tape.slice_rows(seg1, 1, 2); // h at t=1
    let c_mid = tape.slice_rows(seg1, 2, 3); // final cell row
    let x2 = tape.slice_rows(vars[0], 2, 4);
    let seg2 = tape.lstm_seq(x2, vars[1], vars[2], vars[3], h_mid, c_mid);

    let seg1_h = tape.value(seg1).slice_rows(0, 2);
    let seg2_h = tape.value(seg2).slice_rows(0, 2);
    let stitched = seg1_h.vcat(&seg2_h);
    assert!(full_val.slice_rows(0, t_len).max_abs_diff(&stitched) < 1e-5);
}
