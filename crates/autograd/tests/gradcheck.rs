//! Finite-difference verification of every op's backward rule.

use mars_autograd::check::check_gradients_default;
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use mars_tensor::init;
use mars_tensor::ops::CsrMatrix;
use mars_tensor::Matrix;
use std::sync::Arc;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn rand_m(r: usize, c: usize, seed: u64) -> Matrix {
    init::uniform(r, c, 0.9, &mut rng(seed))
}

#[test]
fn grad_matmul() {
    let a = rand_m(3, 4, 1);
    let b = rand_m(4, 2, 2);
    check_gradients_default(&[a, b], |t, v| {
        let y = t.matmul(v[0], v[1]);
        let s = t.tanh(y);
        t.mean_all(s)
    });
}

#[test]
fn grad_spmm() {
    let adj = Arc::new(CsrMatrix::from_triplets(
        3,
        3,
        &[(0, 0, 0.5), (0, 1, 0.5), (1, 1, 1.0), (2, 0, 0.3), (2, 2, 0.7)],
    ));
    let x = rand_m(3, 4, 3);
    check_gradients_default(&[x], move |t, v| {
        let y = t.spmm(adj.clone(), v[0]);
        let s = t.sigmoid(y);
        t.mean_all(s)
    });
}

#[test]
fn grad_add_sub_mul() {
    let a = rand_m(2, 3, 4);
    let b = rand_m(2, 3, 5);
    check_gradients_default(&[a, b], |t, v| {
        let s = t.add(v[0], v[1]);
        let d = t.sub(s, v[1]);
        let m = t.mul(d, v[0]);
        t.mean_all(m)
    });
}

#[test]
fn grad_add_bias() {
    let x = rand_m(4, 3, 6);
    let b = rand_m(1, 3, 7);
    check_gradients_default(&[x, b], |t, v| {
        let y = t.add_bias(v[0], v[1]);
        let s = t.tanh(y);
        t.mean_all(s)
    });
}

#[test]
fn grad_scale_add_scalar() {
    let x = rand_m(2, 2, 8);
    check_gradients_default(&[x], |t, v| {
        let y = t.scale(v[0], 1.7);
        let z = t.add_scalar(y, -0.3);
        let s = t.sigmoid(z);
        t.mean_all(s)
    });
}

#[test]
fn grad_activations() {
    let x = rand_m(3, 3, 9);
    check_gradients_default(std::slice::from_ref(&x), |t, v| {
        let y = t.sigmoid(v[0]);
        t.mean_all(y)
    });
    check_gradients_default(std::slice::from_ref(&x), |t, v| {
        let y = t.tanh(v[0]);
        t.mean_all(y)
    });
    // ReLU/clamp are non-smooth at 0; shift inputs away from kinks.
    let shifted = x.map(|e| e + if e >= 0.0 { 0.5 } else { -0.5 });
    check_gradients_default(std::slice::from_ref(&shifted), |t, v| {
        let y = t.relu(v[0]);
        t.mean_all(y)
    });
    check_gradients_default(&[shifted], |t, v| {
        let y = t.clamp(v[0], -0.25, 0.25);
        let z = t.tanh(y);
        t.mean_all(z)
    });
}

#[test]
fn grad_prelu_both_inputs() {
    let x = rand_m(3, 3, 10).map(|e| e + if e >= 0.0 { 0.4 } else { -0.4 });
    let alpha = Matrix::from_vec(1, 1, vec![0.25]);
    check_gradients_default(&[x, alpha], |t, v| {
        let y = t.prelu(v[0], v[1]);
        t.mean_all(y)
    });
}

#[test]
fn grad_exp_ln() {
    let x = rand_m(2, 3, 11).map(|e| e * 0.5);
    check_gradients_default(&[x], |t, v| {
        let y = t.exp(v[0]);
        t.mean_all(y)
    });
    let positive = rand_m(2, 3, 12).map(|e| e.abs() + 0.5);
    check_gradients_default(&[positive], |t, v| {
        let y = t.ln(v[0]);
        t.mean_all(y)
    });
}

#[test]
fn grad_softmax_rows() {
    let x = rand_m(3, 4, 13);
    let w = rand_m(4, 1, 14);
    check_gradients_default(&[x, w], |t, v| {
        let p = t.softmax_rows(v[0]);
        let y = t.matmul(p, v[1]);
        let s = t.tanh(y);
        t.mean_all(s)
    });
}

#[test]
fn grad_log_softmax_rows() {
    let x = rand_m(3, 5, 15);
    check_gradients_default(&[x], |t, v| {
        let lp = t.log_softmax_rows(v[0]);
        let sel = t.select_per_row(lp, vec![0, 2, 4]);
        let s = t.mean_all(sel);
        t.neg(s)
    });
}

#[test]
fn grad_reductions() {
    let x = rand_m(3, 4, 16);
    check_gradients_default(std::slice::from_ref(&x), |t, v| {
        let m = t.mean_rows(v[0]);
        let s = t.tanh(m);
        t.sum_all(s)
    });
    check_gradients_default(&[x], |t, v| {
        let m = t.sum_rows(v[0]);
        let s = t.sigmoid(m);
        t.mean_all(s)
    });
}

#[test]
fn grad_concat_slice() {
    let a = rand_m(2, 3, 17);
    let b = rand_m(2, 2, 18);
    check_gradients_default(&[a.clone(), b.clone()], |t, v| {
        let c = t.concat_cols(v[0], v[1]);
        let s = t.tanh(c);
        t.mean_all(s)
    });
    let c = rand_m(3, 3, 19);
    check_gradients_default(&[a, c], |t, v| {
        let m = t.concat_rows(v[0], v[1]);
        let sl = t.slice_rows(m, 1, 4);
        let s = t.sigmoid(sl);
        t.mean_all(s)
    });
}

#[test]
fn grad_gather_rows_with_duplicates() {
    let x = rand_m(4, 3, 20);
    check_gradients_default(&[x], |t, v| {
        let g = t.gather_rows(v[0], vec![0, 2, 2, 3, 1]);
        let s = t.tanh(g);
        t.mean_all(s)
    });
}

#[test]
fn grad_stack_rows() {
    let a = rand_m(1, 4, 21);
    let b = rand_m(1, 4, 22);
    let c = rand_m(1, 4, 23);
    check_gradients_default(&[a, b, c], |t, v| {
        let s = t.stack_rows(vec![v[0], v[1], v[2]]);
        let y = t.tanh(s);
        t.mean_all(y)
    });
}

#[test]
fn grad_transpose() {
    let x = rand_m(2, 5, 24);
    let w = rand_m(2, 3, 25);
    check_gradients_default(&[x, w], |t, v| {
        let xt = t.transpose(v[0]);
        let y = t.matmul(xt, v[1]);
        let s = t.tanh(y);
        t.mean_all(s)
    });
}

#[test]
fn grad_min_elem() {
    // Keep elements well-separated to avoid the tie kink.
    let a = Matrix::from_vec(2, 2, vec![0.1, 0.9, -0.5, 0.4]);
    let b = Matrix::from_vec(2, 2, vec![0.6, 0.2, 0.5, -0.8]);
    check_gradients_default(&[a, b], |t, v| {
        let m = t.min_elem(v[0], v[1]);
        let s = t.tanh(m);
        t.mean_all(s)
    });
}

#[test]
fn grad_bce_with_logits() {
    let x = rand_m(3, 2, 26);
    let targets = Arc::new(Matrix::from_vec(3, 2, vec![1., 0., 1., 1., 0., 0.]));
    check_gradients_default(&[x], move |t, v| t.bce_with_logits(v[0], targets.clone()));
}

#[test]
fn grad_composite_gcn_like_layer() {
    // sigmoid(mean_rows(prelu(Â·X·W + b))) — the actual DGI readout path.
    let adj = Arc::new(CsrMatrix::from_triplets(
        4,
        4,
        &[
            (0, 0, 0.5),
            (0, 1, 0.5),
            (1, 1, 0.6),
            (1, 2, 0.4),
            (2, 2, 1.0),
            (3, 0, 0.2),
            (3, 3, 0.8),
        ],
    ));
    let x = rand_m(4, 3, 27);
    let w = rand_m(3, 2, 28);
    let b = rand_m(1, 2, 29);
    let alpha = Matrix::from_vec(1, 1, vec![0.2]);
    check_gradients_default(&[x, w, b, alpha], move |t, v| {
        let ax = t.spmm(adj.clone(), v[0]);
        let xw = t.matmul(ax, v[1]);
        let z = t.add_bias(xw, v[2]);
        let h = t.prelu(z, v[3]);
        let s = t.mean_rows(h);
        let sig = t.sigmoid(s);
        t.mean_all(sig)
    });
}

#[test]
fn grad_composite_lstm_gate() {
    // One LSTM-style gate: c' = f⊙c + i⊙g with learned projections.
    let x = rand_m(1, 3, 30);
    let wf = rand_m(3, 2, 31);
    let wi = rand_m(3, 2, 32);
    let wg = rand_m(3, 2, 33);
    let c = rand_m(1, 2, 34);
    check_gradients_default(&[x, wf, wi, wg, c], |t, v| {
        let fpre = t.matmul(v[0], v[1]);
        let f = t.sigmoid(fpre);
        let ipre = t.matmul(v[0], v[2]);
        let i = t.sigmoid(ipre);
        let gpre = t.matmul(v[0], v[3]);
        let g = t.tanh(gpre);
        let fc = t.mul(f, v[4]);
        let ig = t.mul(i, g);
        let c2 = t.add(fc, ig);
        let h = t.tanh(c2);
        t.mean_all(h)
    });
}

#[test]
fn grad_ppo_surrogate_shape() {
    // min(r·A, clamp(r, 0.8, 1.2)·A) with r = exp(lp − lp_old).
    // Seed chosen so no ratio lands on the clip boundary, where the
    // surrogate is nondifferentiable and finite differences disagree.
    let logits = rand_m(4, 3, 36);
    check_gradients_default(&[logits], |t, v| {
        let lp = t.log_softmax_rows(v[0]);
        let chosen = t.select_per_row(lp, vec![0, 1, 2, 0]);
        let old = t.constant(Matrix::from_vec(4, 1, vec![-1.0, -1.1, -0.9, -1.2]));
        let diff = t.sub(chosen, old);
        let ratio = t.exp(diff);
        let adv = t.constant(Matrix::from_vec(4, 1, vec![0.5, -0.3, 0.2, -0.7]));
        let unclipped = t.mul(ratio, adv);
        let clipped_r = t.clamp(ratio, 0.8, 1.2);
        let clipped = t.mul(clipped_r, adv);
        let surr = t.min_elem(unclipped, clipped);
        let m = t.mean_all(surr);
        t.neg(m)
    });
}
