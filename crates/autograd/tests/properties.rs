//! Property-based tests of the tape: random differentiable programs
//! must satisfy structural gradient identities.

use mars_autograd::Tape;
use mars_tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix(r: usize, c: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, r * c)
        .prop_map(move |data| Matrix::from_vec(r, c, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn linearity_of_gradients(x in arb_matrix(3, 3), s in 0.1f32..3.0) {
        // d/dx mean(s·x) == s · d/dx mean(x)
        let g1 = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let y = t.scale(v, s);
            let loss = t.mean_all(y);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        let g0 = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let loss = t.mean_all(v);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        prop_assert!(g1.max_abs_diff(&g0.scale(s)) < 1e-5);
    }

    #[test]
    fn sum_rule(x in arb_matrix(2, 4)) {
        // d/dx sum(f(x) + g(x)) == d/dx sum f + d/dx sum g
        let combined = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let f = t.tanh(v);
            let g = t.sigmoid(v);
            let s = t.add(f, g);
            let loss = t.sum_all(s);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        let parts = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let f = t.tanh(v);
            let loss = t.sum_all(f);
            t.backward(loss);
            let gf = t.grad(v).expect("grad").clone();
            let mut t2 = Tape::new();
            let v2 = t2.leaf(x.clone(), true);
            let g = t2.sigmoid(v2);
            let loss2 = t2.sum_all(g);
            t2.backward(loss2);
            gf.add(t2.grad(v2).expect("grad"))
        };
        prop_assert!(combined.max_abs_diff(&parts) < 1e-5);
    }

    #[test]
    fn chain_through_identity_ops(x in arb_matrix(3, 2)) {
        // transpose∘transpose, slice of full range, gather(identity)
        // must all be gradient-transparent.
        let direct = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let y = t.tanh(v);
            let loss = t.mean_all(y);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        let wrapped = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let a = t.transpose(v);
            let b = t.transpose(a);
            let c = t.slice_rows(b, 0, x.rows());
            let d = t.gather_rows(c, (0..x.rows()).collect());
            let y = t.tanh(d);
            let loss = t.mean_all(y);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        prop_assert!(direct.max_abs_diff(&wrapped) < 1e-6);
    }

    #[test]
    fn softmax_gradient_rows_sum_to_zero(x in arb_matrix(3, 4), w in arb_matrix(4, 1)) {
        // For y = f(softmax(x)), each row of dx sums to 0 (softmax is
        // invariant to per-row constant shifts).
        let mut t = Tape::new();
        let v = t.leaf(x, true);
        let wv = t.constant(w);
        let p = t.softmax_rows(v);
        let y = t.matmul(p, wv);
        let s = t.tanh(y);
        let loss = t.mean_all(s);
        t.backward(loss);
        let g = t.grad(v).expect("grad");
        for r in 0..g.rows() {
            let sum: f32 = g.row(r).iter().sum();
            prop_assert!(sum.abs() < 1e-4, "row {} grad sum {}", r, sum);
        }
    }

    #[test]
    fn log_softmax_gradient_rows_sum_to_zero(x in arb_matrix(3, 5)) {
        let mut t = Tape::new();
        let v = t.leaf(x, true);
        let lp = t.log_softmax_rows(v);
        let sel = t.select_per_row(lp, vec![0, 2, 4]);
        let loss = t.mean_all(sel);
        t.backward(loss);
        let g = t.grad(v).expect("grad");
        for r in 0..g.rows() {
            let sum: f32 = g.row(r).iter().sum();
            prop_assert!(sum.abs() < 1e-4);
        }
    }

    #[test]
    fn detached_subgraphs_get_no_gradient(x in arb_matrix(2, 2)) {
        let mut t = Tape::new();
        let v = t.leaf(x.clone(), true);
        let detached = t.constant(x);
        let y = t.mul(v, detached);
        let loss = t.sum_all(y);
        t.backward(loss);
        prop_assert!(t.grad(v).is_some());
        prop_assert!(t.grad(detached).is_none());
    }
}
