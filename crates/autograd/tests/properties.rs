//! Property-based tests of the tape: random differentiable programs
//! must satisfy structural gradient identities. Runs on the in-repo
//! seeded harness (`mars_rng::props!`).

use mars_autograd::Tape;
use mars_rng::rngs::StdRng;
use mars_rng::{props, Rng};
use mars_tensor::Matrix;

fn arb_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    let data = (0..r * c).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    Matrix::from_vec(r, c, data)
}

props! {
    fn linearity_of_gradients(rng, 96) {
        // d/dx mean(s·x) == s · d/dx mean(x)
        let x = arb_matrix(rng, 3, 3);
        let s = rng.gen_range(0.1f32..3.0);
        let g1 = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let y = t.scale(v, s);
            let loss = t.mean_all(y);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        let g0 = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let loss = t.mean_all(v);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        assert!(g1.max_abs_diff(&g0.scale(s)) < 1e-5);
    }

    fn sum_rule(rng, 96) {
        // d/dx sum(f(x) + g(x)) == d/dx sum f + d/dx sum g
        let x = arb_matrix(rng, 2, 4);
        let combined = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let f = t.tanh(v);
            let g = t.sigmoid(v);
            let s = t.add(f, g);
            let loss = t.sum_all(s);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        let parts = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let f = t.tanh(v);
            let loss = t.sum_all(f);
            t.backward(loss);
            let gf = t.grad(v).expect("grad").clone();
            let mut t2 = Tape::new();
            let v2 = t2.leaf(x.clone(), true);
            let g = t2.sigmoid(v2);
            let loss2 = t2.sum_all(g);
            t2.backward(loss2);
            gf.add(t2.grad(v2).expect("grad"))
        };
        assert!(combined.max_abs_diff(&parts) < 1e-5);
    }

    fn chain_through_identity_ops(rng, 96) {
        // transpose∘transpose, slice of full range, gather(identity)
        // must all be gradient-transparent.
        let x = arb_matrix(rng, 3, 2);
        let direct = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let y = t.tanh(v);
            let loss = t.mean_all(y);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        let wrapped = {
            let mut t = Tape::new();
            let v = t.leaf(x.clone(), true);
            let a = t.transpose(v);
            let b = t.transpose(a);
            let c = t.slice_rows(b, 0, x.rows());
            let d = t.gather_rows(c, (0..x.rows()).collect());
            let y = t.tanh(d);
            let loss = t.mean_all(y);
            t.backward(loss);
            t.grad(v).expect("grad").clone()
        };
        assert!(direct.max_abs_diff(&wrapped) < 1e-6);
    }

    fn softmax_gradient_rows_sum_to_zero(rng, 96) {
        // For y = f(softmax(x)), each row of dx sums to 0 (softmax is
        // invariant to per-row constant shifts).
        let x = arb_matrix(rng, 3, 4);
        let w = arb_matrix(rng, 4, 1);
        let mut t = Tape::new();
        let v = t.leaf(x, true);
        let wv = t.constant(w);
        let p = t.softmax_rows(v);
        let y = t.matmul(p, wv);
        let s = t.tanh(y);
        let loss = t.mean_all(s);
        t.backward(loss);
        let g = t.grad(v).expect("grad");
        for r in 0..g.rows() {
            let sum: f32 = g.row(r).iter().sum();
            assert!(sum.abs() < 1e-4, "row {} grad sum {}", r, sum);
        }
    }

    fn log_softmax_gradient_rows_sum_to_zero(rng, 96) {
        let x = arb_matrix(rng, 3, 5);
        let mut t = Tape::new();
        let v = t.leaf(x, true);
        let lp = t.log_softmax_rows(v);
        let sel = t.select_per_row(lp, vec![0, 2, 4]);
        let loss = t.mean_all(sel);
        t.backward(loss);
        let g = t.grad(v).expect("grad");
        for r in 0..g.rows() {
            let sum: f32 = g.row(r).iter().sum();
            assert!(sum.abs() < 1e-4);
        }
    }

    fn detached_subgraphs_get_no_gradient(rng, 96) {
        let x = arb_matrix(rng, 2, 2);
        let mut t = Tape::new();
        let v = t.leaf(x.clone(), true);
        let detached = t.constant(x);
        let y = t.mul(v, detached);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert!(t.grad(v).is_some());
        assert!(t.grad(detached).is_none());
    }
}
