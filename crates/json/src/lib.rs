#![warn(missing_docs)]
//! Minimal JSON encode/decode.
//!
//! Replaces `serde`/`serde_json` so the workspace builds hermetically.
//! There is no derive machinery: types that need (de)serialization
//! implement explicit `to_json`/`from_json` methods against the
//! [`Json`] value tree. The encoder is round-trip exact for finite
//! `f64` values (Rust's shortest-representation float formatting), so
//! simulation results survive a JSON round trip bit-identically.
//!
//! ```
//! use mars_json::Json;
//!
//! let v = Json::parse(r#"{"name": "inception", "nodes": [1, 2.5, -3e2]}"#).unwrap();
//! assert_eq!(v["name"].as_str(), Some("inception"));
//! assert_eq!(v["nodes"][2].as_f64(), Some(-300.0));
//! assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
//! ```

pub mod parse;

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact up to
    /// 2^53, which covers every quantity the repo serializes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order so encoding is
    /// deterministic.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// Parse a JSON document.
    pub fn parse(s: &str) -> Result<Json, parse::JsonError> {
        parse::parse(s)
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number value, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as `u64`, if numeric, non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// Number as `i64`, if numeric and integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// Number as `usize`, if it fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// String value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool value, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Element list, if an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Key/value pairs, if an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact encoding (no whitespace).
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty-printed encoding (2-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 2f64.powi(53) {
        // Integral: print without the trailing ".0" Rust's Display adds
        // for whole floats — JSON integers parse back to the same f64.
        fmt::Write::write_fmt(out, format_args!("{}", n as i64)).expect("string write");
    } else {
        // Rust's Display for f64 is shortest-round-trip: parsing the
        // output recovers the exact bit pattern.
        fmt::Write::write_fmt(out, format_args!("{n}")).expect("string write");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32))
                    .expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// `json["key"]` / missing keys yield `Json::Null` (like `serde_json`).
impl std::ops::Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `json[i]` / out-of-range indices yield `Json::Null`.
impl std::ops::Index<usize> for Json {
    type Output = Json;

    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                Json::Num(v as f64)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<&String> for Json {
    fn from(v: &String) -> Json {
        Json::Str(v.clone())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(x) => x.into(),
            None => Json::Null,
        }
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for src in ["null", "true", "false", "0", "-1", "3.5", "\"hi\""] {
            let v = Json::parse(src).expect(src);
            assert_eq!(v.to_string(), src, "compact encoding is canonical for {src}");
        }
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for x in [
            1280179767.826233f64,
            0.1,
            -3.984_709_127e-17,
            2f64.powi(60),
            f64::MIN_POSITIVE,
            1.0 / 3.0,
        ] {
            let v = Json::Num(x);
            let back = Json::parse(&v.to_string()).expect("parse");
            assert_eq!(back.as_f64().expect("num").to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn u64_values_in_repo_range_are_exact() {
        for x in [0u64, 1, 4096, 12 << 30, 125 << 30, (1 << 53) - 1] {
            let v = Json::from(x);
            let back = Json::parse(&v.to_string()).expect("parse");
            assert_eq!(back.as_u64(), Some(x));
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ unicode: ✓ control: \u{01}";
        let v = Json::Str(s.to_string());
        let back = Json::parse(&v.to_string()).expect("parse");
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn nested_structure_roundtrips() {
        let v = Json::obj([
            ("name", Json::from("bert")),
            ("nodes", Json::arr([Json::from(1u64), Json::from(2.5), Json::Null])),
            ("valid", Json::from(true)),
            (
                "nested",
                Json::obj([
                    ("empty_arr", Json::arr([])),
                    ("empty_obj", Json::obj::<String, _>([])),
                ]),
            ),
        ]);
        let compact = Json::parse(&v.to_string()).expect("compact");
        assert_eq!(compact, v);
        let pretty = Json::parse(&v.pretty()).expect("pretty");
        assert_eq!(pretty, v);
    }

    #[test]
    fn indexing_is_null_tolerant() {
        let v = Json::parse(r#"{"a": [1, 2]}"#).expect("parse");
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert!(v["missing"].is_null());
        assert!(v["a"][99].is_null());
        assert!(v["a"]["not-an-object"].is_null());
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).expect("parse");
        let keys: Vec<&str> = v.as_object().expect("obj").iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn option_and_vec_conversions() {
        assert_eq!(Json::from(None::<f64>), Json::Null);
        assert_eq!(Json::from(Some(2.0f64)), Json::Num(2.0));
        assert_eq!(Json::from(vec![1u32, 2]), Json::arr([Json::Num(1.0), Json::Num(2.0)]));
    }
}
