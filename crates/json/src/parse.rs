//! Recursive-descent JSON parser.

use crate::Json;
use std::fmt;

/// Parse failure: byte offset plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err("nesting too deep"))
        } else {
            Ok(())
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: must pair with \uXXXX low.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is valid UTF-8 by
                    // construction: we were handed a &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("unparseable number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            "1e",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "\"unterminated",
            "{\"a\":1} extra",
            "nul",
            "+1",
            ".5",
            "\"\\x\"",
            "\"\\u12\"",
            "[,]",
            "{,}",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn accepts_whitespace_everywhere() {
        let v = parse(" \t\n{ \"a\" : [ 1 , 2 ] , \"b\" : null } \r\n").expect("parse");
        assert_eq!(v["a"][1].as_f64(), Some(2.0));
        assert!(v["b"].is_null());
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse(r#""\u0041""#).expect("bmp").as_str(), Some("A"));
        assert_eq!(parse(r#""\ud83d\ude00""#).expect("pair").as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn parses_number_forms() {
        for (src, expect) in [
            ("0", 0.0),
            ("-0", -0.0),
            ("10", 10.0),
            ("2.5", 2.5),
            ("-3e2", -300.0),
            ("1E-3", 0.001),
            ("1.25e+2", 125.0),
        ] {
            assert_eq!(parse(src).expect(src).as_f64(), Some(expect), "{src}");
        }
    }

    #[test]
    fn depth_limit_prevents_stack_overflow() {
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        assert!(parse(&deep).is_err());
    }
}
