//! A small seeded property-test harness (the workspace's `proptest`
//! replacement).
//!
//! Each property runs `cases` times. Case `i` gets a fresh [`StdRng`]
//! seeded deterministically from `(base seed, i)`, so failures are
//! reproducible byte-for-byte. There is no shrinking: on failure the
//! harness reports the case index and exact seed so the single failing
//! case can be re-run and, once understood, pinned as an explicit
//! regression test.
//!
//! Environment knobs:
//! * `MARS_PROP_SEED` — override the base seed (default
//!   `0x4d41_5253` = `"MARS"`).
//! * `MARS_PROP_CASES` — multiply every property's case count
//!   (e.g. `MARS_PROP_CASES=10` for a 10× deeper nightly run).
//! * `MARS_PROP_CASE_SEED` — run exactly one case with the given seed
//!   (as printed by a failure report).
//!
//! ```text
//! mars_rng::props! {
//!     fn addition_commutes(rng, 64) {
//!         let (a, b) = (rng.gen_range(-100..100), rng.gen_range(-100..100));
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use crate::rngs::{SplitMix64, StdRng};
use crate::{RngCore, SeedableRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default base seed ("MARS" in ASCII).
pub const DEFAULT_BASE_SEED: u64 = 0x4d41_5253;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            s.parse().ok()
        }
    })
}

/// The base seed in effect (`MARS_PROP_SEED` or the default).
pub fn base_seed() -> u64 {
    env_u64("MARS_PROP_SEED").unwrap_or(DEFAULT_BASE_SEED)
}

/// Scale a declared case count by `MARS_PROP_CASES` (if set).
pub fn scaled_cases(declared: u64) -> u64 {
    match env_u64("MARS_PROP_CASES") {
        Some(mult) => declared.saturating_mul(mult.max(1)),
        None => declared,
    }
}

/// Seed for case `i` under base seed `base`: both words go through
/// SplitMix64 so neighbouring cases are uncorrelated.
pub fn case_seed(base: u64, case: u64) -> u64 {
    let mut sm = SplitMix64::new(base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case + 1));
    sm.next_u64()
}

/// Run `f` for `cases` seeded cases, reporting the failing case's seed
/// before propagating its panic.
///
/// Prefer the [`props!`](crate::props) macro, which wraps this in a
/// `#[test]` function.
pub fn run_cases<F>(name: &str, cases: u64, f: F)
where
    F: Fn(&mut StdRng),
{
    // Single-case reproduction mode.
    if let Some(seed) = env_u64("MARS_PROP_CASE_SEED") {
        let mut rng = StdRng::seed_from_u64(seed);
        f(&mut rng);
        return;
    }

    let base = base_seed();
    let cases = scaled_cases(cases);
    for case in 0..cases {
        let seed = case_seed(base, case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            f(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "\nproperty '{name}' FAILED at case {case}/{cases} \
                 (base seed {base:#x}, case seed {seed:#x})\n\
                 reproduce just this case with: MARS_PROP_CASE_SEED={seed:#x}\n"
            );
            resume_unwind(payload);
        }
    }
}

/// Declare seeded property tests.
///
/// Each entry becomes one `#[test]` function running the body for the
/// given number of cases, with `$rng` bound to a fresh per-case
/// [`StdRng`]:
///
/// ```ignore
/// mars_rng::props! {
///     fn transpose_is_involutive(rng, 128) {
///         let m = arb_matrix(rng, 12);
///         assert_eq!(m.transpose().transpose(), m);
///     }
/// }
/// ```
#[macro_export]
macro_rules! props {
    ($( $(#[$attr:meta])* fn $name:ident($rng:ident, $cases:expr) $body:block )*) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                $crate::prop::run_cases(stringify!($name), $cases, |$rng| $body);
            }
        )*
    };
}

/// Assert that two `f32` slices agree elementwise within `tol`.
pub fn assert_slices_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= tol, "element {i} differs: {x} vs {y} (tol {tol})");
    }
}

/// `RngCore` passthrough so property bodies can use the harness rng
/// for nested helpers expecting `&mut impl RngCore`.
pub fn fork(rng: &mut StdRng) -> StdRng {
    rng.split()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn case_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| case_seed(DEFAULT_BASE_SEED, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn run_cases_passes_for_true_property() {
        run_cases("tautology", 32, |rng| {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        });
    }

    #[test]
    fn run_cases_propagates_failure() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_cases("falsum", 8, |rng| {
                let v: u64 = rng.gen_range(0..10);
                assert!(v < 10_000); // passes...
                assert_ne!(v, v, "deliberate failure"); // ...then fails
            });
        }));
        assert!(result.is_err(), "failing property must propagate its panic");
    }

    props! {
        fn macro_generated_property_runs(rng, 16) {
            let a: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&a));
        }
    }
}
