#![warn(missing_docs)]
//! Hermetic pseudo-random number generation.
//!
//! This crate replaces the external `rand` crate so that the workspace
//! builds and tests with **zero external dependencies** (no registry
//! access required). It deliberately mirrors the small slice of the
//! `rand` 0.8 API surface the repository uses, so call sites read
//! identically:
//!
//! ```
//! use mars_rng::rngs::StdRng;
//! use mars_rng::seq::SliceRandom;
//! use mars_rng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let dev: usize = rng.gen_range(0..5);
//! let u: f32 = rng.gen();
//! let mut xs = vec![1, 2, 3, 4];
//! xs.shuffle(&mut rng);
//! assert!(dev < 5 && (0.0..1.0).contains(&u));
//! ```
//!
//! Design:
//! * **Seeding** always goes through [`rngs::SplitMix64`] — a single
//!   `u64` seed expands into well-mixed full-period state, so nearby
//!   seeds (1, 2, 3, …) produce uncorrelated streams.
//! * **Core generators**: [`rngs::StdRng`] is xoshiro256++ (fast,
//!   64-bit output, passes BigCrush); [`rngs::Pcg32`] is PCG-XSH-RR
//!   64/32 with stream selection, for independent substreams keyed by
//!   `(seed, stream)`.
//! * **Determinism** is a hard guarantee: the byte sequence produced by
//!   a seeded generator is stable across platforms and releases. RL
//!   placers are notoriously seed-sensitive, and every experiment in
//!   EXPERIMENTS.md is reproducible from its `u64` seed alone.
//! * [`prop`] is a tiny property-test harness (seeded case generation,
//!   shrink-free failure reporting) replacing `proptest`.

pub mod prop;
pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random bits.
///
/// Object-safe; everything else is provided by the [`Rng`] extension
/// trait, which is blanket-implemented for all `RngCore` types.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits (high half of [`next_u64`]
    /// by default — the high bits are the best-mixed in both cores).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Generators constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose full state is derived from `seed` via
    /// SplitMix64 expansion. Equal seeds give equal streams; unequal
    /// seeds (even consecutive ones) give independent-looking streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its "standard" distribution:
    /// uniform `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Standard-normal sample via the Box–Muller transform.
    fn normal(&mut self) -> f64
    where
        Self: Sized,
    {
        loop {
            // u1 in (0, 1] so ln(u1) is finite.
            let u1 = 1.0 - f64::sample(self);
            let u2 = f64::sample(self);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            if z.is_finite() {
                return z;
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from their standard distribution (see [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform multiples of 2^-24 in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform multiples of 2^-53 in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` by rejection (widening
/// multiply trick; the rejection zone is at most `bound` values).
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection threshold: multiples of `bound` fitting in 2^64.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(
    usize => u64, u64 => u64, u32 => u32, u16 => u16, u8 => u8,
    isize => i64, i64 => i64, i32 => i32, i16 => i16, i8 => i8,
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::{Pcg32, SplitMix64, StdRng};
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference values from the splitmix64 reference implementation
        // (Vigna), seed = 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn gen_range_int_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v: usize = r.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..500 {
            let v: i32 = r.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f32 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v), "{v}");
            let w: f32 = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn gen_unit_floats_in_range_with_plausible_mean() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_permutes_and_is_seed_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut c: Vec<u32> = (0..50).collect();
        c.shuffle(&mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn choose_only_returns_members() {
        let xs = [10, 20, 30];
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(xs.contains(xs.choose(&mut r).expect("non-empty")));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn pcg32_streams_are_independent() {
        let mut s0 = Pcg32::new(5, 0);
        let mut s1 = Pcg32::new(5, 1);
        let a: Vec<u32> = (0..16).map(|_| s0.next_u32()).collect();
        let b: Vec<u32> = (0..16).map(|_| s1.next_u32()).collect();
        assert_ne!(a, b, "distinct streams from the same seed must differ");
        let mut s0_again = Pcg32::new(5, 0);
        let a2: Vec<u32> = (0..16).map(|_| s0_again.next_u32()).collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn stdrng_split_gives_independent_child() {
        let mut parent = StdRng::seed_from_u64(21);
        let mut child = parent.split();
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
        // Reproducible: same construction path, same child stream.
        let mut parent2 = StdRng::seed_from_u64(21);
        let mut child2 = parent2.split();
        let c2: Vec<u64> = (0..16).map(|_| child2.next_u64()).collect();
        assert_eq!(c, c2);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(31);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_int_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _: usize = r.gen_range(3..3);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(77);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 random bytes, all zero is ~impossible");
    }
}
