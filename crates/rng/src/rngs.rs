//! Concrete generator cores.
//!
//! * [`SplitMix64`] — the seed expander. Every other generator derives
//!   its initial state from SplitMix64 output, so a single `u64` seed
//!   yields well-mixed state and nearby seeds give unrelated streams.
//! * [`StdRng`] — xoshiro256++, the workspace default (64-bit output,
//!   256-bit state, passes BigCrush).
//! * [`Pcg32`] — PCG-XSH-RR 64/32 with stream selection: `(seed,
//!   stream)` pairs index 2^63 provably-disjoint sequences, for
//!   experiments that need many independent substreams.

use crate::{RngCore, SeedableRng};

/// SplitMix64: a tiny, fast generator used to expand seeds.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); constants as in Vigna's reference C
/// implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// xoshiro256++ — the workspace's standard generator.
///
/// 256-bit state, 64-bit output, period 2^256 − 1. Reference: Blackman
/// & Vigna, "Scrambled linear pseudorandom number generators" (2019).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Derive an independent child generator from this one.
    ///
    /// The child's state is seeded from the parent's next output, so
    /// repeated `split` calls at the same point of a seeded program are
    /// themselves deterministic. Use this to hand each worker /
    /// experiment arm its own stream without sharing a generator.
    pub fn split(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_u64())
    }

    /// Generator for substream `stream` of `seed` — a convenience for
    /// deterministic fan-out: `stream(seed, i)` for `i = 0, 1, 2, …`
    /// gives independent, individually reproducible generators.
    pub fn stream(seed: u64, stream: u64) -> StdRng {
        // Mix the pair through SplitMix64 so (s, 0) and (s+1, 0) do not
        // collide with (s, 1).
        let mut sm = SplitMix64::new(seed);
        let a = sm.next_u64();
        StdRng::seed_from_u64(a ^ SplitMix64::new(stream).next_u64())
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// PCG-XSH-RR 64/32: 64-bit LCG state, 32-bit output, selectable
/// stream. Reference: O'Neill, "PCG: A family of simple fast
/// space-efficient statistically good algorithms for random number
/// generation" (2014).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    /// Odd stream increment; distinct increments give provably
    /// disjoint sequences.
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Generator for `(seed, stream)`. Distinct streams of the same
    /// seed are independent.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut pcg = Pcg32 { state: 0, inc: (stream << 1) | 1 };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(SplitMix64::new(seed).next_u64());
        pcg.step();
        pcg
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }
}

impl SeedableRng for Pcg32 {
    fn seed_from_u64(seed: u64) -> Self {
        Pcg32::new(seed, 0)
    }
}

impl RngCore for Pcg32 {
    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }
}
