//! Sequence-related random operations (`rand::seq` equivalent).

use crate::{uniform_below, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle in place (Fisher–Yates; unbiased, `O(n)`).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}
