#![warn(missing_docs)]
//! Computational-graph model and workload generators.
//!
//! The device-placement agent never sees TensorFlow — it sees a
//! [`CompGraph`]: a DAG of operation nodes annotated with everything
//! the RL environment and the encoder need:
//!
//! * per-op compute cost (FLOPs, forward+backward folded together),
//! * persistent parameter bytes and live activation bytes (for the
//!   memory/OOM model),
//! * tensor bytes on every edge (for the communication model),
//! * op kind and output shape (for node features).
//!
//! [`generators`] builds faithful op-level graphs for the paper's
//! benchmarks (Inception-V3, GNMT-4, BERT-Base) and for the Table-3
//! generalization workloads (VGG16, seq2seq, small Transformer). Each
//! generator exposes a paper-scale and a reduced profile; the reduced
//! profile merges fine-grained steps into chunk ops while preserving
//! total cost, so simulated runtimes stay at paper scale.

pub mod analysis;
pub mod builder;
pub mod features;
pub mod generators;
pub mod graph;
pub mod op;

pub use builder::GraphBuilder;
pub use graph::{CompGraph, Edge, NodeId, OpNode, TensorShape};
pub use op::OpKind;
