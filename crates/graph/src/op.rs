//! Operation kinds.
//!
//! The kind drives the one-hot part of the node features (§3.1 of the
//! paper: "we encode the operation types by one-hot encoding") and the
//! CPU/GPU compatibility flag used by the GPU-Only baseline and the
//! simulator.

/// Kind of a computational-graph operation.
///
/// The list covers everything the six workload generators emit. Order
/// is stable — it defines the one-hot feature layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Input placeholder (data tensors entering the graph).
    Input,
    /// Constant tensor.
    Const,
    /// Trainable variable read.
    Variable,
    /// Host-side input pipeline (decode/augment). CPU-only.
    DataPipeline,
    /// Host-side preprocessing (tokenize/bucket). CPU-only.
    Preprocess,
    /// 2-D convolution.
    Conv2d,
    /// Depthwise / separable convolution.
    DepthwiseConv,
    /// Dense matrix multiply.
    MatMul,
    /// Batched matrix multiply (attention score/context).
    BatchMatMul,
    /// Batch normalization.
    BatchNorm,
    /// Layer normalization.
    LayerNorm,
    /// ReLU activation.
    Relu,
    /// GELU activation.
    Gelu,
    /// Tanh activation.
    Tanh,
    /// Sigmoid activation.
    Sigmoid,
    /// Softmax.
    Softmax,
    /// Max pooling.
    MaxPool,
    /// Average pooling.
    AvgPool,
    /// Tensor concatenation.
    Concat,
    /// Tensor split/slice.
    Split,
    /// Elementwise addition (residual connections).
    Add,
    /// Elementwise multiplication (gating).
    Mul,
    /// Shape-only ops (reshape/expand).
    Reshape,
    /// Transpose/permute.
    Transpose,
    /// Fused LSTM cell step (or a chunk of steps).
    LstmCell,
    /// Embedding lookup.
    Embedding,
    /// Attention score computation.
    AttentionScore,
    /// Attention-weighted context computation.
    AttentionContext,
    /// Dropout.
    Dropout,
    /// Loss computation (cross-entropy etc.).
    Loss,
    /// Optimizer parameter update (apply-gradients).
    ApplyGradient,
    /// Identity / control edge placeholder.
    Identity,
}

impl OpKind {
    /// All kinds, in one-hot feature order.
    pub const ALL: [OpKind; 32] = [
        OpKind::Input,
        OpKind::Const,
        OpKind::Variable,
        OpKind::DataPipeline,
        OpKind::Preprocess,
        OpKind::Conv2d,
        OpKind::DepthwiseConv,
        OpKind::MatMul,
        OpKind::BatchMatMul,
        OpKind::BatchNorm,
        OpKind::LayerNorm,
        OpKind::Relu,
        OpKind::Gelu,
        OpKind::Tanh,
        OpKind::Sigmoid,
        OpKind::Softmax,
        OpKind::MaxPool,
        OpKind::AvgPool,
        OpKind::Concat,
        OpKind::Split,
        OpKind::Add,
        OpKind::Mul,
        OpKind::Reshape,
        OpKind::Transpose,
        OpKind::LstmCell,
        OpKind::Embedding,
        OpKind::AttentionScore,
        OpKind::AttentionContext,
        OpKind::Dropout,
        OpKind::Loss,
        OpKind::ApplyGradient,
        OpKind::Identity,
    ];

    /// Number of kinds (width of the one-hot feature block).
    pub const COUNT: usize = Self::ALL.len();

    /// Index into the one-hot feature block.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("every OpKind is listed in ALL")
    }

    /// Whether a GPU kernel exists for this op. Host-side pipeline ops
    /// must run on the CPU (the paper's GPU-Only baseline "places all
    /// GPU compatible operations on a single GPU while running
    /// incompatible operations on CPUs").
    pub fn gpu_compatible(self) -> bool {
        !matches!(self, OpKind::DataPipeline | OpKind::Preprocess)
    }

    /// Stable string name used in the JSON serialization (the variant
    /// identifier, e.g. `"Conv2d"`).
    pub fn name(self) -> String {
        format!("{self:?}")
    }

    /// Inverse of [`OpKind::name`].
    pub fn from_name(name: &str) -> Option<OpKind> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Compute-heavy kinds (useful for analyses and tests).
    pub fn is_compute_heavy(self) -> bool {
        matches!(
            self,
            OpKind::Conv2d
                | OpKind::DepthwiseConv
                | OpKind::MatMul
                | OpKind::BatchMatMul
                | OpKind::LstmCell
                | OpKind::AttentionScore
                | OpKind::AttentionContext
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(OpKind::COUNT, 32);
    }

    #[test]
    fn cpu_only_ops() {
        assert!(!OpKind::DataPipeline.gpu_compatible());
        assert!(!OpKind::Preprocess.gpu_compatible());
        assert!(OpKind::Conv2d.gpu_compatible());
        assert!(OpKind::ApplyGradient.gpu_compatible());
    }

    #[test]
    fn names_roundtrip_for_every_kind() {
        for k in OpKind::ALL {
            assert_eq!(OpKind::from_name(&k.name()), Some(k), "{k:?}");
        }
        assert_eq!(OpKind::from_name("NotAnOp"), None);
    }

    #[test]
    fn compute_heavy_classification() {
        assert!(OpKind::Conv2d.is_compute_heavy());
        assert!(OpKind::LstmCell.is_compute_heavy());
        assert!(!OpKind::Relu.is_compute_heavy());
        assert!(!OpKind::Identity.is_compute_heavy());
    }
}
