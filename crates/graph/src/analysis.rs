//! Graph analysis and export utilities.

use crate::graph::CompGraph;
use crate::op::OpKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Summary statistics of a computational graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Nodes per op kind.
    pub kind_histogram: Vec<(OpKind, usize)>,
    /// Total training FLOPs.
    pub total_flops: f64,
    /// Total memory (parameters + activations), bytes.
    pub total_memory_bytes: u64,
    /// Length (in nodes) of the longest dependency chain.
    pub depth: usize,
    /// Maximum antichain width estimate (peak nodes per topological level).
    pub max_width: usize,
    /// Mean bytes per edge.
    pub mean_edge_bytes: f64,
}

/// Compute summary statistics.
pub fn stats(graph: &CompGraph) -> GraphStats {
    let mut hist: HashMap<OpKind, usize> = HashMap::new();
    for n in graph.nodes() {
        *hist.entry(n.kind).or_default() += 1;
    }
    let mut kind_histogram: Vec<(OpKind, usize)> = hist.into_iter().collect();
    kind_histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));

    // Level = longest path from a source, computed along a topo order.
    let order = graph.topo_order().expect("DAG");
    let in_edges = graph.in_edges();
    let mut level = vec![0usize; graph.num_nodes()];
    for &n in &order {
        level[n] = in_edges[n].iter().map(|&e| level[graph.edges()[e].src] + 1).max().unwrap_or(0);
    }
    let depth = level.iter().copied().max().unwrap_or(0) + 1;
    let mut width: HashMap<usize, usize> = HashMap::new();
    for &l in &level {
        *width.entry(l).or_default() += 1;
    }
    let max_width = width.values().copied().max().unwrap_or(0);

    let mean_edge_bytes = if graph.num_edges() == 0 {
        0.0
    } else {
        graph.edges().iter().map(|e| e.bytes as f64).sum::<f64>() / graph.num_edges() as f64
    };

    GraphStats {
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        kind_histogram,
        total_flops: graph.total_flops(),
        total_memory_bytes: graph.total_memory_bytes(),
        depth,
        max_width,
        mean_edge_bytes,
    }
}

/// Render the graph in Graphviz DOT format. `max_nodes` truncates very
/// large graphs (truncation is marked with an ellipsis node).
pub fn to_dot(graph: &CompGraph, max_nodes: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name);
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontsize=10];");
    let shown = graph.num_nodes().min(max_nodes);
    for (i, n) in graph.nodes().iter().take(shown).enumerate() {
        let color = if n.kind.is_compute_heavy() { "lightblue" } else { "white" };
        let _ = writeln!(
            out,
            "  n{i} [label=\"{}\\n{:?} {:.1} GF\", style=filled, fillcolor={color}];",
            n.name,
            n.kind,
            n.flops / 1e9
        );
    }
    if shown < graph.num_nodes() {
        let _ = writeln!(out, "  more [label=\"… {} more ops\"];", graph.num_nodes() - shown);
    }
    for e in graph.edges() {
        if e.src < shown && e.dst < shown {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{:.1} MB\", fontsize=8];",
                e.src,
                e.dst,
                e.bytes as f64 / (1 << 20) as f64
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Profile, Workload};

    #[test]
    fn stats_of_bert_reflect_structure() {
        let g = Workload::BertBase.build(Profile::Reduced);
        let s = stats(&g);
        assert_eq!(s.nodes, g.num_nodes());
        assert_eq!(s.edges, g.num_edges());
        // 12 chained layers: depth must be ≥ 12 × ops-per-layer-chain.
        assert!(s.depth >= 50, "depth {}", s.depth);
        // Mostly sequential: width stays small.
        assert!(s.max_width <= 12, "width {}", s.max_width);
        let total_hist: usize = s.kind_histogram.iter().map(|x| x.1).sum();
        assert_eq!(total_hist, s.nodes);
        assert!(s.mean_edge_bytes > 1e6, "BERT edges are MB-scale");
    }

    #[test]
    fn inception_is_wide_and_shallow_compared_to_bert() {
        let inc = stats(&Workload::InceptionV3.build(Profile::Reduced));
        let bert = stats(&Workload::BertBase.build(Profile::Reduced));
        assert!(inc.max_width > bert.max_width, "inception branches in parallel");
        assert!(bert.depth > inc.depth / 2, "bert is deeply chained");
    }

    #[test]
    fn dot_export_well_formed() {
        let g = Workload::Vgg16.build(Profile::Reduced);
        let dot = to_dot(&g, 1000);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -> ").count(), g.num_edges());
    }

    #[test]
    fn dot_truncation() {
        let g = Workload::BertBase.build(Profile::Reduced);
        let dot = to_dot(&g, 10);
        assert!(dot.contains("more ops"));
        assert!(dot.matches("n9 ").count() >= 1);
        assert!(!dot.contains("n10 ["));
    }
}
