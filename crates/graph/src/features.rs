//! Node features and normalized adjacency for the GCN encoder.
//!
//! §3.1 of the paper: "we encode the operation types by one-hot
//! encoding and normalize the shapes by the largest dimension size of
//! all operations' input and output". We additionally expose
//! log-scaled cost features (output/parameter/activation bytes, FLOPs)
//! and normalized degrees, all bounded in `[0, 1]`.

use crate::graph::CompGraph;
use crate::op::OpKind;
use mars_tensor::ops::CsrMatrix;
use mars_tensor::Matrix;
use std::sync::Arc;

/// Width of the feature vector produced by [`node_features`].
pub const FEATURE_DIM: usize = OpKind::COUNT + 7;

fn log_norm(value: f64, max_value: f64) -> f32 {
    if value <= 0.0 || max_value <= 1.0 {
        return 0.0;
    }
    ((value.ln_1p()) / (max_value.ln_1p())) as f32
}

/// Build the `N × FEATURE_DIM` node-feature matrix.
///
/// Layout per row: one-hot op kind (`OpKind::COUNT`), then
/// `[max-dim ratio, output bytes, input bytes, FLOPs, param bytes,
/// in-degree, out-degree]`, each normalized into `[0, 1]`.
pub fn node_features(graph: &CompGraph) -> Matrix {
    let n = graph.num_nodes();
    let mut x = Matrix::zeros(n, FEATURE_DIM);

    let max_dim =
        graph.nodes().iter().map(|nd| nd.output_shape.max_dim()).max().unwrap_or(1) as f64;
    let max_out_bytes =
        graph.nodes().iter().map(|nd| nd.output_shape.bytes()).max().unwrap_or(1) as f64;
    let max_flops = graph.nodes().iter().map(|nd| nd.flops).fold(1.0f64, f64::max);
    let max_params = graph.nodes().iter().map(|nd| nd.param_bytes).max().unwrap_or(1) as f64;

    let in_deg = graph.in_degrees();
    let out_deg = graph.out_degrees();
    let max_in = in_deg.iter().copied().max().unwrap_or(1).max(1) as f32;
    let max_out = out_deg.iter().copied().max().unwrap_or(1).max(1) as f32;

    // Per-node input bytes = sum of incoming edge tensor sizes.
    let mut in_bytes = vec![0u64; n];
    for e in graph.edges() {
        in_bytes[e.dst] += e.bytes;
    }
    let max_in_bytes = in_bytes.iter().copied().max().unwrap_or(1) as f64;

    for (i, nd) in graph.nodes().iter().enumerate() {
        x.set(i, nd.kind.index(), 1.0);
        let base = OpKind::COUNT;
        x.set(i, base, (nd.output_shape.max_dim() as f64 / max_dim) as f32);
        x.set(i, base + 1, log_norm(nd.output_shape.bytes() as f64, max_out_bytes));
        x.set(i, base + 2, log_norm(in_bytes[i] as f64, max_in_bytes));
        x.set(i, base + 3, log_norm(nd.flops, max_flops));
        x.set(i, base + 4, log_norm(nd.param_bytes as f64, max_params));
        x.set(i, base + 5, in_deg[i] as f32 / max_in);
        x.set(i, base + 6, out_deg[i] as f32 / max_out);
    }
    x
}

/// Symmetrically-normalized adjacency with self-loops,
/// `D̂^{-1/2} Â D̂^{-1/2}` with `Â = A + Aᵀ + I`.
///
/// The paper's Eq. (1) uses `Â = A + I`; we symmetrize first so
/// information flows both along and against data-flow edges, which is
/// the standard GCN treatment of directed graphs (and what DGI assumes).
pub fn normalized_adjacency(graph: &CompGraph) -> Arc<CsrMatrix> {
    let n = graph.num_nodes();
    let mut undirected: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::new();
    for e in graph.edges() {
        undirected.insert((e.src.min(e.dst), e.src.max(e.dst)));
    }
    let mut degree = vec![1.0f32; n]; // self-loop contributes 1
    for &(a, b) in &undirected {
        degree[a] += 1.0;
        degree[b] += 1.0;
    }
    let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(2 * undirected.len() + n);
    for &(a, b) in &undirected {
        let w = 1.0 / (degree[a] * degree[b]).sqrt();
        triplets.push((a, b, w));
        triplets.push((b, a, w));
    }
    for (i, d) in degree.iter().enumerate() {
        triplets.push((i, i, 1.0 / d));
    }
    Arc::new(CsrMatrix::from_triplets(n, n, &triplets))
}

/// Row-shuffle corruption for DGI: returns a feature matrix whose rows
/// are permuted by `perm` (the "negative sample" of §3.2, Fig. 5).
pub fn permute_features(x: &Matrix, perm: &[usize]) -> Matrix {
    assert_eq!(perm.len(), x.rows(), "permutation length mismatch");
    x.gather_rows(perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::shape;

    fn small_graph() -> CompGraph {
        let mut b = GraphBuilder::new("feat-test");
        let a = b.compute(OpKind::Input, "in", shape![4, 8], 0.0, &[]);
        let c = b.layer(OpKind::Conv2d, "conv", shape![4, 8, 16], 1e9, 4096, &[a]);
        let r = b.compute(OpKind::Relu, "relu", shape![4, 8, 16], 1e6, &[c]);
        let m = b.layer(OpKind::MatMul, "fc", shape![4, 10], 2e9, 8192, &[r]);
        b.compute(OpKind::Loss, "loss", shape![1], 1e3, &[m]);
        b.build()
    }

    #[test]
    fn feature_matrix_shape_and_bounds() {
        let g = small_graph();
        let x = node_features(&g);
        assert_eq!(x.shape(), (5, FEATURE_DIM));
        assert!(x.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)), "features outside [0,1]");
    }

    #[test]
    fn one_hot_block_is_exactly_one() {
        let g = small_graph();
        let x = node_features(&g);
        for r in 0..x.rows() {
            let onehot_sum: f32 = x.row(r)[..OpKind::COUNT].iter().sum();
            assert_eq!(onehot_sum, 1.0, "row {r}");
        }
    }

    #[test]
    fn heavier_op_has_larger_flop_feature() {
        let g = small_graph();
        let x = node_features(&g);
        let flop_col = OpKind::COUNT + 3;
        // fc (2e9 flops) > conv (1e9) > relu (1e6).
        assert!(x.get(3, flop_col) > x.get(1, flop_col));
        assert!(x.get(1, flop_col) > x.get(2, flop_col));
    }

    #[test]
    fn adjacency_is_symmetric_and_row_bounded() {
        let g = small_graph();
        let adj = normalized_adjacency(&g);
        let d = adj.to_dense();
        assert!(d.max_abs_diff(&d.transpose()) < 1e-6, "not symmetric");
        // Row sums of a sym-normalized adjacency are ≤ slightly above 1.
        for r in 0..d.rows() {
            let s: f32 = d.row(r).iter().sum();
            assert!(s > 0.0 && s < 1.5, "row {r} sum {s}");
        }
    }

    #[test]
    fn permute_features_shuffles_rows() {
        let g = small_graph();
        let x = node_features(&g);
        let perm = vec![4, 3, 2, 1, 0];
        let xp = permute_features(&x, &perm);
        assert_eq!(xp.row(0), x.row(4));
        assert_eq!(xp.row(4), x.row(0));
        // Double application of the reverse is identity.
        let back = permute_features(&xp, &perm);
        assert_eq!(back, x);
    }
}
