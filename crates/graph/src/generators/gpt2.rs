//! GPT-2 Small (Radford et al., 2019) — a decoder-only Transformer
//! workload beyond the paper's benchmark set. Batch 8, context 1024.
//!
//! Like BERT it is a deep chain of identical layers, but with causal
//! attention (larger score tensors kept for the backward pass) and a
//! full-vocab tied output head at every step — a heavier communication
//! profile per parameter.

use crate::builder::NodeSpec;
use crate::generators::{Profile, TRAIN_FLOPS_FACTOR};
use crate::graph::{CompGraph, NodeId};
use crate::op::OpKind;
use crate::shape;
use crate::GraphBuilder;

const BATCH: usize = 8;
const SEQ: usize = 1024;
const HIDDEN: usize = 768;
const HEADS: usize = 12;
const LAYERS: usize = 12;
const VOCAB: usize = 50_257;
const MEM_SCALE: u64 = 2;

fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64 * TRAIN_FLOPS_FACTOR
}

fn layer(b: &mut GraphBuilder, _profile: Profile, l: usize, input: NodeId) -> NodeId {
    let tok = BATCH * SEQ;
    let hid = shape![BATCH, SEQ, HIDDEN];
    let ln1 = b.layer(
        OpKind::LayerNorm,
        format!("l{l}/ln1"),
        hid.clone(),
        hid.num_elements() as f64 * 5.0 * TRAIN_FLOPS_FACTOR,
        (2 * HIDDEN) as u64 * 4,
        &[input],
    );
    let qkv = b.layer(
        OpKind::MatMul,
        format!("l{l}/attn/qkv"),
        shape![BATCH, SEQ, 3 * HIDDEN],
        matmul_flops(tok, HIDDEN, 3 * HIDDEN),
        (HIDDEN * 3 * HIDDEN) as u64 * 4,
        &[ln1],
    );
    // Causal attention: only the lower triangle is computed (×0.5).
    let score_shape = shape![BATCH, HEADS, SEQ, SEQ];
    let score = b.add(
        NodeSpec {
            kind: OpKind::AttentionScore,
            name: format!("l{l}/attn/score"),
            out: score_shape.clone(),
            flops: 0.5 * matmul_flops(BATCH * HEADS * SEQ, HIDDEN / HEADS, SEQ),
            param_bytes: 0,
            // Half the square is live (causal mask), kept for backward.
            activation_bytes: Some(score_shape.bytes() / 2 * MEM_SCALE),
        },
        &[qkv],
    );
    let sm = b.add(
        NodeSpec {
            kind: OpKind::Softmax,
            name: format!("l{l}/attn/softmax"),
            out: score_shape.clone(),
            flops: score_shape.num_elements() as f64 * 1.5 * TRAIN_FLOPS_FACTOR,
            param_bytes: 0,
            activation_bytes: Some(score_shape.bytes() / 2 * MEM_SCALE),
        },
        &[score],
    );
    let ctx = b.compute(
        OpKind::AttentionContext,
        format!("l{l}/attn/context"),
        hid.clone(),
        0.5 * matmul_flops(BATCH * HEADS * SEQ, SEQ, HIDDEN / HEADS),
        &[sm, qkv],
    );
    let proj = b.layer(
        OpKind::MatMul,
        format!("l{l}/attn/out"),
        hid.clone(),
        matmul_flops(tok, HIDDEN, HIDDEN),
        (HIDDEN * HIDDEN) as u64 * 4,
        &[ctx],
    );
    let add1 = b.compute(
        OpKind::Add,
        format!("l{l}/add1"),
        hid.clone(),
        hid.num_elements() as f64 * TRAIN_FLOPS_FACTOR,
        &[proj, input],
    );
    let ln2 = b.layer(
        OpKind::LayerNorm,
        format!("l{l}/ln2"),
        hid.clone(),
        hid.num_elements() as f64 * 5.0 * TRAIN_FLOPS_FACTOR,
        (2 * HIDDEN) as u64 * 4,
        &[add1],
    );
    let ffn_shape = shape![BATCH, SEQ, 4 * HIDDEN];
    let f1 = b.layer(
        OpKind::MatMul,
        format!("l{l}/ffn/fc1"),
        ffn_shape.clone(),
        matmul_flops(tok, HIDDEN, 4 * HIDDEN),
        (HIDDEN * 4 * HIDDEN) as u64 * 4,
        &[ln2],
    );
    let gelu = b.compute(
        OpKind::Gelu,
        format!("l{l}/ffn/gelu"),
        ffn_shape.clone(),
        ffn_shape.num_elements() as f64 * 8.0 * TRAIN_FLOPS_FACTOR,
        &[f1],
    );
    let f2 = b.layer(
        OpKind::MatMul,
        format!("l{l}/ffn/fc2"),
        hid.clone(),
        matmul_flops(tok, 4 * HIDDEN, HIDDEN),
        (4 * HIDDEN * HIDDEN) as u64 * 4,
        &[gelu],
    );
    b.compute(
        OpKind::Add,
        format!("l{l}/add2"),
        hid.clone(),
        hid.num_elements() as f64 * TRAIN_FLOPS_FACTOR,
        &[f2, add1],
    )
}

/// Build the GPT-2 Small graph.
pub fn build(profile: Profile) -> CompGraph {
    let mut b = GraphBuilder::new("gpt2_small");
    let pre = b.add(
        NodeSpec {
            kind: OpKind::Preprocess,
            name: "input/tokenize".into(),
            out: shape![BATCH, SEQ],
            flops: 1e7,
            param_bytes: 0,
            activation_bytes: Some(8 << 20),
        },
        &[],
    );
    let input = b.plumb(OpKind::Input, "input/ids", shape![BATCH, SEQ], &[pre]);
    let emb = b.layer(
        OpKind::Embedding,
        "embeddings/wte+wpe",
        shape![BATCH, SEQ, HIDDEN],
        (BATCH * SEQ * 2) as f64 * TRAIN_FLOPS_FACTOR,
        ((VOCAB + SEQ) * HIDDEN) as u64 * 4,
        &[input],
    );

    let mut cur = emb;
    for l in 0..LAYERS {
        cur = layer(&mut b, profile, l, cur);
    }
    let lnf = b.layer(
        OpKind::LayerNorm,
        "head/ln_f",
        shape![BATCH, SEQ, HIDDEN],
        (BATCH * SEQ * HIDDEN * 5) as f64 * TRAIN_FLOPS_FACTOR,
        (2 * HIDDEN) as u64 * 4,
        &[cur],
    );
    let logits_shape = shape![BATCH, SEQ, VOCAB];
    let logits = b.add(
        NodeSpec {
            kind: OpKind::MatMul,
            name: "head/logits".into(),
            out: logits_shape.clone(),
            flops: matmul_flops(BATCH * SEQ, HIDDEN, VOCAB),
            param_bytes: 0, // tied to wte
            activation_bytes: Some(logits_shape.bytes() * 2),
        },
        &[lnf],
    );
    let sm = b.compute(
        OpKind::Softmax,
        "head/softmax",
        logits_shape.clone(),
        logits_shape.num_elements() as f64 * 3.0,
        &[logits],
    );
    let loss =
        b.compute(OpKind::Loss, "head/loss", shape![1], logits_shape.num_elements() as f64, &[sm]);
    b.layer(
        OpKind::ApplyGradient,
        "train/apply_gradients",
        shape![1],
        1.24e8 * TRAIN_FLOPS_FACTOR,
        0,
        &[loss],
    );
    let _ = profile;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_are_gpt2_scale() {
        // ~6·N·T rule of thumb: 6 × 124M × 8×1024 tokens ≈ 6.1 TFLOP
        // per step (we model fwd+bwd as 3× forward ≈ same magnitude).
        let g = build(Profile::Reduced);
        assert!((3e12..1e13).contains(&g.total_flops()), "{:.3e}", g.total_flops());
    }

    #[test]
    fn params_are_gpt2_scale() {
        // ~124M params ≈ 500 MB.
        let g = build(Profile::Reduced);
        let mb = g.total_param_bytes() as f64 / (1 << 20) as f64;
        assert!((350.0..700.0).contains(&mb), "{mb} MB");
    }

    #[test]
    fn needs_model_parallelism() {
        // The long context makes attention activations large; the
        // workload must not fit one 12 GB GPU.
        let g = build(Profile::Reduced);
        let gb = g.total_memory_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gb > 12.5, "GPT-2 memory {gb:.1} GB should exceed one P100");
    }

    #[test]
    fn twelve_residual_layers() {
        let g = build(Profile::Reduced);
        assert_eq!(g.nodes().iter().filter(|n| n.name.ends_with("/add2")).count(), LAYERS);
        assert!(g.validate().is_ok());
    }
}
